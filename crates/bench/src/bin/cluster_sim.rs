//! Datacenter simulation: scheduling policies, cache sweeps, multi-tenant
//! fairness and deadline SLOs — with a flight recorder that can capture
//! any run and replay it bit-identically.
//!
//! Nine modes (see `docs/cluster_sim.md` for the full flag and JSON-schema
//! reference):
//!
//! * `--mode compare` (default) — replays a stream of QUBO jobs against a
//!   fleet of simulated QPUs (each with its own fault map) under each
//!   scheduling policy, on the same seeds, and prints a comparison table —
//!   the fleet-scale version of the paper's performance model.  The run
//!   demonstrates the two acceptance claims of the `sx_cluster` subsystem:
//!   embedding-cache-affinity scheduling beats FIFO on mean latency for a
//!   repeated-topology mix, and the aggregate per-stage breakdown stays
//!   stage-1 dominated at fleet scale.
//! * `--mode cache-cliff` — sweeps per-device warm-cache capacity ×
//!   workload topology diversity × eviction policy (LRU vs cost-aware) and
//!   maps the hit-rate cliff: once capacity falls below the number of
//!   distinct topologies in circulation, hit rate collapses and mean
//!   latency climbs.  Cost-aware eviction (protect the topologies that are
//!   expensive to re-embed) must match or beat LRU on mean latency at the
//!   cliff; the run exits non-zero if it does not, so CI catches
//!   eviction-policy regressions.
//! * `--mode fairness` — the multi-tenant acceptance sweep: tenant weight
//!   skew × arrival-rate asymmetry × policy on an aggressor/victim
//!   composition.  FAILs unless weighted fair queueing keeps the victim
//!   tenant's p99 within a constant factor of its isolated-run p99 while
//!   FIFO lets it blow up with load, and unless token-bucket admission
//!   bounds the aggressor's queue depth without shedding the victim.
//! * `--mode aging-sweep` — maps `ShortestPredictedFirst`'s aging weight
//!   against p99 latency and starvation incidence on a short-job flood with
//!   rare large jobs; FAILs if the shipped `DEFAULT_AGING_WEIGHT` is not
//!   near the sweep's optimum or reintroduces starvation.
//! * `--mode admission` — compares cache-admission policies (always vs
//!   second-chance doorkeeper) on a low-repetition mix with a bounded
//!   cache; FAILs if the doorkeeper loses on churn or latency.
//! * `--mode slo` — the deadline acceptance sweep: load × slack factor ×
//!   policy (FIFO, plain FIFO-lane WFQ, EDF-in-lane WFQ, global EDF) on a
//!   two-tenant proportional-deadline composition.  FAILs unless
//!   EDF-in-lane WFQ achieves a strictly lower SLO miss-rate than both
//!   FIFO and plain WFQ at the high-load/tight-slack point while keeping
//!   Jain's index within 5% of plain WFQ, and unless token-bucket
//!   deadline-infeasibility shedding sheds doomed aggressor jobs without
//!   ever claiming a feasible victim job.
//! * `--mode bench` — the engine perf baseline: a fixed seeded matrix of
//!   policy × fleet × offered load, each cell run with a
//!   [`NullSink`] and a sketch-only metrics
//!   registry, wall-clock timed host-side.  Emits a schema-stable
//!   `BENCH_cluster.json` (`sx-cluster-bench/v2`: events/sec, jobs/sec,
//!   ns/event, latency quantiles per cell, plus a parallel-scaling section
//!   comparing the serial oracle against a `--threads N` re-run that must
//!   be bit-identical), re-reads the file through
//!   `sx_cluster::json::parse` and validates it against the schema, and
//!   cross-checks that telemetry was a pure observer (sink-on vs sink-off
//!   reports bit-identical) — so one CI step covers generation and
//!   validation.
//! * `--mode sweep` — the deterministic parallel experiment runner,
//!   exposed directly: an explicit (seed × load × policy) grid expanded
//!   through `sx_cluster::sweep::SweepPlan` (arrival rates calibrated once
//!   per fleet, see below) and executed across `--threads` workers.  Emits
//!   a schema-stable `sx-sweep/v1` JSON document — per-cell rows plus
//!   merged sketch percentiles, no wall-clock fields — that is
//!   byte-identical for every thread count; CI diffs a `--threads 2` run
//!   against the `--threads 1` serial oracle.  Host-side events/sec goes
//!   to stdout only, so it cannot perturb the diff.
//! * `--mode replay --input PATH` — re-simulates every run segment of a
//!   flight record written by `--record` and verifies the engine
//!   reproduces each recorded trace bit-for-bit.  Segments recorded under
//!   a stateful admission controller (`token-bucket`) are skipped with a
//!   note; the mode FAILs if any replayed segment diverges or if the file
//!   contains no replayable segment at all.
//!
//! ```text
//! cargo run --release -p sx-bench --bin cluster_sim -- \
//!     [--mode compare|cache-cliff|fairness|aging-sweep|admission|slo|bench|sweep|replay] \
//!     [--jobs N] [--qpus N] [--seed S] [--rate R] [--threads N] \
//!     [--closed CLIENTS] [--workload repeated|mixed|bursty|trace:PATH] \
//!     [--policy fifo|spjf|affinity|wfq|all] [--fleet uniform|hetero] \
//!     [--capacity N] [--eviction lru|cost-aware] \
//!     [--cache-admission always|second-chance] [--json PATH] [--virtual] \
//!     [--record PATH] [--input PATH] [--percentiles exact|sketch] \
//!     [--trace-out PATH] [--arrivals-out PATH] [--sample-interval SECONDS] \
//!     [--seeds S1,S2,..] [--loads L1,L2,..] [--policies P1,P2,..]
//! ```
//!
//! `--threads N` (the sweep-shaped modes: cache-cliff, fairness,
//! aging-sweep, slo, bench, sweep) fans the mode's independent cells across
//! N worker threads via the workspace's deterministic `rayon` facade
//! (default `0` = available parallelism; `--threads 1` is the serial
//! oracle).  Every cell is a pure function of its [`CellSpec`] and results
//! are collected in cell-index order, so all outputs are bit-identical for
//! every thread count.  `--record`/`--trace-out` force serial execution
//! (their sinks are single-stream writers) without changing any result —
//! sinks are pure observers.  `--seeds`/`--loads`/`--policies` set the
//! explicit axis grid of `--mode sweep` (defaults: `--seed`'s value,
//! `0.7,1.1`, `fifo,affinity,wfq`).
//!
//! `--record PATH` (any mode) streams every simulated run to a versioned
//! JSONL flight record (`sx-flight-record/v1`): each run contributes a
//! self-describing header line — schema version, seed, policy, admission,
//! fleet fingerprint, workload digest, and the complete inputs — followed
//! by its full trace-record stream.  The file is opened eagerly (a bad
//! path is a startup error, not a silent no-op) and write failures latched
//! during the run surface as a FAIL at exit.  `trace_diff` compares two
//! such records to the first divergent event; `--mode replay` re-simulates
//! them.
//!
//! `--percentiles exact|sketch` selects how `SimReport` summarizes
//! latency/wait/lateness distributions: `exact` (default) sorts retained
//! samples, `sketch` streams them through the mergeable log-bucketed
//! histogram — retention-free, within its documented relative-error bound.
//!
//! `--trace-out PATH` (any mode) attaches a [`PerfettoSink`] to the first
//! simulated run and writes a Chrome trace-event JSON document loadable at
//! <https://ui.perfetto.dev> — job lanes show queued → embed → anneal →
//! readout spans on the virtual timeline, device tracks show per-QPU
//! occupancy.  Like `--record`, the path is opened eagerly and write
//! failures are surfaced at exit.  `--arrivals-out PATH` (compare mode)
//! exports the generated workload as an `sx-arrival-trace/v1` file that
//! `--workload trace:PATH` feeds back in, bit-identically — recorded
//! arrival traces are just another workload source.  `--sample-interval
//! SECONDS` sets the metrics registry's virtual-time sampling cadence in
//! bench mode (default 5.0 virtual seconds).
//!
//! `--json PATH` writes the mode's results as a machine-readable JSON
//! document (via `sx_cluster::json` — the workspace's serde is an offline
//! no-op stub) for bench-trajectory tracking.
//!
//! `--virtual` skips the (slow) calibration step that executes a real job
//! through `split_exec::Pipeline` to sanity-check the analytic service
//! model; CI runs the modes with `--virtual` as smoke tests.

use std::sync::Arc;

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;
use sx_cluster::sweep::DEFAULT_SAMPLE_INTERVAL;

#[derive(Debug)]
struct Args {
    mode: String,
    jobs: usize,
    qpus: usize,
    seed: u64,
    rate_hz: f64,
    threads: usize,
    closed: Option<usize>,
    workload: String,
    policy: String,
    fleet: String,
    capacity: Option<usize>,
    eviction: Option<EvictionPolicyKind>,
    cache_admission: Option<AdmissionPolicy>,
    json: Option<String>,
    virtual_only: bool,
    trace_out: Option<String>,
    sample_interval: Option<f64>,
    record: Option<String>,
    input: Option<String>,
    arrivals_out: Option<String>,
    percentiles: PercentileMode,
    seeds: Option<Vec<u64>>,
    loads: Option<Vec<f64>>,
    policies: Option<Vec<String>>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            mode: "compare".into(),
            jobs: 200,
            qpus: 4,
            seed: 7,
            rate_hz: 1.0,
            threads: 0,
            closed: None,
            workload: "repeated".into(),
            policy: "all".into(),
            fleet: "uniform".into(),
            capacity: None,
            eviction: None,
            cache_admission: None,
            json: None,
            virtual_only: false,
            trace_out: None,
            sample_interval: None,
            record: None,
            input: None,
            arrivals_out: None,
            percentiles: PercentileMode::Exact,
            seeds: None,
            loads: None,
            policies: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--mode" => args.mode = value("--mode"),
                "--jobs" => args.jobs = parse_or_die(&value("--jobs"), "--jobs"),
                "--qpus" => args.qpus = parse_or_die(&value("--qpus"), "--qpus"),
                "--seed" => args.seed = parse_or_die(&value("--seed"), "--seed"),
                "--rate" => args.rate_hz = parse_or_die(&value("--rate"), "--rate"),
                "--threads" => args.threads = parse_or_die(&value("--threads"), "--threads"),
                "--seeds" => args.seeds = Some(parse_csv(&value("--seeds"), "--seeds")),
                "--loads" => args.loads = Some(parse_csv(&value("--loads"), "--loads")),
                "--policies" => {
                    args.policies = Some(
                        value("--policies")
                            .split(',')
                            .map(|p| p.trim().to_string())
                            .collect(),
                    )
                }
                "--closed" => args.closed = Some(parse_or_die(&value("--closed"), "--closed")),
                "--workload" => args.workload = value("--workload"),
                "--policy" => args.policy = value("--policy"),
                "--fleet" => args.fleet = value("--fleet"),
                "--capacity" => {
                    args.capacity = Some(parse_or_die(&value("--capacity"), "--capacity"))
                }
                "--eviction" => {
                    args.eviction = Some(parse_or_die(&value("--eviction"), "--eviction"))
                }
                "--cache-admission" => {
                    args.cache_admission = Some(parse_or_die(
                        &value("--cache-admission"),
                        "--cache-admission",
                    ))
                }
                "--json" => args.json = Some(value("--json")),
                "--virtual" => args.virtual_only = true,
                "--trace-out" => args.trace_out = Some(value("--trace-out")),
                "--record" => args.record = Some(value("--record")),
                "--input" => args.input = Some(value("--input")),
                "--arrivals-out" => args.arrivals_out = Some(value("--arrivals-out")),
                "--percentiles" => {
                    args.percentiles = match value("--percentiles").as_str() {
                        "exact" => PercentileMode::Exact,
                        "sketch" => PercentileMode::Sketch,
                        other => {
                            eprintln!("unknown --percentiles '{other}' (expected exact or sketch)");
                            std::process::exit(2);
                        }
                    }
                }
                "--sample-interval" => {
                    args.sample_interval = Some(parse_or_die(
                        &value("--sample-interval"),
                        "--sample-interval",
                    ))
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The fleet configuration shared by every run of this invocation
    /// (before any per-sweep cache bound is applied).
    fn fleet_config(&self) -> FleetConfig {
        let base = match self.fleet.as_str() {
            "uniform" => FleetConfig {
                qpus: self.qpus,
                seed: self.seed,
                ..FleetConfig::default()
            },
            "hetero" | "heterogeneous" | "mixed" => {
                FleetConfig::heterogeneous(self.qpus, self.seed)
            }
            other => {
                eprintln!("unknown fleet '{other}' (expected uniform or hetero)");
                std::process::exit(2);
            }
        };
        let base = match self.capacity {
            Some(cap) => base.with_cache(cap, self.eviction.unwrap_or_default()),
            None => base,
        };
        match self.cache_admission {
            Some(admission) => base.with_cache_admission(admission),
            None => base,
        }
    }

    /// The engine configuration every run of this invocation uses:
    /// the mode at hand plus the `--percentiles` summarization switch.
    fn sim_config(&self, mode: WorkloadMode) -> SimConfig {
        SimConfig {
            mode,
            percentiles: self.percentiles,
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {flag} value '{raw}'");
        std::process::exit(2);
    })
}

fn parse_csv<T: std::str::FromStr>(raw: &str, flag: &str) -> Vec<T> {
    raw.split(',')
        .map(|part| parse_or_die(part.trim(), flag))
        .collect()
}

/// Execute a mode's cell list: across `--threads` workers through the
/// parallel sweep runner when nothing is observing, serially through the
/// observer's sink chain otherwise (the flight recorder and the Perfetto
/// exporter are single-stream writers).  Both paths produce bit-identical
/// [`CellResult`]s — cells are pure functions of their specs and sinks are
/// pure observers — so `--record`/`--trace-out` never change a sweep's
/// outputs, only its wall clock.
fn run_cells(args: &Args, observer: &mut Observer, cells: &[CellSpec]) -> SweepOutcome {
    if observer.active() || args.threads == 1 {
        let stopwatch = HostStopwatch::start();
        let results = cells
            .iter()
            .enumerate()
            .map(|(index, cell)| observer.run_cell(index, cell))
            .collect();
        SweepOutcome::collect(results, stopwatch.elapsed_seconds())
    } else {
        run_sweep(cells, args.threads)
    }
}

/// The observation plumbing shared by every mode: the optional flight
/// recorder (`--record`, every run) and the optional Perfetto export
/// (`--trace-out`, first run only — interleaving several runs would make
/// the lanes unattributable).  Modes hand each run to [`Observer::run`] /
/// [`Observer::observe`] and never know which sinks are active; both
/// output files are opened eagerly at startup so a bad path is a usage
/// error, and latched write failures surface in [`Observer::close`].
struct Observer {
    record_path: Option<String>,
    recorder: Option<RecorderSink<std::io::BufWriter<std::fs::File>>>,
    trace_path: Option<String>,
    trace_file: Option<std::fs::File>,
    perfetto: Option<PerfettoSink>,
    traced: bool,
}

impl Observer {
    fn from_args(args: &Args) -> Observer {
        let open = |flag: &str, path: &String| match std::fs::File::create(path) {
            Ok(file) => file,
            Err(err) => {
                eprintln!("cannot open {flag} {path}: {err}");
                std::process::exit(2);
            }
        };
        let recorder = args
            .record
            .as_ref()
            .map(|path| RecorderSink::new(std::io::BufWriter::new(open("--record", path))));
        let trace_file = args
            .trace_out
            .as_ref()
            .map(|path| open("--trace-out", path));
        Observer {
            record_path: args.record.clone(),
            recorder,
            trace_path: args.trace_out.clone(),
            perfetto: trace_file.is_some().then(PerfettoSink::new),
            trace_file,
            traced: false,
        }
    }

    /// Whether any observation sink is attached.  Active observation
    /// forces a sweep to run serially: the recorder and Perfetto exporter
    /// are single-stream writers and cannot interleave concurrent cells.
    fn active(&self) -> bool {
        self.recorder.is_some() || self.perfetto.is_some()
    }

    /// Assemble the sink chain for one run — flight-record segment header
    /// (when recording and a header is supplied), Perfetto exporter on the
    /// first run only, the caller's `extra` sink — and hand it to `run`.
    /// With nothing active the chain degenerates to a bare [`NullSink`],
    /// the perf-default path.
    fn with_chain<T>(
        &mut self,
        header: Option<&FlightHeader>,
        extra: Option<&mut dyn TraceSink>,
        run: impl FnOnce(&mut dyn TraceSink) -> T,
    ) -> T {
        let Self {
            recorder,
            perfetto,
            traced,
            ..
        } = self;
        if let (Some(recorder), Some(header)) = (recorder.as_mut(), header) {
            recorder.begin_run(header);
        }
        let attach_perfetto = !*traced;
        *traced = true;

        let mut base = NullSink;
        let mut chain: &mut dyn TraceSink = &mut base;
        let mut fan_recorder;
        if let Some(recorder) = recorder.as_mut() {
            fan_recorder = FanoutSink::new(recorder, chain);
            chain = &mut fan_recorder;
        }
        let mut fan_perfetto;
        if attach_perfetto {
            if let Some(perfetto) = perfetto.as_mut() {
                fan_perfetto = FanoutSink::new(perfetto, chain);
                chain = &mut fan_perfetto;
            }
        }
        let mut fan_extra;
        if let Some(extra) = extra {
            fan_extra = FanoutSink::new(extra, chain);
            chain = &mut fan_extra;
        }
        run(chain)
    }

    /// Observe one engine run through the sink chain.
    /// (One seam carries the whole chain, hence the argument count.)
    #[allow(clippy::too_many_arguments)]
    // sx-lint: hot-exempt -- bare-name collision with the hot registry/sketch `observe`; this runs once per CLI run, not per event
    fn observe(
        &mut self,
        header: Option<&FlightHeader>,
        fleet: Fleet,
        workload: &Workload,
        scheduler: &mut dyn Scheduler,
        admission: &mut dyn AdmissionController,
        config: SimConfig,
        registry: Option<&mut MetricsRegistry>,
        extra: Option<&mut dyn TraceSink>,
    ) -> SimReport {
        self.with_chain(header, extra, |chain| {
            simulate_with_telemetry(
                fleet, workload, scheduler, admission, config, chain, registry,
            )
        })
    }

    /// Execute one sweep cell through the observation chain — the serial
    /// path of [`run_cells`].  Produces the identical [`CellResult`] that
    /// `sweep::run_cell` with a bare [`NullSink`] would (sinks are pure
    /// observers), which is what lets `--record`/`--trace-out` capture a
    /// sweep without perturbing its outputs.
    fn run_cell(&mut self, index: usize, cell: &CellSpec) -> CellResult {
        let header = self.recorder.is_some().then(|| {
            FlightHeader::new(
                cell.seed,
                cell.scheduler.clone(),
                cell.admission.name(),
                cell.fleet.clone(),
                cell.config,
                (*cell.workload).clone(),
            )
        });
        self.with_chain(header.as_ref(), None, |chain| {
            sx_cluster::sweep::run_cell(index, cell, chain)
        })
    }

    /// The common shape of a primary run: build the fleet from its config
    /// and the scheduler from its spec, describe the run in a
    /// [`FlightHeader`] (only when recording — the header embeds a clone
    /// of the workload), and observe it.
    #[allow(clippy::too_many_arguments)] // mirrors the engine entry point
    fn run(
        &mut self,
        seed: u64,
        fleet_config: FleetConfig,
        workload: &Workload,
        spec: &SchedulerSpec,
        admission: &mut dyn AdmissionController,
        config: SimConfig,
        registry: Option<&mut MetricsRegistry>,
    ) -> SimReport {
        let header = self.recorder.is_some().then(|| {
            FlightHeader::new(
                seed,
                spec.clone(),
                admission.name(),
                fleet_config.clone(),
                config,
                workload.clone(),
            )
        });
        let fleet = Fleet::new(fleet_config, SplitExecConfig::with_seed(seed));
        let mut scheduler = spec.build();
        self.observe(
            header.as_ref(),
            fleet,
            workload,
            scheduler.as_mut(),
            admission,
            config,
            registry,
            None,
        )
    }

    /// Flush the output files and surface any failure the sinks latched
    /// mid-run; an `Err` here must fail the invocation.
    fn close(mut self) -> Result<(), String> {
        use std::io::Write;

        let mut failures = Vec::new();
        if let Some(recorder) = self.recorder.take() {
            let path = self.record_path.as_deref().unwrap_or("--record");
            match recorder.finish() {
                Ok((_, lines)) => println!("wrote flight record {path} ({lines} lines)"),
                Err(err) => failures.push(format!("--record {path}: write failed: {err}")),
            }
        }
        if let (Some(perfetto), Some(mut file)) = (self.perfetto.take(), self.trace_file.take()) {
            let path = self.trace_path.as_deref().unwrap_or("--trace-out");
            let doc = perfetto.finish();
            match file.write_all(format!("{doc}\n").as_bytes()) {
                Ok(()) => {
                    println!("wrote Perfetto trace {path} (open at https://ui.perfetto.dev)")
                }
                Err(err) => failures.push(format!("--trace-out {path}: write failed: {err}")),
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

fn main() {
    let args = Args::parse();

    if !args.virtual_only {
        calibrate(args.seed);
    }

    let mut observer = Observer::from_args(&args);
    let (mut ok, results) = match args.mode.as_str() {
        "compare" => compare(&args, &mut observer),
        "cache-cliff" | "cache_cliff" | "cliff" => cache_cliff(&args, &mut observer),
        "fairness" | "fair" => fairness(&args, &mut observer),
        "aging-sweep" | "aging_sweep" | "aging" => aging_sweep(&args, &mut observer),
        "admission" | "cache-admission" => admission_compare(&args, &mut observer),
        "slo" | "deadline" | "deadlines" => slo(&args, &mut observer),
        "bench" | "perf" => bench(&args, &mut observer),
        "sweep" => sweep_mode(&args, &mut observer),
        "replay" => replay(&args, &mut observer),
        other => {
            eprintln!(
                "unknown mode '{other}' (expected compare, cache-cliff, fairness, \
                 aging-sweep, admission, slo, bench, sweep or replay)"
            );
            std::process::exit(2);
        }
    };
    if let Err(err) = observer.close() {
        println!("FAIL: {err}");
        ok = false;
    }
    // Bench and sweep modes own their output files: BENCH_cluster.json and
    // the sweep document must carry their schema tags at the top level, not
    // the generic `{mode, seed, ..., results}` wrapper, so downstream
    // trackers can diff baselines without unwrapping.
    let wraps_json = !matches!(args.mode.as_str(), "bench" | "perf" | "sweep");
    if let (Some(path), true) = (&args.json, wraps_json) {
        let doc = JsonValue::object([
            ("mode", JsonValue::from(args.mode.as_str())),
            // As a string: a u64 seed above 2^53 would be silently rounded
            // through JsonValue::Num's f64, breaking seeded replay.
            ("seed", JsonValue::from(args.seed.to_string())),
            ("jobs", JsonValue::from(args.jobs)),
            ("qpus", JsonValue::from(args.qpus)),
            ("passed", JsonValue::from(ok)),
            ("results", results),
        ]);
        if let Err(err) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write --json {path}: {err}");
            std::process::exit(2);
        }
        println!("\nwrote {path}");
    }
    if !ok {
        std::process::exit(1);
    }
}

/// The policy-comparison mode (the original `cluster_sim` behavior, now
/// heterogeneity-, bounded-cache- and tenancy-aware).
fn compare(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    // A recorded arrival trace is just another workload source: `trace:PATH`
    // replays the job stream `--arrivals-out` exported, bit-identically.
    let workload = if let Some(path) = args.workload.strip_prefix("trace:") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
            eprintln!("cannot read arrival trace {path}: {err}");
            std::process::exit(2);
        });
        match parse_arrival_trace(&text) {
            Ok(workload) => workload,
            Err(err) => {
                eprintln!("invalid arrival trace {path}: {err}");
                std::process::exit(2);
            }
        }
    } else {
        let spec = match args.workload.as_str() {
            "repeated" => WorkloadSpec::repeated_topologies(args.jobs, args.rate_hz, args.seed),
            "mixed" => WorkloadSpec::mixed(args.jobs, args.rate_hz, args.seed),
            "bursty" => WorkloadSpec::bursty(args.jobs, args.rate_hz, 8, args.seed),
            other => {
                eprintln!(
                    "unknown workload '{other}' (expected repeated, mixed, bursty or trace:PATH)"
                );
                std::process::exit(2);
            }
        };
        match spec.try_generate() {
            Ok(workload) => workload,
            Err(err) => {
                eprintln!("invalid workload spec: {err}");
                std::process::exit(2);
            }
        }
    };
    if let Some(path) = &args.arrivals_out {
        if let Err(err) = std::fs::write(path, render_arrival_trace(&workload)) {
            eprintln!("cannot write --arrivals-out {path}: {err}");
            std::process::exit(2);
        }
        println!(
            "wrote arrival trace {path} ({} jobs; replay with --workload trace:{path})",
            workload.len()
        );
    }

    let policies: Vec<PolicyKind> = if args.policy == "all" {
        PolicyKind::all().to_vec()
    } else {
        vec![args.policy.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        })]
    };

    let mode = match args.closed {
        Some(clients) => WorkloadMode::Closed { clients },
        None => WorkloadMode::Open,
    };

    let cache_label = match args.capacity {
        Some(cap) => format!("cache {cap}/{}", args.eviction.unwrap_or_default()),
        None => "unbounded cache".into(),
    };
    println!(
        "# cluster_sim compare: {} jobs ({} distinct topologies, max lps {}), {} {} QPUs, {}, seed {}, {:?}",
        workload.len(),
        workload.distinct_topologies(),
        workload.max_lps(),
        args.qpus,
        args.fleet,
        cache_label,
        args.seed,
        mode,
    );

    println!(
        "\n{:>9} {:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>5} {:>5} {:>9} {:>10}",
        "policy",
        "done",
        "rej",
        "mean [s]",
        "p50 [s]",
        "p95 [s]",
        "p99 [s]",
        "util%",
        "warm%",
        "cold",
        "evict",
        "stage1%",
        "makespan"
    );

    let mut by_policy: Vec<(PolicyKind, SimReport)> = Vec::new();
    for policy in policies {
        // Telemetry is a pure observer (the sinks see `&TraceRecord` and
        // cannot perturb the run), so recording/tracing through the
        // observer yields the same report the plain path would.
        let report = observer.run(
            args.seed,
            args.fleet_config(),
            &workload,
            &SchedulerSpec::from(policy),
            &mut AdmitAll,
            args.sim_config(mode),
            None,
        );
        println!(
            "{:>9} {:>6} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1} {:>6.1} {:>5} {:>5} {:>9.2} {:>9.1}s",
            report.policy,
            report.completed,
            report.rejected,
            report.latency.mean,
            report.latency.p50,
            report.latency.p95,
            report.latency.p99,
            100.0 * report.mean_utilization(),
            100.0 * report.hit_rate(),
            report.cold_misses(),
            report.evictions(),
            100.0 * report.stage1_fraction(),
            report.makespan_seconds,
        );
        by_policy.push((policy, report));
    }

    // The shared batch/cluster report format, for the last policy run.
    if let Some((policy, report)) = by_policy.last() {
        println!("\n# shared BatchSummary format ({policy}):");
        println!("{}", report.batch_summary());
    }

    // Acceptance checks: stage-1 dominance at fleet scale, and (on the
    // repeated mix with both policies present) affinity beating FIFO.
    let mut ok = true;
    for (policy, report) in &by_policy {
        if report.completed > 0 && report.stage1_fraction() <= 0.5 {
            println!("FAIL: {policy} breakdown is not stage-1 dominated");
            ok = false;
        }
    }
    let fifo = by_policy.iter().find(|(p, _)| *p == PolicyKind::Fifo);
    let affinity = by_policy
        .iter()
        .find(|(p, _)| *p == PolicyKind::CacheAffinity);
    if let (Some((_, fifo)), Some((_, affinity))) = (fifo, affinity) {
        let speedup = fifo.latency.mean / affinity.latency.mean;
        println!(
            "\naffinity vs fifo: {speedup:.2}x mean latency ({} vs {} cold embeds)",
            affinity.cold_misses(),
            fifo.cold_misses()
        );
        if args.workload == "repeated" && args.capacity.is_none() && speedup <= 1.0 {
            println!("FAIL: cache-affinity did not beat FIFO on the repeated-topology mix");
            ok = false;
        }
    }
    let json = JsonValue::array(by_policy.iter().map(|(_, report)| report.to_json()));
    (ok, json)
}

/// `--mode cache-cliff`: hit rate and mean latency over capacity ×
/// topology diversity × eviction policy.
fn cache_cliff(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    // The sweep owns the capacity/eviction grid; a pinned value would be
    // silently overridden, so refuse it instead.
    if args.capacity.is_some() || args.eviction.is_some() {
        eprintln!("--capacity/--eviction select the compare-mode cache; cache-cliff sweeps both");
        std::process::exit(2);
    }
    // Each diversity level is a MAX-CUT-over-cycles family whose sizes span
    // 8..=36 logical spins: D distinct topologies with genuinely different
    // re-embed costs (∝ LPS³), which is where cost-aware eviction and LRU
    // part ways.
    let diversities = [4usize, 8];
    // FIFO routes without looking at caches, so every device sees every
    // topology and the per-device capacity is compared directly against the
    // full diversity; an explicit --policy overrides it.
    let policy: PolicyKind = if args.policy == "all" {
        PolicyKind::Fifo
    } else {
        args.policy.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };

    println!(
        "# cluster_sim cache-cliff: {} jobs per run, {} {} QPUs, policy {}, rate {} Hz, seed {}",
        args.jobs, args.qpus, args.fleet, policy, args.rate_hz, args.seed
    );

    let mut ok = true;
    let mut json_series: Vec<JsonValue> = Vec::new();
    for diversity in diversities {
        let sizes: Vec<usize> = (0..diversity)
            .map(|i| 8 + (36 - 8) * i / (diversity - 1))
            .collect();
        let spec = WorkloadSpec {
            jobs: args.jobs,
            seed: args.seed,
            arrivals: ArrivalProcess::Poisson {
                rate_hz: args.rate_hz,
            },
            mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes })],
            deadlines: DeadlinePolicy::None,
        };
        let workload = match spec.try_generate() {
            Ok(workload) => workload,
            Err(err) => {
                eprintln!("invalid workload spec: {err}");
                std::process::exit(2);
            }
        };
        let mut series = CacheCliffSeries {
            distinct_topologies: workload.distinct_topologies(),
            ..CacheCliffSeries::default()
        };

        let mut capacities: Vec<usize> = vec![
            1,
            diversity / 4,
            diversity / 2,
            3 * diversity / 4,
            diversity,
            diversity + 2,
        ];
        capacities.retain(|&c| c >= 1);
        capacities.sort_unstable();
        capacities.dedup();

        // The (eviction × capacity) grid as independent sweep cells — one
        // workload per diversity shared across the grid, fleet configs
        // carrying the per-cell cache bound.
        let workload = Arc::new(workload);
        let mut cells: Vec<CellSpec> = Vec::new();
        for eviction in EvictionPolicyKind::all() {
            for &capacity in &capacities {
                cells.push(CellSpec {
                    label: format!("d{diversity}/{}/cap{capacity}", eviction.name()),
                    seed: args.seed,
                    fleet: args.fleet_config().with_cache(capacity, eviction),
                    scheduler: SchedulerSpec::from(policy),
                    admission: AdmissionSpec::AdmitAll,
                    config: args.sim_config(WorkloadMode::Open),
                    sample_interval: args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL),
                    workload: Arc::clone(&workload),
                });
            }
        }
        let outcome = run_cells(args, observer, &cells);
        let mut results = outcome.cells.iter();
        for eviction in EvictionPolicyKind::all() {
            for &capacity in &capacities {
                let report = &results.next().expect("one result per cell").report;
                series
                    .points
                    .push(CachePoint::from_report(capacity, eviction.name(), report));
            }
        }

        println!("\n## diversity {diversity} (sizes span 8..=36)");
        println!("{series}");

        // The cliff itself: hit rate must fall monotonically (small
        // tolerance for scheduling feedback) as capacity drops, and the
        // drop from full capacity to capacity 1 must be real.
        for eviction in EvictionPolicyKind::all() {
            let name = eviction.name();
            if !series.hit_rate_monotone(name, 0.02) {
                println!(
                    "FAIL: {name} hit rate is not monotone in capacity at diversity {diversity}"
                );
                ok = false;
            }
            let points = series.policy_points(name);
            let (lo, hi) = (points.first().unwrap(), points.last().unwrap());
            if hi.hit_rate - lo.hit_rate < 0.1 {
                println!(
                    "FAIL: {name} shows no hit-rate cliff at diversity {diversity} \
                     ({:.3} at capacity {} vs {:.3} at capacity {})",
                    lo.hit_rate, lo.capacity, hi.hit_rate, hi.capacity
                );
                ok = false;
            }
        }

        // At the cliff (capacity below diversity), cost-aware eviction must
        // match or beat LRU on mean latency: it protects the embeds that
        // are expensive to recompute.
        let cliff_mean = |name: &str| {
            let points: Vec<f64> = series
                .policy_points(name)
                .iter()
                .filter(|p| p.capacity < diversity)
                .map(|p| p.mean_latency_seconds)
                .collect();
            points.iter().sum::<f64>() / points.len().max(1) as f64
        };
        let lru = cliff_mean("lru");
        let cost_aware = cliff_mean("cost-aware");
        println!(
            "cliff (capacity < {diversity}): mean latency lru {lru:.3}s vs cost-aware {cost_aware:.3}s"
        );
        if cost_aware > lru * 1.001 {
            println!("FAIL: cost-aware eviction lost to LRU at the cliff (diversity {diversity})");
            ok = false;
        }

        json_series.push(JsonValue::object([
            ("diversity", JsonValue::from(diversity)),
            (
                "points",
                JsonValue::array(series.points.iter().map(|p| {
                    JsonValue::object([
                        ("capacity", JsonValue::from(p.capacity)),
                        ("eviction", JsonValue::from(p.eviction.as_str())),
                        ("hit_rate", JsonValue::from(p.hit_rate)),
                        (
                            "mean_latency_seconds",
                            JsonValue::from(p.mean_latency_seconds),
                        ),
                        ("evictions", JsonValue::from(p.evictions)),
                        ("cold_misses", JsonValue::from(p.cold_misses)),
                    ])
                })),
            ),
        ]));
    }
    (ok, JsonValue::Array(json_series))
}

/// How far above its isolated-run p99 the victim tenant may drift under
/// WFQ while an aggressor floods the fleet — the "constant factor" of the
/// fairness acceptance claim.
const FAIR_BOUND: f64 = 8.0;

/// `--mode fairness`: tenant weight skew × arrival-rate asymmetry ×
/// policy on the aggressor/victim composition, with enforced acceptance
/// checks (see module docs).
fn fairness(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    let victim_jobs = (args.jobs / 11).max(8);
    let victim_rate = 0.45 * args.rate_hz;
    let asymmetries = [2.0, 10.0];
    let skews = [1.0, 4.0];

    println!(
        "# cluster_sim fairness: victim {} jobs at {:.2} Hz, aggressor x asymmetry, {} {} QPUs, seed {}",
        victim_jobs, victim_rate, args.qpus, args.fleet, args.seed
    );
    println!(
        "\n{:>5} {:>5} {:>7} {:>13} {:>13} {:>12} {:>7} {:>8}",
        "asym", "skew", "policy", "victim p99", "aggr p99", "isolated p99", "Jain", "max-min"
    );

    let mut ok = true;
    let mut json_points: Vec<JsonValue> = Vec::new();
    // FIFO victim p99 per (skew at index 0) across asymmetries, to check
    // that FIFO degrades with load while WFQ stays put.
    let mut fifo_victim_by_asym: Vec<f64> = Vec::new();
    let mut wfq_victim_by_asym: Vec<f64> = Vec::new();
    // The grid's (asym 10, skew 1, WFQ) report doubles as the un-gated
    // baseline of the admission check below — same spec, fleet and
    // scheduler, so re-simulating it would be pure waste.
    let mut wfq_at_full_load: Option<&SimReport> = None;

    // The victim alone on the same fleet: its no-contention baseline.
    // Tenant 0's stream is independent of asymmetry and weight skew (only
    // the aggressor's side of the composition varies), so one isolated run
    // serves the whole grid.
    let isolated_workload = {
        let spec = MultiTenantSpec::aggressor_victim(victim_jobs, victim_rate, 2.0, 1.0, args.seed);
        MultiTenantSpec {
            tenants: vec![spec.tenants[0].clone()],
            ..spec
        }
        .generate()
    };

    // The whole mode as one cell list, in table order — isolated baseline,
    // the (asymmetry × skew × policy) grid, then the gated admission run —
    // executed in a single pass through the sweep runner (`--threads`).
    let config = args.sim_config(WorkloadMode::Open);
    let sample_interval = args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL);
    let depth_limit = 6;
    let mut cells: Vec<CellSpec> = vec![CellSpec {
        label: "isolated".to_string(),
        seed: args.seed,
        fleet: args.fleet_config(),
        scheduler: SchedulerSpec::Fifo,
        admission: AdmissionSpec::AdmitAll,
        config,
        sample_interval,
        workload: Arc::new(isolated_workload),
    }];
    for &asymmetry in &asymmetries {
        for &skew in &skews {
            let workload = Arc::new(
                MultiTenantSpec::aggressor_victim(
                    victim_jobs,
                    victim_rate,
                    asymmetry,
                    skew,
                    args.seed,
                )
                .generate(),
            );
            for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
                // The per-workload WFQ (explicit tenant weights) needs the
                // full SchedulerSpec form so a recorded run rebuilds the
                // exact same lanes on replay.
                let spec = match policy {
                    PolicyKind::WeightedFair => SchedulerSpec::WeightedFair {
                        weights: workload.weights(),
                        lane_order: LaneOrder::default(),
                    },
                    other => SchedulerSpec::from(other),
                };
                cells.push(CellSpec {
                    label: format!("asym{asymmetry}/skew{skew}/{}", spec.name()),
                    seed: args.seed,
                    fleet: args.fleet_config(),
                    scheduler: spec,
                    admission: AdmissionSpec::AdmitAll,
                    config,
                    sample_interval,
                    workload: Arc::clone(&workload),
                });
            }
        }
    }
    // Admission shedding bounds queue depth: budget the aggressor's lane.
    // Recorded as a `token-bucket` segment: the flight record keeps it for
    // diffing, but replay mode skips it (the gate's internal state is not
    // serialized).
    let gated_workload = Arc::new(
        MultiTenantSpec::aggressor_victim(victim_jobs, victim_rate, 10.0, 1.0, args.seed)
            .generate(),
    );
    let generous = TokenBucketConfig {
        rate_hz: 1e3,
        burst: 1e3,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e9,
        ..TokenBucketConfig::default()
    };
    cells.push(CellSpec {
        label: "gated".to_string(),
        seed: args.seed,
        fleet: args.fleet_config(),
        scheduler: SchedulerSpec::WeightedFair {
            weights: gated_workload.weights(),
            lane_order: LaneOrder::default(),
        },
        admission: AdmissionSpec::TokenBucket {
            default: generous,
            per_tenant: vec![(
                TenantId(1),
                TokenBucketConfig {
                    max_queue_depth: depth_limit,
                    ..generous
                },
            )],
        },
        config,
        sample_interval,
        workload: Arc::clone(&gated_workload),
    });

    let outcome = run_cells(args, observer, &cells);
    let isolated_p99 = outcome.cells[0].report.latency.p99;

    let mut cell_index = 1;
    for &asymmetry in &asymmetries {
        for &skew in &skews {
            for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
                let report = &outcome.cells[cell_index].report;
                cell_index += 1;
                let victim = report.tenant_named("victim").expect("victim stats");
                let aggressor = report.tenant_named("aggressor").expect("aggressor stats");
                println!(
                    "{:>5} {:>5} {:>7} {:>12.2}s {:>12.2}s {:>11.2}s {:>7.3} {:>8.3}",
                    asymmetry,
                    skew,
                    report.policy,
                    victim.latency.p99,
                    aggressor.latency.p99,
                    isolated_p99,
                    report.jains_fairness_index(),
                    report.max_min_share(),
                );

                if policy == PolicyKind::WeightedFair {
                    // A starved victim reports p99 = 0.0 and would pass the
                    // bound vacuously — completion is part of the claim.
                    if victim.completed < victim.submitted {
                        println!(
                            "FAIL: WFQ completed only {}/{} victim jobs (asym {asymmetry}, skew {skew})",
                            victim.completed, victim.submitted
                        );
                        ok = false;
                    }
                    if victim.latency.p99 > FAIR_BOUND * isolated_p99 {
                        println!(
                            "FAIL: WFQ victim p99 {:.2}s exceeds {FAIR_BOUND}x its isolated {:.2}s \
                             (asym {asymmetry}, skew {skew})",
                            victim.latency.p99, isolated_p99
                        );
                        ok = false;
                    }
                    if skew == 1.0 {
                        wfq_victim_by_asym.push(victim.latency.p99);
                    }
                } else if skew == 1.0 {
                    fifo_victim_by_asym.push(victim.latency.p99);
                }

                json_points.push(JsonValue::object([
                    ("asymmetry", JsonValue::from(asymmetry)),
                    ("weight_skew", JsonValue::from(skew)),
                    ("policy", JsonValue::from(report.policy.as_str())),
                    ("victim_p99_seconds", JsonValue::from(victim.latency.p99)),
                    (
                        "aggressor_p99_seconds",
                        JsonValue::from(aggressor.latency.p99),
                    ),
                    ("victim_isolated_p99_seconds", JsonValue::from(isolated_p99)),
                    (
                        "jains_fairness_index",
                        JsonValue::from(report.jains_fairness_index()),
                    ),
                    ("max_min_share", JsonValue::from(report.max_min_share())),
                ]));
                if policy == PolicyKind::WeightedFair && asymmetry == 10.0 && skew == 1.0 {
                    wfq_at_full_load = Some(report);
                }
            }
        }
    }

    // FIFO must degrade the victim as load grows; WFQ must not.  A shape
    // mismatch here means the sweep grid changed without this check being
    // updated — fail loudly rather than skip the acceptance claim.
    if let (&[fifo_lo, fifo_hi], &[_, wfq_hi]) = (&fifo_victim_by_asym[..], &wfq_victim_by_asym[..])
    {
        println!(
            "\nvictim p99 as the aggressor grows 2x -> 10x: \
             fifo {fifo_lo:.2}s -> {fifo_hi:.2}s, wfq stays {wfq_hi:.2}s"
        );
        if fifo_hi < 1.5 * fifo_lo {
            println!("FAIL: FIFO victim p99 did not degrade with aggressor load");
            ok = false;
        }
        if fifo_hi < 1.3 * wfq_hi {
            println!("FAIL: FIFO victim p99 is not clearly worse than WFQ at 10:1 load");
            ok = false;
        }
    } else {
        println!(
            "FAIL: degradation check expected 2 asymmetry points per policy, got fifo {} / wfq {}",
            fifo_victim_by_asym.len(),
            wfq_victim_by_asym.len()
        );
        ok = false;
    }

    // The un-gated baseline is the grid's own (asym 10, skew 1, WFQ) run;
    // the gated run is the cell list's last entry.
    let open = wfq_at_full_load.expect("grid covered asym 10 / skew 1 under WFQ");
    let gated = &outcome.cells[cells.len() - 1].report;
    let aggressor = gated.tenant_named("aggressor").expect("aggressor stats");
    let victim = gated.tenant_named("victim").expect("victim stats");
    println!(
        "admission (aggressor depth limit {depth_limit}): max queue depth {} -> {}, \
         shed {} aggressor / {} victim jobs",
        open.max_queue_depth(),
        gated.max_queue_depth(),
        aggressor.shed,
        victim.shed
    );
    if aggressor.max_queue_depth > depth_limit {
        println!("FAIL: admission did not bound the aggressor's queue depth");
        ok = false;
    }
    if aggressor.shed == 0 || open.max_queue_depth() <= gated.max_queue_depth() {
        println!("FAIL: admission shedding did not reduce the queue backlog");
        ok = false;
    }
    if victim.shed > 0 {
        println!("FAIL: admission shed the victim's jobs");
        ok = false;
    }
    json_points.push(JsonValue::object([
        ("check", JsonValue::from("admission")),
        ("depth_limit", JsonValue::from(depth_limit)),
        (
            "open_max_queue_depth",
            JsonValue::from(open.max_queue_depth()),
        ),
        (
            "gated_max_queue_depth",
            JsonValue::from(gated.max_queue_depth()),
        ),
        ("aggressor_shed", JsonValue::from(aggressor.shed)),
        ("victim_shed", JsonValue::from(victim.shed)),
    ]));

    (ok, JsonValue::Array(json_points))
}

/// `--mode aging-sweep`: map `ShortestPredictedFirst`'s aging weight
/// against p99 latency and starvation incidence, validating the shipped
/// `DEFAULT_AGING_WEIGHT`.
fn aging_sweep(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    use sx_cluster::scheduler::DEFAULT_AGING_WEIGHT;

    // A short-job flood with rare large jobs — the starvation-prone shape:
    // pure SJF always prefers the fresh shorts, so the large jobs' waits
    // stretch toward the whole makespan.  The flood must actually exceed
    // the fleet's service capacity or queues never form and every weight
    // looks identical, so the arrival rate is derived from the cost
    // model itself: ~125% of what the fleet can serve warm.  The capacity
    // probe is hoisted into the plan (`SweepPlan::calibrated`), so the rate
    // is pinned to the (fleet, load) coordinate and cannot drift if axes
    // are added or reordered.
    let plan = SweepPlan::new(args.rate_hz, args.qpus, args.sim_config(WorkloadMode::Open))
        .seeds(vec![args.seed])
        .fleets(vec![(String::new(), args.fleet_config())])
        .loads(vec![1.25])
        .sample_interval(args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL))
        .calibrated(&[10])
        .unwrap_or_else(|err| {
            eprintln!("aging-sweep calibration failed: {err}");
            std::process::exit(2);
        });

    let weights = [0.0, 0.01, 0.03, DEFAULT_AGING_WEIGHT, 0.3, 1.0];
    // The aging weight is the scheduler axis: f64 `Display` round-trips
    // exactly, so the axis names parse back to the identical weights.
    let weight_names: Vec<String> = weights.iter().map(|w| format!("{w}")).collect();
    let scheduler_names: Vec<&str> = weight_names.iter().map(String::as_str).collect();
    let cells = plan.expand(
        &[(String::new(), ())],
        &scheduler_names,
        |seed, rate_hz, ()| {
            let spec = WorkloadSpec {
                jobs: args.jobs,
                seed,
                arrivals: ArrivalProcess::Poisson { rate_hz },
                mix: vec![
                    (12.0, FamilySpec::MaxCutCycle { sizes: vec![8, 10] }),
                    (1.0, FamilySpec::Partition { n: 40 }),
                ],
                deadlines: DeadlinePolicy::None,
            };
            match spec.try_generate() {
                Ok(workload) => Arc::new(workload),
                Err(err) => {
                    eprintln!("invalid workload spec: {err}");
                    std::process::exit(2);
                }
            }
        },
        |name, _| SchedulerSpec::ShortestPredictedFirst {
            aging_weight: name.parse().expect("weight axis names are f64 strings"),
        },
    );
    let workload = Arc::clone(&cells[0].workload);

    println!(
        "# cluster_sim aging-sweep: {} jobs ({} distinct topologies), {} QPUs, seed {} \
         (default weight {DEFAULT_AGING_WEIGHT})",
        workload.len(),
        workload.distinct_topologies(),
        args.qpus,
        args.seed
    );
    println!(
        "\n{:>8} {:>9} {:>9} {:>11} {:>11} {:>10}",
        "aging", "p99 [s]", "mean [s]", "max wait", "starved", "makespan"
    );

    let outcome = run_cells(args, observer, &cells);

    let mut ok = true;
    let mut points: Vec<(f64, f64, f64)> = Vec::new(); // (weight, p99, starvation)
    let mut json_points: Vec<JsonValue> = Vec::new();
    for (&weight, cell) in weights.iter().zip(&outcome.cells) {
        let report = &cell.report;
        // Starvation incidence: fraction of completed jobs that spent more
        // than a quarter of the whole makespan just waiting — jobs the
        // scheduler effectively parked until the stream dried up.
        let threshold = 0.25 * report.makespan_seconds;
        let starved = report
            .records
            .iter()
            .filter(|r| r.wait_seconds() > threshold)
            .count();
        let starvation = starved as f64 / report.completed.max(1) as f64;
        println!(
            "{:>8} {:>9.2} {:>9.2} {:>10.2}s {:>10.1}% {:>9.1}s",
            weight,
            report.latency.p99,
            report.latency.mean,
            report.wait.max,
            100.0 * starvation,
            report.makespan_seconds
        );
        points.push((weight, report.latency.p99, starvation));
        json_points.push(JsonValue::object([
            ("aging_weight", JsonValue::from(weight)),
            ("p99_seconds", JsonValue::from(report.latency.p99)),
            ("mean_seconds", JsonValue::from(report.latency.mean)),
            ("max_wait_seconds", JsonValue::from(report.wait.max)),
            ("starvation_incidence", JsonValue::from(starvation)),
        ]));
    }

    let best_p99 = points
        .iter()
        .map(|&(_, p99, _)| p99)
        .fold(f64::INFINITY, f64::min);
    let default_point = points
        .iter()
        .find(|&&(w, _, _)| w == DEFAULT_AGING_WEIGHT)
        .copied()
        .expect("default weight is in the sweep");
    let pure_sjf = points[0];
    println!(
        "\ndefault weight {DEFAULT_AGING_WEIGHT}: p99 {:.2}s (sweep best {best_p99:.2}s), \
         starvation {:.1}% (pure SJF {:.1}%)",
        default_point.1,
        100.0 * default_point.2,
        100.0 * pure_sjf.2
    );
    // The principled default: near the p99 optimum of the sweep, and it
    // must not starve more than pure SJF does.
    if default_point.1 > 1.5 * best_p99 {
        println!("FAIL: DEFAULT_AGING_WEIGHT p99 is >1.5x the sweep optimum");
        ok = false;
    }
    if default_point.2 > pure_sjf.2 {
        println!("FAIL: DEFAULT_AGING_WEIGHT starves more than pure SJF");
        ok = false;
    }

    (ok, JsonValue::Array(json_points))
}

/// `--mode admission`: cache-admission comparison (always vs the
/// second-chance doorkeeper) on a low-repetition mix with a bounded cache.
fn admission_compare(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    // A hot set of two recurring topologies drowned in one-shot variants —
    // the mix where unconditional caching churns the bounded cache.
    let spec = WorkloadSpec {
        jobs: args.jobs,
        seed: args.seed,
        arrivals: ArrivalProcess::Poisson {
            rate_hz: args.rate_hz,
        },
        mix: vec![
            (
                1.0,
                FamilySpec::MaxCutCycle {
                    sizes: vec![24, 30],
                },
            ),
            (
                2.0,
                FamilySpec::MaxCutGnp {
                    n: 18,
                    p: 0.3,
                    variants: 40,
                },
            ),
        ],
        deadlines: DeadlinePolicy::None,
    };
    let workload = match spec.try_generate() {
        Ok(workload) => workload,
        Err(err) => {
            eprintln!("invalid workload spec: {err}");
            std::process::exit(2);
        }
    };
    let capacity = args.capacity.unwrap_or(3);
    println!(
        "# cluster_sim admission: {} jobs over {} distinct topologies, {} QPUs, \
         capacity {capacity}, seed {}",
        workload.len(),
        workload.distinct_topologies(),
        args.qpus,
        args.seed
    );
    println!(
        "\n{:>14} {:>7} {:>10} {:>10} {:>10} {:>6}",
        "admission", "hit%", "mean [s]", "evictions", "bypassed", "cold"
    );

    let mut results: Vec<(AdmissionPolicy, SimReport)> = Vec::new();
    let mut json_points: Vec<JsonValue> = Vec::new();
    for admission in AdmissionPolicy::all() {
        let report = observer.run(
            args.seed,
            args.fleet_config()
                .with_cache(capacity, args.eviction.unwrap_or_default())
                .with_cache_admission(admission),
            &workload,
            &SchedulerSpec::Fifo,
            &mut AdmitAll,
            args.sim_config(WorkloadMode::Open),
            None,
        );
        println!(
            "{:>14} {:>7.1} {:>10.3} {:>10} {:>10} {:>6}",
            admission.name(),
            100.0 * report.hit_rate(),
            report.latency.mean,
            report.evictions(),
            report.cache_bypassed(),
            report.cold_misses()
        );
        json_points.push(JsonValue::object([
            ("admission", JsonValue::from(admission.name())),
            ("hit_rate", JsonValue::from(report.hit_rate())),
            ("mean_latency_seconds", JsonValue::from(report.latency.mean)),
            ("evictions", JsonValue::from(report.evictions())),
            ("bypassed", JsonValue::from(report.cache_bypassed())),
            ("cold_misses", JsonValue::from(report.cold_misses())),
        ]));
        results.push((admission, report));
    }

    let always = &results[0].1;
    let second = &results[1].1;
    let mut ok = true;
    if second.evictions() >= always.evictions() {
        println!(
            "FAIL: second-chance did not reduce cache churn ({} vs {})",
            second.evictions(),
            always.evictions()
        );
        ok = false;
    }
    if second.latency.mean > always.latency.mean * 1.02 {
        println!(
            "FAIL: second-chance lost on mean latency ({:.3}s vs {:.3}s)",
            second.latency.mean, always.latency.mean
        );
        ok = false;
    }
    println!(
        "\nsecond-chance vs always: {:.2}x evictions, {:.2}x mean latency",
        second.evictions() as f64 / always.evictions().max(1) as f64,
        second.latency.mean / always.latency.mean
    );

    (ok, JsonValue::Array(json_points))
}

/// Jain's-index guardrail of `--mode slo`: EDF-ordered lanes must keep the
/// index within this relative tolerance of plain (FIFO-lane) WFQ at the
/// high-load point — SLO attainment must not be bought with unfairness.
const SLO_JAIN_TOLERANCE: f64 = 0.05;

/// The deadline composition of `--mode slo`: two tenants re-solving
/// mixed-size cycle families (cold embed cost ∝ LPS³, so proportional
/// deadlines span a wide tightness range within each lane — the
/// heterogeneity EDF ordering exploits), with per-tenant proportional
/// slack.
fn slo_spec(
    victim_jobs: usize,
    victim_rate_hz: f64,
    victim_factor: f64,
    aggressor_factor: f64,
    asymmetry: f64,
    seed: u64,
) -> MultiTenantSpec {
    MultiTenantSpec {
        seed,
        tenants: vec![
            TenantSpec {
                name: "victim".to_string(),
                weight: 1.0,
                jobs: victim_jobs,
                arrivals: ArrivalProcess::Poisson {
                    rate_hz: victim_rate_hz,
                },
                // Disjoint size sets per tenant: each tenant pays its own
                // cold embeds, so the (large) one-off embed costs cannot
                // flip between tenants across policies and destabilize the
                // fairness comparison.
                mix: vec![(
                    1.0,
                    FamilySpec::MaxCutCycle {
                        sizes: vec![12, 20, 28, 36],
                    },
                )],
                deadlines: DeadlinePolicy::ProportionalSlack {
                    factor: victim_factor,
                },
            },
            TenantSpec {
                name: "aggressor".to_string(),
                weight: 1.0,
                jobs: ((victim_jobs as f64) * asymmetry).round() as usize,
                arrivals: ArrivalProcess::Poisson {
                    rate_hz: victim_rate_hz * asymmetry,
                },
                mix: vec![(
                    1.0,
                    FamilySpec::MaxCutCycle {
                        sizes: vec![14, 22, 30, 34],
                    },
                )],
                deadlines: DeadlinePolicy::ProportionalSlack {
                    factor: aggressor_factor,
                },
            },
        ],
    }
}

/// `--mode slo`: sweep load × deadline slack × policy on a two-tenant
/// deadline composition, enforcing the deadline acceptance claims: at the
/// high-load/tight-slack point, EDF-in-lane WFQ beats both FIFO and plain
/// (FIFO-lane) WFQ on SLO miss-rate without degrading Jain's index, and
/// token-bucket deadline-infeasibility shedding sheds doomed aggressor
/// jobs while never touching the feasible victim.
fn slo(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    // Capacity-derived arrival rates, as in the aging sweep: `load` is the
    // ratio of offered warm work to what the fleet can serve.  The mix
    // spans lps 12..=36 and warm service grows with size, so capacity is
    // calibrated against the *mean* warm service over the grid's sizes —
    // calibrating on one mid size would make nominal load 1.0 quietly
    // super-critical and saturate long runs into all-miss ties.  The probe
    // is hoisted into the plan (`SweepPlan::calibrated`): one calibration
    // per fleet, every cell's rate derived from the stored value.
    let grid_sizes = [12usize, 14, 20, 22, 28, 30, 34, 36];
    let loads = [0.6, 1.1];
    let factors = [6.0, 12.0]; // tight vs loose proportional slack
    let victim_jobs = (args.jobs / 2).max(10);
    let config = args.sim_config(WorkloadMode::Open);
    let sample_interval = args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL);
    let plan = SweepPlan::new(args.rate_hz, args.qpus, config)
        .seeds(vec![args.seed])
        .fleets(vec![(String::new(), args.fleet_config())])
        .loads(loads.to_vec())
        .sample_interval(sample_interval)
        .calibrated(&grid_sizes)
        .unwrap_or_else(|err| {
            eprintln!("slo calibration failed: {err}");
            std::process::exit(2);
        });

    println!(
        "# cluster_sim slo: 2 tenants x {victim_jobs} jobs, {} {} QPUs, seed {}, \
         loads {loads:?} x slack factors {factors:?}",
        args.qpus, args.fleet, args.seed
    );
    println!(
        "\n{:>5} {:>6} {:>9} {:>6} {:>7} {:>8} {:>11} {:>11} {:>7}",
        "load", "slack", "policy", "done", "miss%", "misses", "p99 late", "p99 lat", "Jain"
    );

    let mut ok = true;
    let mut json_points: Vec<JsonValue> = Vec::new();
    // (policy name -> (miss_rate, jain)) at the enforced grid point.
    let mut at_high_load: Vec<(String, f64, f64)> = Vec::new();

    // The (load × slack × policy) grid through the plan: one workload per
    // (load, slack) coordinate shared across the four scheduler specs.
    let variants: Vec<(String, f64)> = factors.iter().map(|&f| (format!("slack{f}"), f)).collect();
    let schedulers = ["fifo", "wfq-fifo", "wfq", "edf"];
    let mut cells = plan.expand(
        &variants,
        &schedulers,
        |seed, rate_hz, &factor| {
            Arc::new(slo_spec(victim_jobs, rate_hz / 2.0, factor, factor, 1.0, seed).generate())
        },
        |name, workload| match name {
            "fifo" => SchedulerSpec::Fifo,
            "wfq-fifo" => SchedulerSpec::WeightedFair {
                weights: workload.weights(),
                lane_order: LaneOrder::Fifo,
            },
            "wfq" => SchedulerSpec::WeightedFair {
                weights: workload.weights(),
                lane_order: LaneOrder::EarliestDeadline,
            },
            _ => SchedulerSpec::EarliestDeadlineFirst,
        },
    );
    let grid_len = cells.len();

    // Deadline-infeasibility shedding cells (checked after the grid): a
    // loose-slack victim (every job feasible at admission) shares the
    // fleet with a tight-slack cache-busting flood.  The aggressor's
    // diverse Gnp jobs embed cold and pin devices for long stretches; an
    // aggressor arrival with only a few seconds of slack while every
    // device is mid-embed is provably doomed (even the best case — warm
    // service the instant a device frees — lands past its deadline) and
    // must shed.  The victim's slack clears the worst possible pin (the
    // costliest cold service in the mix, with headroom), so the
    // admission-time bound can never claim a victim job.
    let probe = Fleet::new(args.fleet_config(), SplitExecConfig::with_seed(args.seed));
    let worst_pin = probe.worst_cold_service_seconds(36);
    let shed_workload = Arc::new(
        MultiTenantSpec {
            seed: args.seed,
            tenants: vec![
                TenantSpec {
                    name: "victim".to_string(),
                    weight: 1.0,
                    jobs: victim_jobs,
                    arrivals: ArrivalProcess::Poisson {
                        rate_hz: plan.rate_for(0, loads[1]) / 4.0,
                    },
                    mix: vec![(
                        1.0,
                        FamilySpec::MaxCutCycle {
                            sizes: vec![20, 28],
                        },
                    )],
                    deadlines: DeadlinePolicy::FixedSlack {
                        slack_seconds: 4.0 * worst_pin,
                    },
                },
                TenantSpec {
                    name: "aggressor".to_string(),
                    weight: 1.0,
                    jobs: victim_jobs * 3,
                    arrivals: ArrivalProcess::Poisson {
                        rate_hz: 3.0 * plan.rate_for(0, loads[1]) / 4.0,
                    },
                    mix: vec![(
                        1.0,
                        FamilySpec::MaxCutGnp {
                            n: 30,
                            p: 0.3,
                            variants: 40,
                        },
                    )],
                    deadlines: DeadlinePolicy::FixedSlack {
                        slack_seconds: 0.05 * worst_pin,
                    },
                },
            ],
        }
        .generate(),
    );
    for shed_infeasible in [false, true] {
        cells.push(CellSpec {
            label: format!("shed-{shed_infeasible}"),
            seed: args.seed,
            fleet: args.fleet_config(),
            scheduler: SchedulerSpec::WeightedFair {
                weights: shed_workload.weights(),
                lane_order: LaneOrder::default(),
            },
            admission: AdmissionSpec::TokenBucket {
                default: TokenBucketConfig {
                    rate_hz: 1e3, // only the feasibility check binds
                    burst: 1e3,
                    max_queue_depth: usize::MAX,
                    max_defer_seconds: 1e9,
                    shed_infeasible,
                },
                per_tenant: Vec::new(),
            },
            config,
            sample_interval,
            workload: Arc::clone(&shed_workload),
        });
    }

    let outcome = run_cells(args, observer, &cells);

    let mut cell_index = 0;
    for &load in &loads {
        for &factor in &factors {
            for _scheduler in &schedulers {
                let report = &outcome.cells[cell_index].report;
                cell_index += 1;
                println!(
                    "{:>5} {:>6} {:>9} {:>6} {:>7.1} {:>8} {:>10.2}s {:>10.2}s {:>7.3}",
                    load,
                    factor,
                    report.policy,
                    report.completed,
                    100.0 * report.slo_miss_rate(),
                    report.slo_misses(),
                    report.lateness.p99,
                    report.latency.p99,
                    report.jains_fairness_index(),
                );
                json_points.push(JsonValue::object([
                    ("load", JsonValue::from(load)),
                    ("slack_factor", JsonValue::from(factor)),
                    ("policy", JsonValue::from(report.policy.as_str())),
                    ("slo_jobs", JsonValue::from(report.slo_jobs())),
                    ("slo_misses", JsonValue::from(report.slo_misses())),
                    ("slo_miss_rate", JsonValue::from(report.slo_miss_rate())),
                    ("p99_lateness_seconds", JsonValue::from(report.lateness.p99)),
                    (
                        "jains_fairness_index",
                        JsonValue::from(report.jains_fairness_index()),
                    ),
                ]));
                if load == loads[1] && factor == factors[0] {
                    at_high_load.push((
                        report.policy.clone(),
                        report.slo_miss_rate(),
                        report.jains_fairness_index(),
                    ));
                }
            }
        }
    }

    // The enforced point: high load, tight slack.
    let find = |name: &str| {
        at_high_load
            .iter()
            .find(|(p, _, _)| p == name)
            .unwrap_or_else(|| panic!("policy {name} missing from the grid"))
    };
    let (_, fifo_miss, _) = find("fifo");
    let (_, plain_miss, plain_jain) = find("wfq-fifo");
    let (_, edf_lane_miss, edf_lane_jain) = find("wfq");
    println!(
        "\nhigh load, tight slack: miss-rate fifo {:.1}% | wfq-fifo {:.1}% | wfq (EDF lanes) {:.1}%",
        100.0 * fifo_miss,
        100.0 * plain_miss,
        100.0 * edf_lane_miss
    );
    if *fifo_miss <= 0.0 {
        println!("FAIL: the high-load point produced no FIFO misses — the grid is too easy");
        ok = false;
    }
    if edf_lane_miss >= fifo_miss {
        println!(
            "FAIL: EDF-in-lane WFQ miss-rate {:.3} is not strictly below FIFO's {:.3}",
            edf_lane_miss, fifo_miss
        );
        ok = false;
    }
    if edf_lane_miss >= plain_miss {
        println!(
            "FAIL: EDF-in-lane WFQ miss-rate {:.3} is not strictly below plain WFQ's {:.3}",
            edf_lane_miss, plain_miss
        );
        ok = false;
    }
    if (edf_lane_jain - plain_jain).abs() > SLO_JAIN_TOLERANCE * plain_jain {
        println!(
            "FAIL: EDF lanes moved Jain's index to {:.3}, more than {:.0}% away from plain WFQ's {:.3}",
            edf_lane_jain,
            100.0 * SLO_JAIN_TOLERANCE,
            plain_jain
        );
        ok = false;
    }

    // The shedding cells are the list's last two entries: open (shedding
    // off) then gated (shedding on).
    let open = &outcome.cells[grid_len].report;
    let gated = &outcome.cells[grid_len + 1].report;
    let victim = gated.tenant_named("victim").expect("victim stats");
    let aggressor = gated.tenant_named("aggressor").expect("aggressor stats");
    println!(
        "infeasibility shedding: {} aggressor / {} victim jobs shed as doomed; \
         completed-miss-rate {:.1}% -> {:.1}%",
        aggressor.shed_infeasible,
        victim.shed_infeasible,
        100.0 * open.slo_miss_rate(),
        100.0 * gated.slo_miss_rate()
    );
    if victim.shed_infeasible > 0 {
        println!("FAIL: infeasibility shedding claimed a feasible victim job");
        ok = false;
    }
    if victim.completed < victim.submitted {
        println!(
            "FAIL: victim completed only {}/{} jobs under the gate",
            victim.completed, victim.submitted
        );
        ok = false;
    }
    if aggressor.shed_infeasible == 0 {
        println!("FAIL: the doomed flood never tripped infeasibility shedding");
        ok = false;
    }
    if gated.slo_miss_rate() > open.slo_miss_rate() {
        println!("FAIL: shedding doomed work worsened the completed-jobs miss rate");
        ok = false;
    }
    json_points.push(JsonValue::object([
        ("check", JsonValue::from("infeasible-shedding")),
        (
            "aggressor_shed_infeasible",
            JsonValue::from(aggressor.shed_infeasible),
        ),
        (
            "victim_shed_infeasible",
            JsonValue::from(victim.shed_infeasible),
        ),
        ("open_miss_rate", JsonValue::from(open.slo_miss_rate())),
        ("gated_miss_rate", JsonValue::from(gated.slo_miss_rate())),
    ]));

    (ok, JsonValue::Array(json_points))
}

/// Schema tag stamped into (and required back out of) `BENCH_cluster.json`.
/// Bump the version when a field is added, removed or re-typed so baseline
/// trackers fail loudly instead of misreading old documents.
const BENCH_SCHEMA: &str = "sx-cluster-bench/v2";

/// Every per-cell key that must be present and a finite number.
const BENCH_CELL_NUM_KEYS: &[&str] = &[
    "load",
    "jobs",
    "completed",
    "events",
    "wall_seconds",
    "events_per_sec",
    "jobs_per_sec",
    "ns_per_event",
    "makespan_seconds",
    "latency_p50_seconds",
    "latency_p95_seconds",
    "latency_p99_seconds",
    "hit_rate",
];

/// `--mode bench`: the engine performance baseline.  Runs a fixed seeded
/// matrix (policy × fleet × offered load) of two-tenant aggressor/victim
/// compositions, each cell through [`simulate_with_telemetry`] with a
/// [`NullSink`] and a sketch-only [`MetricsRegistry`] — the recommended
/// large-run telemetry configuration — wall-clock timed host-side via
/// [`HostStopwatch`].  Writes the schema-stable `BENCH_cluster.json`
/// (path overridable with `--json`), then re-reads the file, parses it
/// with `sx_cluster::json::parse` and validates it against
/// [`BENCH_SCHEMA`], so a single CI invocation covers generation and
/// validation.  Also re-runs the first cell with a retaining [`VecSink`]
/// and no registry and requires the bit-identical report the telemetry
/// purity contract promises.
///
/// The matrix is deliberately fixed (it ignores `--policy` and
/// `--fleet`): baselines are only comparable across invocations if every
/// run measures the same cells.  `--jobs`, `--qpus`, `--seed` and
/// `--sample-interval` scale the matrix and are recorded in the output.
fn bench(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    let schedulers = ["fifo", "affinity", "wfq"];
    let fleets = ["uniform", "hetero"];
    let loads = [0.7, 1.1];
    // The aggressor submits 3x the victim's jobs at 3x its rate, so a cell
    // totals ~4x `victim_jobs` — sized so the default `--jobs 200` yields
    // 200-job cells like compare mode.
    let asymmetry = 3.0;
    let victim_jobs = (args.jobs / 4).max(10);
    let sample_interval = args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL);

    let fleet_config = |kind: &str| match kind {
        "uniform" => FleetConfig {
            qpus: args.qpus,
            seed: args.seed,
            ..FleetConfig::default()
        },
        _ => FleetConfig::heterogeneous(args.qpus, args.seed),
    };

    println!(
        "# cluster_sim bench: {} policies x {} fleets x {} loads, ~{} jobs/cell, {} QPUs, seed {}, \
         sample interval {sample_interval}s",
        schedulers.len(),
        fleets.len(),
        loads.len(),
        victim_jobs * 4,
        args.qpus,
        args.seed,
    );
    println!(
        "\n{:>9} {:>8} {:>5} {:>7} {:>8} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "policy",
        "fleet",
        "load",
        "events",
        "wall [s]",
        "events/s",
        "jobs/s",
        "ns/event",
        "p99 [s]",
        "warm%"
    );

    // The cell matrix through the plan — capacity-derived arrival rates as
    // in the slo/aging sweeps (`load` is offered warm work over what each
    // fleet can serve, mix spans lps 16, 20, 24), with the per-fleet
    // calibration probes hoisted into `SweepPlan::calibrated`.
    let plan = SweepPlan::new(args.rate_hz, args.qpus, args.sim_config(WorkloadMode::Open))
        .seeds(vec![args.seed])
        .fleets(vec![
            ("uniform".to_string(), fleet_config("uniform")),
            ("hetero".to_string(), fleet_config("hetero")),
        ])
        .loads(loads.to_vec())
        .sample_interval(sample_interval)
        .calibrated(&[16, 20, 24])
        .unwrap_or_else(|err| {
            eprintln!("bench calibration failed: {err}");
            std::process::exit(2);
        });
    let cell_specs = plan.expand(
        &[(String::new(), ())],
        &schedulers,
        |seed, total_rate, ()| {
            let victim_rate = total_rate / (1.0 + asymmetry);
            Arc::new(
                MultiTenantSpec::aggressor_victim(victim_jobs, victim_rate, asymmetry, 1.0, seed)
                    .generate(),
            )
        },
        |name, workload| match name {
            "fifo" => SchedulerSpec::Fifo,
            "affinity" => SchedulerSpec::CacheAffinity,
            _ => SchedulerSpec::WeightedFair {
                weights: workload.weights(),
                lane_order: LaneOrder::default(),
            },
        },
    );

    let mut ok = true;
    // The serial oracle pass: per-cell wall clocks for the baseline's
    // cells section, through the observer chain so `--record` still
    // captures every cell.  (CI's baseline runs without --record, where
    // the chain degenerates to the bare NullSink this mode always timed.)
    let serial = {
        let stopwatch = HostStopwatch::start();
        let results: Vec<CellResult> = cell_specs
            .iter()
            .enumerate()
            .map(|(index, cell)| observer.run_cell(index, cell))
            .collect();
        SweepOutcome::collect(results, stopwatch.elapsed_seconds())
    };

    // The purity contract, enforced at runtime on the matrix's first cell:
    // swapping the sink for a retaining VecSink and dropping the registry
    // must not move a single bit of the report.
    {
        let first = &cell_specs[0];
        let mut vec_sink = VecSink::new();
        let mut scheduler = first.scheduler.build();
        let mut admission = first.admission.build();
        let rerun = simulate_with_telemetry(
            Fleet::new(first.fleet.clone(), SplitExecConfig::with_seed(first.seed)),
            &first.workload,
            scheduler.as_mut(),
            admission.as_mut(),
            first.config,
            &mut vec_sink,
            None,
        );
        if rerun != serial.cells[0].report {
            println!("FAIL: sink-on vs sink-off reports differ — telemetry perturbed the run");
            ok = false;
        }
        let fired = vec_sink
            .records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::Fired(_)))
            .count();
        if fired != rerun.events {
            println!(
                "FAIL: VecSink saw {fired} fired records but the run popped {} events",
                rerun.events
            );
            ok = false;
        }
    }

    let mut cells: Vec<JsonValue> = Vec::new();
    let mut total = EnginePerf {
        wall_seconds: 0.0,
        events: 0,
        jobs: 0,
    };
    let mut cell_index = 0;
    for fleet_kind in fleets {
        for &load in &loads {
            for _scheduler in &schedulers {
                let cell = &serial.cells[cell_index];
                cell_index += 1;
                let report = &cell.report;
                let perf = EnginePerf {
                    wall_seconds: cell.wall_seconds,
                    events: report.events,
                    jobs: report.completed,
                };
                total.wall_seconds += perf.wall_seconds;
                total.events += perf.events;
                total.jobs += perf.jobs;

                let sketch = &cell.latency_sketch;
                if sketch.count() as usize != report.completed {
                    println!(
                        "FAIL: latency sketch saw {} observations for {} completions",
                        sketch.count(),
                        report.completed
                    );
                    ok = false;
                }
                println!(
                    "{:>9} {:>8} {:>5.2} {:>7} {:>8.4} {:>10.0} {:>9.1} {:>9.0} {:>9.2} {:>6.1}",
                    report.policy,
                    fleet_kind,
                    load,
                    perf.events,
                    perf.wall_seconds,
                    perf.events_per_sec(),
                    perf.jobs_per_sec(),
                    perf.ns_per_event(),
                    sketch.p99(),
                    100.0 * report.hit_rate(),
                );

                cells.push(JsonValue::object([
                    ("policy", JsonValue::from(report.policy.as_str())),
                    ("fleet", JsonValue::from(fleet_kind)),
                    ("load", JsonValue::from(load)),
                    ("jobs", JsonValue::from(report.jobs)),
                    ("completed", JsonValue::from(report.completed)),
                    ("events", JsonValue::from(perf.events)),
                    ("wall_seconds", JsonValue::from(perf.wall_seconds)),
                    ("events_per_sec", JsonValue::from(perf.events_per_sec())),
                    ("jobs_per_sec", JsonValue::from(perf.jobs_per_sec())),
                    ("ns_per_event", JsonValue::from(perf.ns_per_event())),
                    ("makespan_seconds", JsonValue::from(report.makespan_seconds)),
                    ("latency_p50_seconds", JsonValue::from(sketch.p50())),
                    ("latency_p95_seconds", JsonValue::from(sketch.p95())),
                    ("latency_p99_seconds", JsonValue::from(sketch.p99())),
                    ("hit_rate", JsonValue::from(report.hit_rate())),
                ]));
            }
        }
    }

    // Parallel-scaling measurement: re-run the identical cell list across
    // `--threads` workers and require bit-identical results — the
    // determinism contract's "parallelism is invisible" clause, enforced
    // on every bench run.  Degenerate single-thread figures when observing
    // forces serial or only one worker is available.
    let resolved_threads = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        args.threads
    };
    let run_parallel = resolved_threads > 1 && !observer.active();
    let (scaling_threads, parallel_wall, parallel_eps, bit_identical) = if run_parallel {
        let parallel = run_sweep(&cell_specs, resolved_threads);
        let identical = parallel.cells.len() == serial.cells.len()
            && parallel.cells.iter().zip(&serial.cells).all(|(a, b)| {
                a.report == b.report
                    && a.latency_sketch == b.latency_sketch
                    && a.wait_sketch == b.wait_sketch
            });
        if !identical {
            println!(
                "FAIL: parallel sweep ({resolved_threads} threads) diverged from the serial oracle"
            );
            ok = false;
        }
        (
            resolved_threads,
            parallel.wall_seconds,
            parallel.events_per_sec(),
            identical,
        )
    } else {
        (1, serial.wall_seconds, serial.events_per_sec(), true)
    };
    let speedup = if parallel_wall > 0.0 {
        serial.wall_seconds / parallel_wall
    } else {
        1.0
    };
    println!(
        "\nparallel scaling: {scaling_threads} thread(s), serial {:.3}s -> parallel {:.3}s \
         ({speedup:.2}x, bit-identical: {bit_identical})",
        serial.wall_seconds, parallel_wall,
    );

    let expected_cells = schedulers.len() * fleets.len() * loads.len();
    let doc = JsonValue::object([
        ("schema", JsonValue::from(BENCH_SCHEMA)),
        // As a string, like the generic wrapper: a u64 seed above 2^53
        // would be silently rounded through JsonValue::Num's f64.
        ("seed", JsonValue::from(args.seed.to_string())),
        ("jobs", JsonValue::from(args.jobs)),
        ("qpus", JsonValue::from(args.qpus)),
        ("sample_interval_seconds", JsonValue::from(sample_interval)),
        ("telemetry_pure", JsonValue::from(ok)),
        ("cells", JsonValue::Array(cells)),
        (
            "parallel_scaling",
            JsonValue::object([
                ("threads", JsonValue::from(scaling_threads)),
                ("serial_wall_seconds", JsonValue::from(serial.wall_seconds)),
                (
                    "serial_events_per_sec",
                    JsonValue::from(serial.events_per_sec()),
                ),
                ("parallel_wall_seconds", JsonValue::from(parallel_wall)),
                ("parallel_events_per_sec", JsonValue::from(parallel_eps)),
                ("speedup", JsonValue::from(speedup)),
                ("bit_identical", JsonValue::from(bit_identical)),
            ]),
        ),
        (
            "totals",
            JsonValue::object([
                ("wall_seconds", JsonValue::from(total.wall_seconds)),
                ("events", JsonValue::from(total.events)),
                ("jobs", JsonValue::from(total.jobs)),
                ("events_per_sec", JsonValue::from(total.events_per_sec())),
                ("jobs_per_sec", JsonValue::from(total.jobs_per_sec())),
                ("ns_per_event", JsonValue::from(total.ns_per_event())),
            ]),
        ),
    ]);

    println!(
        "\ntotal: {} events over {:.3}s host wall clock — {:.0} events/s, {:.0} ns/event",
        total.events,
        total.wall_seconds,
        total.events_per_sec(),
        total.ns_per_event(),
    );

    // Write, re-read through the strict parser, validate.  Going through
    // the filesystem (rather than validating the in-memory document) makes
    // this the same read path a downstream baseline tracker would use.
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());
    if let Err(err) = std::fs::write(&path, format!("{doc}\n")) {
        eprintln!("cannot write {path}: {err}");
        std::process::exit(2);
    }
    let reread = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot re-read {path}: {err}");
            std::process::exit(2);
        }
    };
    match sx_cluster::json::parse(&reread) {
        Ok(parsed) => match validate_bench_doc(&parsed, expected_cells) {
            Ok(()) => {
                println!("wrote {path} ({expected_cells} cells, schema {BENCH_SCHEMA} valid)")
            }
            Err(why) => {
                println!("FAIL: {path} violates {BENCH_SCHEMA}: {why}");
                ok = false;
            }
        },
        Err(err) => {
            println!("FAIL: {path} is not valid JSON: {err}");
            ok = false;
        }
    }

    (ok, doc)
}

/// Validate a parsed `BENCH_cluster.json` against the `sx-cluster-bench/v2`
/// schema documented in `docs/cluster_sim.md`.  Returns the first
/// violation found.  Numeric fields must be finite: `JsonValue` renders
/// NaN/Inf as `null`, so a non-finite metric shows up here as a
/// missing-number error rather than slipping into a baseline diff.
fn validate_bench_doc(doc: &JsonValue, expected_cells: usize) -> Result<(), String> {
    let num = |obj: &JsonValue, key: &str, at: &str| -> Result<f64, String> {
        match obj.get(key) {
            Some(&JsonValue::Num(n)) if n.is_finite() => Ok(n),
            Some(other) => Err(format!("{at}.{key}: expected a finite number, got {other}")),
            None => Err(format!("{at}.{key}: missing")),
        }
    };
    let string = |obj: &JsonValue, key: &str, at: &str| -> Result<String, String> {
        match obj.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(format!("{at}.{key}: expected a string, got {other}")),
            None => Err(format!("{at}.{key}: missing")),
        }
    };

    let schema = string(doc, "schema", "$")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("$.schema: '{schema}' != '{BENCH_SCHEMA}'"));
    }
    let seed = string(doc, "seed", "$")?;
    seed.parse::<u64>()
        .map_err(|_| format!("$.seed: '{seed}' is not a u64"))?;
    num(doc, "jobs", "$")?;
    num(doc, "qpus", "$")?;
    num(doc, "sample_interval_seconds", "$")?;
    match doc.get("telemetry_pure") {
        Some(JsonValue::Bool(_)) => {}
        other => return Err(format!("$.telemetry_pure: expected a bool, got {other:?}")),
    }

    let cells = match doc.get("cells") {
        Some(JsonValue::Array(cells)) => cells,
        other => return Err(format!("$.cells: expected an array, got {other:?}")),
    };
    if cells.len() != expected_cells {
        return Err(format!(
            "$.cells: expected {expected_cells} cells, got {}",
            cells.len()
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        let at = format!("$.cells[{i}]");
        if !matches!(cell, JsonValue::Object(_)) {
            return Err(format!("{at}: expected an object, got {cell}"));
        }
        string(cell, "policy", &at)?;
        let fleet = string(cell, "fleet", &at)?;
        if fleet != "uniform" && fleet != "hetero" {
            return Err(format!("{at}.fleet: unknown fleet '{fleet}'"));
        }
        for key in BENCH_CELL_NUM_KEYS {
            num(cell, key, &at)?;
        }
    }

    let scaling = match doc.get("parallel_scaling") {
        Some(scaling @ JsonValue::Object(_)) => scaling,
        other => {
            return Err(format!(
                "$.parallel_scaling: expected an object, got {other:?}"
            ))
        }
    };
    for key in [
        "threads",
        "serial_wall_seconds",
        "serial_events_per_sec",
        "parallel_wall_seconds",
        "parallel_events_per_sec",
        "speedup",
    ] {
        num(scaling, key, "$.parallel_scaling")?;
    }
    match scaling.get("bit_identical") {
        Some(JsonValue::Bool(_)) => {}
        other => {
            return Err(format!(
                "$.parallel_scaling.bit_identical: expected a bool, got {other:?}"
            ))
        }
    }

    let totals = match doc.get("totals") {
        Some(totals @ JsonValue::Object(_)) => totals,
        other => return Err(format!("$.totals: expected an object, got {other:?}")),
    };
    for key in [
        "wall_seconds",
        "events",
        "jobs",
        "events_per_sec",
        "jobs_per_sec",
        "ns_per_event",
    ] {
        num(totals, key, "$.totals")?;
    }
    Ok(())
}

/// Schema tag stamped into (and required back out of) the `--mode sweep`
/// JSON document.  The document is fully deterministic — no wall-clock
/// fields — so CI can byte-diff a `--threads N` run against the
/// `--threads 1` serial oracle.
const SWEEP_SCHEMA: &str = "sx-sweep/v1";

/// Per-cell keys of an `sx-sweep/v1` cell row that must be present and
/// finite numbers.
const SWEEP_CELL_NUM_KEYS: &[&str] = &[
    "load",
    "jobs",
    "completed",
    "shed",
    "events",
    "makespan_seconds",
    "latency_p50_seconds",
    "latency_p95_seconds",
    "latency_p99_seconds",
    "wait_p50_seconds",
    "wait_p95_seconds",
    "wait_p99_seconds",
    "hit_rate",
];

/// `--mode sweep`: the deterministic parallel experiment runner exposed
/// directly.  Expands an explicit seed × load × policy grid over the
/// aggressor/victim composition through [`SweepPlan`] (arrival rates
/// calibrated once per fleet, so axis order cannot move a cell's rate) and
/// executes it across `--threads` workers.  Emits a schema-stable
/// [`SWEEP_SCHEMA`] document with per-cell rows and merged sketch
/// percentiles and **no wall-clock fields** — byte-identical for every
/// thread count — then re-reads and validates it like bench mode does.
/// Host-side events/sec goes to stdout only, where it cannot perturb a
/// CI byte-diff of the document.
fn sweep_mode(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    let seeds = args.seeds.clone().unwrap_or_else(|| vec![args.seed]);
    let loads = args.loads.clone().unwrap_or_else(|| vec![0.7, 1.1]);
    let policy_names = args.policies.clone().unwrap_or_else(|| {
        ["fifo", "affinity", "wfq"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    });
    // Validate and canonicalize every policy name up front: a typo is a
    // usage error, not an empty grid or a mid-sweep panic.
    let policies: Vec<PolicyKind> = policy_names
        .iter()
        .map(|name| {
            name.parse().unwrap_or_else(|err| {
                eprintln!("--policies: {err}");
                std::process::exit(2);
            })
        })
        .collect();
    if seeds.is_empty() || loads.is_empty() || policies.is_empty() {
        eprintln!("--seeds/--loads/--policies must each name at least one axis value");
        std::process::exit(2);
    }
    let canonical_names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    let scheduler_names: Vec<&str> = canonical_names.iter().map(String::as_str).collect();

    // The same two-tenant aggressor/victim composition bench mode runs, so
    // sweep cells are comparable against the perf baseline's.
    let asymmetry = 3.0;
    let victim_jobs = (args.jobs / 4).max(10);
    let sample_interval = args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL);

    let plan = SweepPlan::new(args.rate_hz, args.qpus, args.sim_config(WorkloadMode::Open))
        .seeds(seeds.clone())
        .fleets(vec![(args.fleet.clone(), args.fleet_config())])
        .loads(loads.clone())
        .sample_interval(sample_interval)
        .calibrated(&[16, 20, 24])
        .unwrap_or_else(|err| {
            eprintln!("sweep calibration failed: {err}");
            std::process::exit(2);
        });
    let cells = plan.expand(
        &[(String::new(), ())],
        &scheduler_names,
        |seed, total_rate, ()| {
            let victim_rate = total_rate / (1.0 + asymmetry);
            Arc::new(
                MultiTenantSpec::aggressor_victim(victim_jobs, victim_rate, asymmetry, 1.0, seed)
                    .generate(),
            )
        },
        |name, workload| match name.parse::<PolicyKind>() {
            Ok(PolicyKind::WeightedFair) => SchedulerSpec::WeightedFair {
                weights: workload.weights(),
                lane_order: LaneOrder::default(),
            },
            Ok(kind) => SchedulerSpec::from(kind),
            Err(_) => unreachable!("policy names were validated above"),
        },
    );

    println!(
        "# cluster_sim sweep: {} seeds x {} loads x {} policies = {} cells, ~{} jobs/cell, \
         {} QPUs, fleet {}",
        seeds.len(),
        loads.len(),
        policies.len(),
        cells.len(),
        victim_jobs * 4,
        args.qpus,
        args.fleet,
    );
    println!(
        "\n{:>24} {:>9} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9} {:>6}",
        "cell", "policy", "load", "jobs", "done", "events", "p99 [s]", "wait p99", "warm%"
    );

    let outcome = run_cells(args, observer, &cells);

    let mut ok = true;
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut cell_index = 0;
    let mut sketch_latency_total = 0u64;
    for &seed in &seeds {
        for &load in &loads {
            for policy in &policies {
                let cell = &outcome.cells[cell_index];
                cell_index += 1;
                let report = &cell.report;
                if report.policy != policy.name() {
                    println!(
                        "FAIL: cell {} ran policy '{}' where the grid expected '{}'",
                        cell.label,
                        report.policy,
                        policy.name()
                    );
                    ok = false;
                }
                sketch_latency_total += cell.latency_sketch.count();
                println!(
                    "{:>24} {:>9} {:>5.2} {:>7} {:>7} {:>7} {:>9.2} {:>9.2} {:>6.1}",
                    cell.label,
                    report.policy,
                    load,
                    report.jobs,
                    report.completed,
                    report.events,
                    cell.latency_sketch.p99(),
                    cell.wait_sketch.p99(),
                    100.0 * report.hit_rate(),
                );
                rows.push(JsonValue::object([
                    ("label", JsonValue::from(cell.label.as_str())),
                    // Seeds travel as strings, like the other documents: a
                    // u64 above 2^53 would round through Num's f64.
                    ("seed", JsonValue::from(seed.to_string())),
                    ("policy", JsonValue::from(report.policy.as_str())),
                    ("load", JsonValue::from(load)),
                    ("jobs", JsonValue::from(report.jobs)),
                    ("completed", JsonValue::from(report.completed)),
                    ("shed", JsonValue::from(report.shed)),
                    ("events", JsonValue::from(report.events)),
                    ("makespan_seconds", JsonValue::from(report.makespan_seconds)),
                    (
                        "latency_p50_seconds",
                        JsonValue::from(cell.latency_sketch.p50()),
                    ),
                    (
                        "latency_p95_seconds",
                        JsonValue::from(cell.latency_sketch.p95()),
                    ),
                    (
                        "latency_p99_seconds",
                        JsonValue::from(cell.latency_sketch.p99()),
                    ),
                    ("wait_p50_seconds", JsonValue::from(cell.wait_sketch.p50())),
                    ("wait_p95_seconds", JsonValue::from(cell.wait_sketch.p95())),
                    ("wait_p99_seconds", JsonValue::from(cell.wait_sketch.p99())),
                    ("hit_rate", JsonValue::from(report.hit_rate())),
                ]));
            }
        }
    }
    if outcome.merged.latency.count() != sketch_latency_total {
        println!(
            "FAIL: merged latency sketch holds {} observations, cells sum to {}",
            outcome.merged.latency.count(),
            sketch_latency_total
        );
        ok = false;
    }

    let doc = JsonValue::object([
        ("schema", JsonValue::from(SWEEP_SCHEMA)),
        (
            "seeds",
            JsonValue::Array(
                seeds
                    .iter()
                    .map(|s| JsonValue::from(s.to_string()))
                    .collect(),
            ),
        ),
        ("fleet", JsonValue::from(args.fleet.as_str())),
        ("qpus", JsonValue::from(args.qpus)),
        ("jobs_per_cell", JsonValue::from(victim_jobs * 4)),
        (
            "loads",
            JsonValue::Array(loads.iter().map(|&l| JsonValue::from(l)).collect()),
        ),
        (
            "policies",
            JsonValue::Array(
                canonical_names
                    .iter()
                    .map(|n| JsonValue::from(n.as_str()))
                    .collect(),
            ),
        ),
        (
            "calibrated_rates",
            JsonValue::Array(
                loads
                    .iter()
                    .map(|&load| {
                        JsonValue::object([
                            ("load", JsonValue::from(load)),
                            ("rate_hz", JsonValue::from(plan.rate_for(0, load))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("cells", JsonValue::Array(rows)),
        ("merged", outcome.merged.to_json()),
    ]);

    // Host-side throughput to stdout ONLY: the JSON document must not
    // contain a single nondeterministic byte.
    println!(
        "\nhost: {} events over {:.3}s wall clock — {:.0} events/s",
        outcome.merged.events,
        outcome.wall_seconds,
        outcome.events_per_sec(),
    );

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "SWEEP_cluster.json".to_string());
    if let Err(err) = std::fs::write(&path, format!("{doc}\n")) {
        eprintln!("cannot write {path}: {err}");
        std::process::exit(2);
    }
    let reread = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot re-read {path}: {err}");
            std::process::exit(2);
        }
    };
    let expected_cells = seeds.len() * loads.len() * policies.len();
    match sx_cluster::json::parse(&reread) {
        Ok(parsed) => match validate_sweep_doc(&parsed, expected_cells) {
            Ok(()) => {
                println!("wrote {path} ({expected_cells} cells, schema {SWEEP_SCHEMA} valid)")
            }
            Err(why) => {
                println!("FAIL: {path} violates {SWEEP_SCHEMA}: {why}");
                ok = false;
            }
        },
        Err(err) => {
            println!("FAIL: {path} is not valid JSON: {err}");
            ok = false;
        }
    }

    (ok, doc)
}

/// Validate a parsed `SWEEP_cluster.json` against the `sx-sweep/v1` schema
/// documented in `docs/cluster_sim.md`.  Returns the first violation
/// found.  As in [`validate_bench_doc`], numeric fields must be finite —
/// `JsonValue` renders NaN/Inf as `null`, so a non-finite metric surfaces
/// here instead of slipping into a baseline diff.
fn validate_sweep_doc(doc: &JsonValue, expected_cells: usize) -> Result<(), String> {
    let num = |obj: &JsonValue, key: &str, at: &str| -> Result<f64, String> {
        match obj.get(key) {
            Some(&JsonValue::Num(n)) if n.is_finite() => Ok(n),
            Some(other) => Err(format!("{at}.{key}: expected a finite number, got {other}")),
            None => Err(format!("{at}.{key}: missing")),
        }
    };
    let string = |obj: &JsonValue, key: &str, at: &str| -> Result<String, String> {
        match obj.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(format!("{at}.{key}: expected a string, got {other}")),
            None => Err(format!("{at}.{key}: missing")),
        }
    };

    let schema = string(doc, "schema", "$")?;
    if schema != SWEEP_SCHEMA {
        return Err(format!("$.schema: '{schema}' != '{SWEEP_SCHEMA}'"));
    }
    match doc.get("seeds") {
        Some(JsonValue::Array(seeds)) if !seeds.is_empty() => {
            for (i, seed) in seeds.iter().enumerate() {
                match seed {
                    JsonValue::Str(s) if s.parse::<u64>().is_ok() => {}
                    other => return Err(format!("$.seeds[{i}]: '{other}' is not a u64 string")),
                }
            }
        }
        other => {
            return Err(format!(
                "$.seeds: expected a non-empty array, got {other:?}"
            ))
        }
    }
    string(doc, "fleet", "$")?;
    num(doc, "qpus", "$")?;
    num(doc, "jobs_per_cell", "$")?;
    for key in ["loads", "policies"] {
        match doc.get(key) {
            Some(JsonValue::Array(values)) if !values.is_empty() => {}
            other => {
                return Err(format!(
                    "$.{key}: expected a non-empty array, got {other:?}"
                ))
            }
        }
    }
    let rates = match doc.get("calibrated_rates") {
        Some(JsonValue::Array(rates)) if !rates.is_empty() => rates,
        other => {
            return Err(format!(
                "$.calibrated_rates: expected a non-empty array, got {other:?}"
            ))
        }
    };
    for (i, rate) in rates.iter().enumerate() {
        let at = format!("$.calibrated_rates[{i}]");
        num(rate, "load", &at)?;
        let rate_hz = num(rate, "rate_hz", &at)?;
        if rate_hz <= 0.0 {
            return Err(format!("{at}.rate_hz: {rate_hz} is not positive"));
        }
    }

    let cells = match doc.get("cells") {
        Some(JsonValue::Array(cells)) => cells,
        other => return Err(format!("$.cells: expected an array, got {other:?}")),
    };
    if cells.len() != expected_cells {
        return Err(format!(
            "$.cells: expected {expected_cells} cells, got {}",
            cells.len()
        ));
    }
    let mut summed_jobs = 0.0;
    let mut summed_events = 0.0;
    for (i, cell) in cells.iter().enumerate() {
        let at = format!("$.cells[{i}]");
        if !matches!(cell, JsonValue::Object(_)) {
            return Err(format!("{at}: expected an object, got {cell}"));
        }
        string(cell, "label", &at)?;
        let seed = string(cell, "seed", &at)?;
        seed.parse::<u64>()
            .map_err(|_| format!("{at}.seed: '{seed}' is not a u64"))?;
        string(cell, "policy", &at)?;
        for key in SWEEP_CELL_NUM_KEYS {
            num(cell, key, &at)?;
        }
        summed_jobs += num(cell, "jobs", &at)?;
        summed_events += num(cell, "events", &at)?;
    }

    let merged = match doc.get("merged") {
        Some(merged @ JsonValue::Object(_)) => merged,
        other => return Err(format!("$.merged: expected an object, got {other:?}")),
    };
    for key in [
        "cells",
        "jobs",
        "completed",
        "shed",
        "events",
        "relative_error_bound",
        "latency_count",
        "latency_p50_seconds",
        "latency_p95_seconds",
        "latency_p99_seconds",
        "wait_count",
        "wait_p50_seconds",
        "wait_p95_seconds",
        "wait_p99_seconds",
    ] {
        num(merged, key, "$.merged")?;
    }
    if num(merged, "cells", "$.merged")? != expected_cells as f64 {
        return Err(format!(
            "$.merged.cells: {} != the {expected_cells} cell rows",
            num(merged, "cells", "$.merged")?
        ));
    }
    if num(merged, "jobs", "$.merged")? != summed_jobs {
        return Err("$.merged.jobs: does not equal the sum of cell rows".to_string());
    }
    if num(merged, "events", "$.merged")? != summed_events {
        return Err("$.merged.events: does not equal the sum of cell rows".to_string());
    }
    Ok(())
}

/// `--mode replay`: re-simulate every run segment of a flight record
/// (`--input`, written by `--record`) and verify the engine reproduces
/// each recorded trace stream bit-for-bit.  Segments recorded under a
/// stateful admission controller are skipped (their gate state is not
/// serialized); the mode FAILs on any divergence or when no segment is
/// replayable at all.  `--record`/`--trace-out` still apply, so a replay
/// can itself be re-recorded — the round-trip is byte-stable.
fn replay(args: &Args, observer: &mut Observer) -> (bool, JsonValue) {
    let path = args.input.as_deref().unwrap_or_else(|| {
        eprintln!("--mode replay needs --input <flight-record.jsonl>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("cannot read --input {path}: {err}");
        std::process::exit(2);
    });
    let record = match parse_flight_record(&text) {
        Ok(record) => record,
        Err(err) => {
            eprintln!("invalid flight record {path}: {err}");
            std::process::exit(2);
        }
    };
    println!(
        "# cluster_sim replay: {path}, {} recorded run segment(s)",
        record.runs.len()
    );

    let mut ok = true;
    let mut verified = 0usize;
    let mut json_points: Vec<JsonValue> = Vec::new();
    for (segment, run) in record.runs.iter().enumerate() {
        let header = &run.header;
        if !header.replayable() {
            println!(
                "segment {segment}: policy {}, admission {} — skipped \
                 (only admit-all segments are replayable)",
                header.policy, header.admission
            );
            json_points.push(JsonValue::object([
                ("segment", JsonValue::from(segment)),
                ("policy", JsonValue::from(header.policy.as_str())),
                ("admission", JsonValue::from(header.admission.as_str())),
                ("replayed", JsonValue::from(false)),
            ]));
            continue;
        }
        let mut sink = VecSink::new();
        let fleet = Fleet::new(
            header.fleet.clone(),
            SplitExecConfig::with_seed(header.seed),
        );
        let mut scheduler = header.scheduler.build();
        let report = observer.observe(
            Some(header),
            fleet,
            &header.workload,
            scheduler.as_mut(),
            &mut AdmitAll,
            header.config,
            None,
            Some(&mut sink),
        );
        let replayed = sink.records();
        let compared = replayed.len().min(run.records.len());
        let divergence = (0..compared)
            .find(|&i| replayed[i] != run.records[i])
            .or((replayed.len() != run.records.len()).then_some(compared));
        verified += 1;
        match divergence {
            None => println!(
                "segment {segment}: policy {}, seed {} — bit-identical \
                 ({} records, {} jobs completed)",
                header.policy,
                header.seed,
                run.records.len(),
                report.completed
            ),
            Some(at) => {
                ok = false;
                println!(
                    "FAIL: segment {segment} (policy {}, seed {}) DIVERGED at record {at}: \
                     recorded {:?} vs replayed {:?}",
                    header.policy,
                    header.seed,
                    run.records.get(at),
                    replayed.get(at)
                );
            }
        }
        json_points.push(JsonValue::object([
            ("segment", JsonValue::from(segment)),
            ("policy", JsonValue::from(header.policy.as_str())),
            ("seed", JsonValue::from(header.seed.to_string())),
            ("replayed", JsonValue::from(true)),
            ("records", JsonValue::from(run.records.len())),
            (
                "divergence",
                divergence.map_or(JsonValue::Null, JsonValue::from),
            ),
        ]));
    }
    if verified == 0 {
        println!("FAIL: {path} contains no replayable (admit-all) segment");
        ok = false;
    }
    (ok, JsonValue::Array(json_points))
}

/// Execute one real job through the pipeline and compare its stage shape
/// with the analytic model the simulator charges — the tie between the
/// simulator and the measured system.
fn calibrate(seed: u64) {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{Pipeline, SplitMachine};

    let pipeline = Pipeline::new(
        SplitMachine::paper_default(),
        SplitExecConfig::with_seed(seed),
    );
    let qubo = MaxCut::unweighted(generators::cycle(12)).to_qubo();
    match pipeline.execute(&qubo) {
        Ok(report) => println!(
            "calibration (real lps-12 job): stage-1 share measured {:.1}% — the simulator's \
             analytic service model charges the same shape",
            100.0 * report.stage1_fraction()
        ),
        Err(err) => println!("calibration job failed: {err}"),
    }
}
