//! `trace_diff` — align two flight records and report the first divergent
//! event.
//!
//! A flight record (written by `cluster_sim --record`, schema
//! `sx-flight-record/v1`) is a deterministic function of its header: same
//! seed, fleet, scheduler, and workload must yield the same record stream
//! byte for byte.  This tool is the CI-facing check of that invariant:
//!
//! ```text
//! trace_diff <a.jsonl> <b.jsonl> [--context N]
//! ```
//!
//! Exit codes:
//!
//! * `0` — the records are identical.
//! * `1` — they diverge; the first divergent line is reported with file
//!   line numbers, the record's `seq` when present, and `N` lines of
//!   context from each file (default 3).
//! * `2` — usage error, unreadable file, JSON parse failure, or an
//!   unknown schema version (the records cannot be meaningfully compared).
//!
//! Comparison is on raw trimmed lines, so any difference — header fields
//! such as the seed or fleet fingerprint, record payloads, or one file
//! simply being longer — counts as divergence.  When the headers
//! themselves differ, the differing top-level keys are named and the scan
//! continues forward so the first divergent *record* (and its `seq`) is
//! still reported.

use std::fs;
use std::process::ExitCode;

use sx_cluster::json::{self, JsonValue};
use sx_cluster::FLIGHT_SCHEMA;

const USAGE: &str = "usage: trace_diff <a.jsonl> <b.jsonl> [--context N]";

/// One non-blank line of a flight record, kept with its 1-based file line
/// number so reports point back into the original file.
struct Line {
    number: usize,
    raw: String,
    value: JsonValue,
}

impl Line {
    fn is_header(&self) -> bool {
        self.value.get("schema").is_some()
    }

    fn seq(&self) -> Option<u64> {
        match self.value.get("seq") {
            Some(JsonValue::Num(n)) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Read and validate one flight record: every non-blank line must parse as
/// JSON, the first line must be a header, and every header line must carry
/// the schema version this tool understands.
fn load(path: &str) -> Result<Vec<Line>, String> {
    let text = fs::read_to_string(path).map_err(|err| format!("{path}: {err}"))?;
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let number = idx + 1;
        let value =
            json::parse(trimmed).map_err(|err| format!("{path}:{number}: parse error: {err}"))?;
        if let Some(schema) = value.get("schema") {
            match schema {
                JsonValue::Str(s) if s == FLIGHT_SCHEMA => {}
                other => {
                    return Err(format!(
                        "{path}:{number}: unknown schema {other} (expected \"{FLIGHT_SCHEMA}\")"
                    ));
                }
            }
        }
        lines.push(Line {
            number,
            raw: trimmed.to_string(),
            value,
        });
    }
    match lines.first() {
        None => Err(format!("{path}: empty flight record")),
        Some(first) if !first.is_header() => Err(format!(
            "{path}:{}: first line is not a flight-record header",
            first.number
        )),
        Some(_) => Ok(lines),
    }
}

/// Clip a line for display; header lines embed the whole workload and can
/// run to tens of kilobytes.
fn clip(raw: &str) -> String {
    const LIMIT: usize = 160;
    if raw.chars().count() <= LIMIT {
        return raw.to_string();
    }
    let mut out: String = raw.chars().take(LIMIT).collect();
    out.push('…');
    out
}

fn print_context(label: &str, lines: &[Line], idx: usize, context: usize) {
    let start = idx.saturating_sub(context);
    let end = (idx + context + 1).min(lines.len());
    for (j, line) in lines.iter().enumerate().take(end).skip(start) {
        let marker = if j == idx { '>' } else { ' ' };
        println!("  {marker} {label}:{}: {}", line.number, clip(&line.raw));
    }
}

/// Top-level keys whose values differ between two header objects (or that
/// exist on only one side), in the first header's key order.
fn differing_header_keys(a: &JsonValue, b: &JsonValue) -> Vec<String> {
    let (JsonValue::Object(pa), JsonValue::Object(pb)) = (a, b) else {
        return vec!["<non-object header>".to_string()];
    };
    let mut keys = Vec::new();
    for (key, value) in pa {
        match b.get(key) {
            Some(other) if other.to_string() == value.to_string() => {}
            _ => keys.push(key.clone()),
        }
    }
    for (key, _) in pb {
        if a.get(key).is_none() {
            keys.push(key.clone());
        }
    }
    keys
}

/// Report the divergence at aligned index `idx` and, when the divergence is
/// a header, scan forward for the first divergent record so its `seq` is
/// named too.
fn report_divergence(
    path_a: &str,
    a: &[Line],
    path_b: &str,
    b: &[Line],
    idx: usize,
    context: usize,
) {
    let la = &a[idx];
    let lb = &b[idx];
    let seq = la.seq().or_else(|| lb.seq());
    let what = if la.is_header() && lb.is_header() {
        "header"
    } else {
        "record"
    };
    match seq {
        Some(seq) => println!(
            "DIVERGED: first divergent {what} at aligned index {idx} (seq {seq}; {path_a}:{}, {path_b}:{})",
            la.number, lb.number
        ),
        None => println!(
            "DIVERGED: first divergent {what} at aligned index {idx} ({path_a}:{}, {path_b}:{})",
            la.number, lb.number
        ),
    }
    if la.is_header() && lb.is_header() {
        let keys = differing_header_keys(&la.value, &lb.value);
        if !keys.is_empty() {
            println!("  header keys differing: {}", keys.join(", "));
        }
        // The headers pin the run's inputs; with different inputs the
        // record streams almost surely differ too.  Find where.
        let limit = a.len().min(b.len());
        if let Some(j) = (idx + 1..limit).find(|&j| a[j].raw != b[j].raw) {
            match a[j].seq().or_else(|| b[j].seq()) {
                Some(seq) => println!(
                    "  first divergent record after the header: aligned index {j} (seq {seq}; {path_a}:{}, {path_b}:{})",
                    a[j].number, b[j].number
                ),
                None => println!(
                    "  first divergent record after the header: aligned index {j} ({path_a}:{}, {path_b}:{})",
                    a[j].number, b[j].number
                ),
            }
        }
    }
    println!("  context from {path_a}:");
    print_context("a", a, idx, context);
    println!("  context from {path_b}:");
    print_context("b", b, idx, context);
}

fn run(path_a: &str, path_b: &str, context: usize) -> Result<ExitCode, String> {
    let a = load(path_a)?;
    let b = load(path_b)?;

    let limit = a.len().min(b.len());
    for idx in 0..limit {
        if a[idx].raw != b[idx].raw {
            report_divergence(path_a, &a, path_b, &b, idx, context);
            return Ok(ExitCode::from(1));
        }
    }
    if a.len() != b.len() {
        let (longer_path, longer, shorter_path, shorter) = if a.len() > b.len() {
            (path_a, &a, path_b, &b)
        } else {
            (path_b, &b, path_a, &a)
        };
        let extra = &longer[limit];
        match extra.seq() {
            Some(seq) => println!(
                "DIVERGED: first divergent record at aligned index {limit} (seq {seq}): {longer_path} continues at line {} but {shorter_path} ends after {} records",
                extra.number,
                shorter.len()
            ),
            None => println!(
                "DIVERGED: first divergent record at aligned index {limit}: {longer_path} continues at line {} but {shorter_path} ends after {} records",
                extra.number,
                shorter.len()
            ),
        }
        println!("  context from {longer_path}:");
        print_context("+", longer, limit, context);
        return Ok(ExitCode::from(1));
    }

    println!(
        "IDENTICAL: {} records match ({path_a} vs {path_b})",
        a.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut context = 3usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--context" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => context = n,
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    match run(&paths[0], &paths[1], context) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("trace_diff: {err}");
            ExitCode::from(2)
        }
    }
}
