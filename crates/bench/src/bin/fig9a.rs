//! Regenerate Fig. 9(a): stage-1 timing versus input problem size.
//!
//! Prints two series as CSV: the ASPEN-model prediction (solid line, n =
//! 1..100) and the measured wall-clock time of our CMR heuristic embedding
//! `K_n` into the 12×12 Chimera lattice (dashed line, n ≤ 30).
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig9a
//! ```

use split_exec::prelude::*;
use sx_bench::{fig9a_measured_sizes, fig9a_model_sizes, measure_cmr_embedding};

fn main() {
    let machine = SplitMachine::paper_default();

    println!("# Fig. 9(a): stage-1 time vs input problem size n");
    println!("# series 1: ASPEN model (worst-case CMR complexity), n = 1..100");
    println!("n,model_seconds,embedding_ops");
    for n in fig9a_model_sizes() {
        let p = predict_stage1(&machine, n).expect("stage-1 prediction");
        println!("{n},{:.9e},{:.6e}", p.total_seconds, p.embedding_ops);
    }

    println!();
    println!("# series 2: measured CMR heuristic embedding K_n into C(12,12,4)");
    println!("n,measured_seconds,success,qubits_used");
    for n in fig9a_measured_sizes() {
        let m = measure_cmr_embedding(&machine, n, 1000 + n as u64);
        println!(
            "{n},{:.9e},{},{}",
            m.seconds,
            if m.success { 1 } else { 0 },
            m.qubits_used
        );
    }

    // Summary of the paper's qualitative claims for quick inspection.
    let p10 = predict_stage1(&machine, 10).unwrap().total_seconds;
    let p100 = predict_stage1(&machine, 100).unwrap().total_seconds;
    eprintln!(
        "model grows from {:.3} s at n=10 to {:.3} s at n=100 (x{:.0}); the measured heuristic \
         stays orders of magnitude below the worst-case model at small n, as in the paper.",
        p10,
        p100,
        p100 / p10
    );
}
