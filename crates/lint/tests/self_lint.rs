//! The linter eats its own dog food: lint the real workspace and require
//! zero unsuppressed findings — the same gate CI enforces via the
//! `sx_lint` binary.  If this test fails, either fix the flagged code or
//! add a suppression *with a written reason*.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = sx_lint::lint_workspace_with_default_allowlist(&root)
        .expect("workspace walk should succeed");

    // The walk found the real tree, not an empty directory.
    assert!(
        report.files_scanned >= 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );

    let unsuppressed: Vec<_> = report.unsuppressed().collect();
    assert!(
        unsuppressed.is_empty(),
        "unsuppressed lint findings — fix or allow(with reason):\n{}",
        report.human()
    );

    // Suppression hygiene: every suppressed finding carries its reason.
    for f in report.findings.iter().filter(|f| f.suppressed) {
        assert!(
            f.suppress_reason.as_deref().is_some_and(|r| !r.is_empty()),
            "suppressed finding without a reason: {}:{} [{}]",
            f.file,
            f.line,
            f.rule.id()
        );
    }
}
