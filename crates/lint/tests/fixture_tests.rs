//! Pins the rule catalog against a fixture corpus: one known-bad snippet
//! per rule, one correctly suppressed, one clean.  Exact rule ids and line
//! numbers are asserted so any drift in the scanner is caught here first.

use sx_lint::{lint_source, Finding, RuleId};

/// Lint `text` as if it lived at `rel_path`, returning
/// `(rule, line, suppressed)` triples sorted for stable comparison.
fn triples(rel_path: &str, text: &str) -> Vec<(RuleId, usize, bool)> {
    let mut out: Vec<(RuleId, usize, bool)> = lint_source(rel_path, text)
        .iter()
        .map(|f: &Finding| (f.rule, f.line, f.suppressed))
        .collect();
    out.sort_by_key(|(r, l, s)| (r.id(), *l, *s));
    out
}

const CLUSTER_PATH: &str = "crates/cluster/src/fixture.rs";
// Outside H003's cluster-only scope, so A-rule fixtures containing
// `unwrap` assert exactly their own rule.
const SPLITEXEC_PATH: &str = "crates/splitexec/src/fixture.rs";

#[test]
fn d001_wall_clock_exact_lines() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/d001_bad.rs"));
    assert_eq!(
        got,
        vec![(RuleId::D001, 5, false), (RuleId::D001, 9, false)],
        "Instant::now and SystemTime flagged outside cfg(test), nothing inside it"
    );
}

#[test]
fn d002_hash_iteration_exact_lines() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/d002_bad.rs"));
    assert_eq!(
        got,
        vec![(RuleId::D002, 12, false), (RuleId::D002, 17, false)],
        "both the self-qualified .values() and the for-loop over .keys() flagged"
    );
}

#[test]
fn d002_not_raised_outside_sim_scope() {
    // The same source under crates/bench is out of D002 scope.
    let got = triples(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d002_bad.rs"),
    );
    assert!(
        got.is_empty(),
        "D002 is scoped to simulator crates, got {got:?}"
    );
}

#[test]
fn d003_partial_cmp_sort_exact_lines() {
    // Scanned under crates/bench: in D003 scope but outside H003 scope, so
    // the .unwrap()/.expect() inside the comparators raise only D003.
    let got = triples(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d003_bad.rs"),
    );
    assert_eq!(
        got,
        vec![
            (RuleId::D003, 5, false),
            (RuleId::D003, 9, false),
            (RuleId::D003, 18, false),
        ],
        "single-line, multi-line-closure, and min_by variants all flagged"
    );
}

#[test]
fn h001_h002_crate_root_attrs() {
    let got = triples(
        "crates/fake/src/lib.rs",
        include_str!("fixtures/h001_h002_bad.rs"),
    );
    assert_eq!(
        got,
        vec![(RuleId::H001, 1, false), (RuleId::H002, 1, false)],
        "bare crate root lacks forbid(unsafe_code), crate docs, warn(missing_docs)"
    );
}

#[test]
fn h001_h002_not_raised_off_crate_root() {
    // The same bare source as a non-root module raises neither.
    let got = triples(
        "crates/fake/src/helpers.rs",
        include_str!("fixtures/h001_h002_bad.rs"),
    );
    assert!(
        got.is_empty(),
        "H001/H002 apply only to crate roots, got {got:?}"
    );
}

#[test]
fn h003_unwrap_expect_exact_lines() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/h003_bad.rs"));
    assert_eq!(
        got,
        vec![(RuleId::H003, 5, false), (RuleId::H003, 9, false)],
        "unwrap() and expect() flagged; unwrap_or() and test code are not"
    );
}

#[test]
fn h004_unfiled_todo_exact_lines() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/h004_bad.rs"));
    assert_eq!(
        got,
        vec![(RuleId::H004, 4, false)],
        "bare TODO flagged; FIXME(#123) and TODO(issue ...) carry references"
    );
}

#[test]
fn s001_malformed_suppressions() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/s001_bad.rs"));
    assert_eq!(
        got,
        vec![
            (RuleId::H003, 6, false),
            (RuleId::S001, 4, false),
            (RuleId::S001, 9, false),
        ],
        "a reasonless allow suppresses nothing (H003 stays live) and raises \
         S001; an unknown rule id raises S001"
    );
}

#[test]
fn suppressed_fixture_is_recorded_but_not_gating() {
    let findings = lint_source(CLUSTER_PATH, include_str!("fixtures/suppressed.rs"));
    assert_eq!(
        findings.len(),
        1,
        "exactly the suppressed D001: {findings:?}"
    );
    let f = &findings[0];
    assert_eq!((f.rule, f.line, f.suppressed), (RuleId::D001, 6, true));
    assert_eq!(
        f.suppress_reason.as_deref(),
        Some("fixture: demonstrates a well-formed suppression"),
        "the written reason rides along on the finding"
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    let got = triples(CLUSTER_PATH, include_str!("fixtures/clean.rs"));
    assert!(
        got.is_empty(),
        "BTreeMap + total_cmp code is finding-free, got {got:?}"
    );
}

#[test]
fn a001_hot_allocation_exact_lines() {
    let got = triples(SPLITEXEC_PATH, include_str!("fixtures/a001_bad.rs"));
    assert_eq!(
        got,
        vec![
            (RuleId::A001, 5, false),
            (RuleId::A001, 6, false),
            (RuleId::A001, 11, false),
        ],
        "Vec::new and an unsized push in the hot root flagged; the helper's \
         to_string flagged via call-graph propagation; the cold function \
         allocates freely; the with_capacity-backed push is exempt"
    );
}

#[test]
fn a002_hot_panic_exact_lines() {
    let got = triples(SPLITEXEC_PATH, include_str!("fixtures/a002_bad.rs"));
    assert_eq!(
        got,
        vec![(RuleId::A002, 10, false)],
        "the helper's unwrap is reachable from the hot root; the cold \
         function's expect and the test module are out of scope"
    );
}

#[test]
fn a003_hot_lock_and_io_exact_lines() {
    let got = triples(SPLITEXEC_PATH, include_str!("fixtures/a003_bad.rs"));
    assert_eq!(
        got,
        vec![
            (RuleId::A002, 9, false),
            (RuleId::A003, 9, false),
            (RuleId::A003, 11, false),
            (RuleId::A003, 12, false),
        ],
        ".lock() (plus its unwrap as A002), println!, and writeln! to a \
         non-self target flagged; the sink writing to self.out is exempt"
    );
}

#[test]
fn a001_suppressed_fixture_is_recorded_but_not_gating() {
    let findings = lint_source(SPLITEXEC_PATH, include_str!("fixtures/a_suppressed.rs"));
    assert_eq!(
        findings.len(),
        1,
        "exactly the suppressed A001: {findings:?}"
    );
    let f = &findings[0];
    assert_eq!((f.rule, f.line, f.suppressed), (RuleId::A001, 6, true));
    assert_eq!(
        f.suppress_reason.as_deref(),
        Some("fixture: demonstrates a sanctioned exception")
    );
}

#[test]
fn a_rules_stay_quiet_without_hot_roots() {
    // The same allocating source with the hot-root annotations stripped
    // raises nothing: hotness is opt-in by annotation.
    let cold = include_str!("fixtures/a001_bad.rs").replace("hot-root", "hot-exempt");
    let got = triples(SPLITEXEC_PATH, &cold);
    assert!(got.is_empty(), "no roots, no hot findings, got {got:?}");
}

#[test]
fn every_rule_id_appears_in_the_corpus() {
    // Completeness check on the corpus itself: each catalog rule has at
    // least one fixture line exercising it above.
    let corpus = [
        triples(CLUSTER_PATH, include_str!("fixtures/d001_bad.rs")),
        triples(CLUSTER_PATH, include_str!("fixtures/d002_bad.rs")),
        triples(
            "crates/bench/src/fixture.rs",
            include_str!("fixtures/d003_bad.rs"),
        ),
        triples(
            "crates/fake/src/lib.rs",
            include_str!("fixtures/h001_h002_bad.rs"),
        ),
        triples(CLUSTER_PATH, include_str!("fixtures/h003_bad.rs")),
        triples(CLUSTER_PATH, include_str!("fixtures/h004_bad.rs")),
        triples(CLUSTER_PATH, include_str!("fixtures/s001_bad.rs")),
        triples(SPLITEXEC_PATH, include_str!("fixtures/a001_bad.rs")),
        triples(SPLITEXEC_PATH, include_str!("fixtures/a002_bad.rs")),
        triples(SPLITEXEC_PATH, include_str!("fixtures/a003_bad.rs")),
    ];
    for rule in RuleId::ALL {
        assert!(
            corpus.iter().flatten().any(|(r, _, _)| *r == rule),
            "rule {} has no fixture coverage",
            rule.id()
        );
    }
}
