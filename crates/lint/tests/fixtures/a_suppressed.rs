//! Fixture: a correctly suppressed hot-path allocation.

// sx-lint: hot-root -- fixture: the per-event loop
pub fn dispatch(events: &mut Vec<usize>) {
    // sx-lint: allow(A001) -- fixture: demonstrates a sanctioned exception
    events.push(7);
}
