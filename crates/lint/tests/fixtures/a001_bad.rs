//! A001 fixture: heap allocation on the hot path.

// sx-lint: hot-root -- fixture: the per-event dispatch loop
pub fn dispatch_event(scratch: &mut Vec<usize>) {
    let ids: Vec<usize> = Vec::new();
    scratch.push(ids.len());
    stamp(7);
}

fn stamp(event: usize) -> String {
    event.to_string()
}

pub fn cold_setup() -> Vec<String> {
    let mut names = Vec::new();
    names.push("warm".to_string());
    names
}

pub struct Lane {
    slots: Vec<usize>,
}

impl Lane {
    pub fn grow(capacity: usize) -> Lane {
        Lane { slots: Vec::with_capacity(capacity) }
    }

    // sx-lint: hot-root -- fixture: a pre-sized buffer write is exempt
    pub fn enqueue(&mut self, id: usize) {
        self.slots.push(id);
    }
}
