// Fixture: a correctly suppressed finding — recorded, counted, but not
// gate-failing.  Scanned as `crates/cluster/src/fixture.rs`.

pub fn measured() -> f64 {
    // sx-lint: allow(D001) -- fixture: demonstrates a well-formed suppression
    let start = std::time::Instant::now(); // line 6: D001, suppressed
    start.elapsed().as_secs_f64()
}
