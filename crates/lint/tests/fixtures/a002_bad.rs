//! A002 fixture: a panic reachable from a hot root through a helper,
//! and a cold function whose panic is out of scope.

// sx-lint: hot-root -- fixture: the per-event completion path
pub fn complete_event(slot: Option<usize>) -> usize {
    finish(slot)
}

fn finish(slot: Option<usize>) -> usize {
    slot.unwrap()
}

fn cold_validate(slot: Option<usize>) -> usize {
    slot.expect("cold code may still panic")
}

#[cfg(test)]
mod tests {
    #[test]
    fn hot_code_may_panic_in_tests() {
        assert_eq!(super::complete_event(Some(1)), 1);
        assert_eq!(super::cold_validate(Some(2)), 2);
    }
}
