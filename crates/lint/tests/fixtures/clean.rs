// Fixture: determinism-respecting simulator code — zero findings.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

use std::collections::BTreeMap;

pub struct Registry {
    devices: BTreeMap<u64, f64>,
}

impl Registry {
    pub fn total(&self) -> f64 {
        self.devices.values().sum() // BTreeMap: deterministic order
    }
}

pub fn nan_safe_sort(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp); // the EventKey pattern
}

pub fn virtual_time(now: f64, service: f64) -> f64 {
    now + service // the sim clock is an f64, never a wall clock
}
