// Fixture: D001 — wall clock / entropy in simulator code.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

pub fn bad_wall_clock() -> std::time::Instant {
    std::time::Instant::now() // line 5: D001
}

pub fn bad_entropy(rng: &mut impl Iterator<Item = u64>) -> u64 {
    let _ = std::time::SystemTime::UNIX_EPOCH; // line 9: D001
    rng.next().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now(); // not flagged: test code
    }
}
