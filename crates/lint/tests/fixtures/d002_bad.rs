// Fixture: D002 — iteration over a hash container in simulator code.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

use std::collections::HashMap;

pub struct Registry {
    devices: HashMap<u64, f64>,
}

impl Registry {
    pub fn total(&self) -> f64 {
        self.devices.values().sum() // line 12: D002 (f64 sum is order-sensitive)
    }
}

pub fn first_key(devices: &Registry) -> Option<u64> {
    for key in devices.devices.keys() {
        // line 17: D002 — hash order decides which key "wins"
        return Some(*key);
    }
    None
}
