// Fixture: H003 — unwrap()/expect() in sx-cluster library code.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

pub fn bad_unwrap(x: Option<usize>) -> usize {
    x.unwrap() // line 5: H003
}

pub fn bad_expect(x: Option<usize>) -> usize {
    x.expect("must be set") // line 9: H003
}

pub fn fine_unwrap_or(x: Option<usize>) -> usize {
    x.unwrap_or(0) // not flagged: total
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
