// Fixture: H004 — task markers without an issue reference.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

// TODO make this faster               <- line 4: H004 (no reference)
pub fn slow() {}

// FIXME(#123) overflow on huge inputs <- not flagged: carries a reference
pub fn fine() {}

// TODO(issue 45): shard this          <- not flagged: names an issue
pub fn also_fine() {}
