// Fixture: S001 — malformed suppressions.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

// sx-lint: allow(H003)
pub fn reasonless(x: Option<usize>) -> usize {
    x.unwrap() // line 6: H003 stays unsuppressed; line 4 raises S001
}

// sx-lint: allow(Z999) -- such a rule does not exist
pub fn unknown_rule() {} // line 9 raises S001
