// Fixture: H001 + H002 — a crate root with no crate docs and neither
// `#![forbid(unsafe_code)]` nor `#![warn(missing_docs)]`.
// Scanned as `crates/fake/src/lib.rs` by the fixture tests.

pub fn undocumented() -> usize {
    42
}
