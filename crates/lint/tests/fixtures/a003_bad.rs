//! A003 fixture: lock acquisition and console I/O on the hot path; a
//! sink writing to its own writer is exempt.

use std::io::Write;
use std::sync::Mutex;

// sx-lint: hot-root -- fixture: the per-event observe path
pub fn observe(counter: &Mutex<usize>, out: &mut impl Write) {
    let mut guard = counter.lock().unwrap();
    *guard += 1;
    println!("observed {guard}");
    let _ = writeln!(out, "observed");
}

pub struct Sink<W: Write> {
    out: W,
}

impl<W: Write> Sink<W> {
    // sx-lint: hot-root -- fixture: sinks may write to their own writer
    pub fn on_record(&mut self) {
        let _ = writeln!(self.out, "record");
    }
}
