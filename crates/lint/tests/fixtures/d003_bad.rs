// Fixture: D003 — NaN-unsafe comparator in a sort.
// Scanned as `crates/cluster/src/fixture.rs` by the fixture tests.

pub fn bad_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 5: D003
}

pub fn bad_multiline_sort(jobs: &mut [(f64, usize)]) {
    jobs.sort_by(|a, b| {
        // line 9: D003 — the statement window sees the whole closure
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
    });
}

pub fn bad_min(xs: &[f64]) -> Option<&f64> {
    xs.iter().min_by(|a, b| a.partial_cmp(b).expect("nan")) // line 18: D003
}
