//! # sx-lint — the determinism-contract static analyzer
//!
//! `docs/ARCHITECTURE.md` promises that every simulation run is a pure
//! function of its seeds: same seed, bit-identical trace.  Every CI sweep
//! gate (`--mode slo`, `fairness`, `cache-cliff`, ...) silently depends on
//! that promise, and nothing in the type system enforces it — a stray
//! `Instant::now()`, an iteration over a `HashMap`, or a NaN-unsafe
//! `partial_cmp().unwrap()` comparator is one careless edit away from
//! nondeterministic traces no unit test will catch.  This crate is the
//! enforcement: a hand-rolled, dependency-free line/token scanner (the
//! build environment is offline, so no `syn`) that walks the workspace and
//! raises findings against the rule catalog in [`rules::RuleId`].
//!
//! v2 adds a *flow-aware* layer on top of the line scanner: a workspace
//! symbol index and token-level call graph ([`symbols`]), hot-path
//! propagation from hot-root annotations ([`hotpath`]), the
//! A-rule family enforcing the hot-path allocation contract (A001–A003 in
//! [`rules::RuleId`]), and finding baselines ([`baseline`]) so new rules
//! can land gating only *new* violations.
//!
//! The catalog, the suppression syntax (an inline allow comment naming the
//! rule id plus a mandatory `--`-separated reason, see
//! [`source::Suppression`]) and the allowlist format are documented for
//! humans in `docs/LINTING.md`.  The CLI lives in `crates/bench/src/bin/sx_lint.rs`
//! and exits nonzero on any unsuppressed finding; CI runs it on every
//! build.
//!
//! ```
//! use sx_lint::{lint_source, RuleId};
//!
//! let findings = lint_source(
//!     "crates/cluster/src/demo.rs",
//!     "fn f() { let t = std::time::Instant::now(); }",
//! );
//! assert_eq!(findings[0].rule, RuleId::D001);
//! assert!(!findings[0].suppressed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The library renders reports to strings; only the CLI prints.
#![warn(clippy::print_stdout)]

pub mod baseline;
pub mod engine;
pub mod hotpath;
pub mod report;
pub mod rules;
pub mod source;
pub mod symbols;

pub use baseline::{regressions, Baseline, BaselineEntry, Regression};
pub use engine::{
    lint_source, lint_sources, lint_workspace, parse_allowlist, AllowEntry, LintError,
};
pub use hotpath::{propagate, HotInfo, HotSpan};
pub use report::{Finding, LintReport};
pub use rules::{RuleId, Severity};
pub use source::{HotMark, SourceFile, Suppression};
pub use symbols::{FnSymbol, SymbolIndex};

use std::path::Path;

/// Default name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint.allow";

/// Lint the workspace at `root` using `<root>/lint.allow` if present —
/// the one-call entry point the CLI and the self-lint test share.
pub fn lint_workspace_with_default_allowlist(root: &Path) -> Result<LintReport, LintError> {
    let allow_path = root.join(ALLOWLIST_FILE);
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    lint_workspace(root, &allowlist)
}
