//! Source model: the per-line view of a Rust file the rules scan.
//!
//! The linter is a *line/token* scanner, not a parser (the build environment
//! is offline, so `syn` is unavailable — and the rules it enforces are
//! lexical by design).  For every line of a file this module produces:
//!
//! * `code` — the line with string literals, character literals and comments
//!   blanked out, so a rule matching `Instant::now` never fires on a doc
//!   comment or a log message *about* `Instant::now`;
//! * `comment` — the comment text of the line (line comments, block
//!   comments, and doc comments), which is what the task-marker hygiene
//!   rule and the suppression parser scan;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item or a
//!   `#[test]` function, where the determinism rules do not apply;
//! * `suppression` — a parsed `sx-lint` allow comment, if the line carries
//!   one (see [`Suppression`] for the syntax).
//!
//! Test-region tracking is a brace-depth machine: a `#[cfg(test)]` or
//! `#[test]` attribute arms a pending flag, the next `{` opens the test
//! region, and the matching `}` closes it.  That is exact for the idiomatic
//! `#[cfg(test)] mod tests { .. }` layout this workspace uses everywhere.

/// A parsed inline suppression.  The concrete syntax is the word
/// `sx-lint:` followed by `allow`, the rule id in parentheses, and a
/// mandatory `--`-separated reason — e.g.
/// `// sx-lint: allow(D001) -- measures real wall clock, not virtual time`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id named in `allow(..)` (not yet validated against the
    /// catalog; the engine raises `S001` for unknown ids).
    pub rule: String,
    /// The mandatory justification after `--`.  `None` when the author
    /// omitted it — which is itself an `S001` finding.
    pub reason: Option<String>,
    /// 1-based line the comment sits on.
    pub line: usize,
}

/// A parsed hot-path annotation: `// sx-lint: hot-root -- <reason>` seeds
/// hotness at the next `fn` declaration; `// sx-lint: hot-exempt -- <reason>`
/// stops hot-path propagation at that function (a suppression *boundary*,
/// not a per-line allow).  Like suppressions, the reason is mandatory —
/// a reasonless mark raises `S001`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotMark {
    /// `true` for `hot-exempt`, `false` for `hot-root`.
    pub exempt: bool,
    /// The mandatory justification after `--`.
    pub reason: Option<String>,
    /// 1-based line the comment sits on.
    pub line: usize,
}

/// One analyzed line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text with strings, char literals and comments blanked.
    pub code: String,
    /// Comment text (everything the scrubber removed as comments).
    pub comment: String,
    /// Whether the line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A scrubbed source file ready for rule scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The analyzed lines, in order (index 0 = line 1).
    pub lines: Vec<Line>,
    /// Inline suppressions, in line order.
    pub suppressions: Vec<Suppression>,
    /// Hot-path annotations (`hot-root` / `hot-exempt`), in line order.
    pub hot_marks: Vec<HotMark>,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Analyze `text` as the contents of `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let mut lines = Vec::new();
        let mut suppressions = Vec::new();
        let mut hot_marks = Vec::new();
        let mut mode = Mode::Code;
        // Test-region machine.
        let mut pending_test_attr = false;
        let mut depth: i64 = 0;
        let mut test_region_floor: Option<i64> = None;

        for (idx, raw) in text.lines().enumerate() {
            let (code, comment, next_mode) = scrub_line(raw, mode);
            mode = next_mode;

            if let Some(s) = parse_suppression(&comment, idx + 1) {
                suppressions.push(s);
            }
            if let Some(m) = parse_hot_mark(&comment, idx + 1) {
                hot_marks.push(m);
            }

            // Arm on test attributes (matched on code text, so a commented
            // `#[cfg(test)]` does not count).
            let is_test_attr = code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[test]");
            let mut in_test = test_region_floor.is_some() || is_test_attr || pending_test_attr;
            if is_test_attr {
                pending_test_attr = true;
            }

            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_test_attr && test_region_floor.is_none() {
                            test_region_floor = Some(depth);
                            pending_test_attr = false;
                            in_test = true;
                        }
                    }
                    '}' => {
                        if let Some(floor) = test_region_floor {
                            if depth == floor {
                                test_region_floor = None;
                            }
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }

            lines.push(Line {
                code,
                comment,
                in_test,
            });
        }

        Self {
            rel_path: rel_path.to_string(),
            lines,
            suppressions,
            hot_marks,
        }
    }

    /// The code text of 1-based `line`, or `""` past EOF.
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.as_str())
            .unwrap_or("")
    }

    /// Join the code of the statement starting at 1-based `line`: the line
    /// itself plus following lines until a `;` or an opening-then-closed
    /// block ends it, capped at `max` lines.  Rules use this so a pattern
    /// split across a rustfmt-wrapped statement (`sort_by(|a, b| ...)`) is
    /// still seen whole.
    pub fn statement(&self, line: usize, max: usize) -> String {
        let mut joined = String::new();
        for offset in 0..max {
            let Some(l) = self.lines.get(line - 1 + offset) else {
                break;
            };
            joined.push_str(&l.code);
            joined.push(' ');
            if l.code.contains(';') {
                break;
            }
        }
        joined
    }

    /// The suppression covering a finding on 1-based `line`, if any: a
    /// suppression comment applies to its own line (trailing form) or to
    /// the line directly below it.
    pub fn suppression_for(&self, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.line == line || s.line + 1 == line)
    }

    /// The suppression for rule `rule` covering a finding on 1-based
    /// `line`, if any.  Rule-aware (so one line of code can carry a stacked
    /// `allow(A002)` *and* `allow(H003)`): a suppression applies to its own
    /// line (trailing form), or projects downward from a comment-only line
    /// across at most three further comment-only lines — enough for a
    /// stack of allow comments above one statement, too few to leak onto
    /// unrelated code.
    pub fn suppression_covering(&self, line: usize, rule: &str) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && self.mark_covers(s.line, line))
    }

    /// Whether an annotation comment on `mark_line` covers `line` under the
    /// projection rule of [`Self::suppression_covering`].
    pub fn mark_covers(&self, mark_line: usize, line: usize) -> bool {
        if mark_line == line {
            return true;
        }
        if mark_line > line || line - mark_line > 4 {
            return false;
        }
        // Downward projection: the comment's own line and every line
        // between it and the target must carry no code.
        (mark_line..line).all(|l| {
            self.lines
                .get(l - 1)
                .is_some_and(|ln| ln.code.trim().is_empty())
        })
    }

    /// The hot-path annotation covering a `fn` declared on 1-based `line`,
    /// if any (same projection rule as suppressions: trailing, or a stack
    /// of comment-only lines directly above).
    pub fn hot_mark_for(&self, line: usize) -> Option<&HotMark> {
        self.hot_marks
            .iter()
            .find(|m| self.mark_covers(m.line, line))
    }
}

/// Parse a suppression (see [`Suppression`]) out of a line's comment text.
fn parse_suppression(comment: &str, line: usize) -> Option<Suppression> {
    let at = comment.find("sx-lint:")?;
    let rest = comment[at + "sx-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some(Suppression { rule, reason, line })
}

/// Parse a hot-path annotation (see [`HotMark`]) out of a line's comment
/// text.
fn parse_hot_mark(comment: &str, line: usize) -> Option<HotMark> {
    let at = comment.find("sx-lint:")?;
    let rest = comment[at + "sx-lint:".len()..].trim_start();
    let (exempt, rest) = if let Some(r) = rest.strip_prefix("hot-root") {
        (false, r)
    } else if let Some(r) = rest.strip_prefix("hot-exempt") {
        (true, r)
    } else {
        return None;
    };
    let reason = rest
        .trim_start()
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some(HotMark {
        exempt,
        reason,
        line,
    })
}

/// Split one raw line into (code, comment) under the incoming lexer mode,
/// returning the mode the next line starts in.
fn scrub_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let bytes: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match mode {
            Mode::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is comment text.
                    comment.extend(&bytes[i..]);
                    break;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    code.push(' ');
                    i += 2;
                    continue;
                } else if c == '"' {
                    mode = Mode::Str;
                    code.push('"');
                } else if c == 'r'
                    && matches!(bytes.get(i + 1), Some('"') | Some('#'))
                    && raw_str_hashes(&bytes[i + 1..]).is_some()
                {
                    let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                    mode = Mode::RawStr(hashes);
                    code.push('r');
                    i += 1 + hashes as usize + 1;
                    code.push('"');
                    continue;
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal closes with a
                    // quote within a few characters (`'x'`, `'\n'`, `'\u{..}'`).
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += len;
                        continue;
                    }
                    code.push('\'');
                } else {
                    code.push(c);
                }
            }
            Mode::BlockComment(n) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    mode = if n == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(n - 1)
                    };
                    i += 2;
                    continue;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(n + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '"' {
                    mode = Mode::Code;
                    code.push('"');
                }
                // String contents are dropped from the code view.
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes[i + 1..], hashes) {
                    mode = Mode::Code;
                    code.push('"');
                    i += 1 + hashes as usize;
                    continue;
                }
            }
        }
        i += 1;
    }
    // Unterminated line comment never crosses lines; strings do.
    if mode == Mode::Str {
        // A string literal that continues onto the next line.
    }
    (code, comment, mode)
}

/// If `chars` (starting just after `r`) opens a raw string, the number of
/// `#`s; `None` otherwise.
fn raw_str_hashes(chars: &[char]) -> Option<u32> {
    let mut hashes = 0u32;
    for &c in chars {
        match c {
            '#' => hashes += 1,
            '"' => return Some(hashes),
            _ => return None,
        }
    }
    None
}

/// Whether the characters after a `"` close a raw string with `hashes` `#`s.
fn closes_raw(chars: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(k) == Some(&'#'))
}

/// Length of a char literal starting at `'`, or `None` if this is a
/// lifetime.  A char literal is `'X'` (any single char), `'\X'` (simple
/// escape) or `'\u{...}'`; anything else — in particular `'a` followed by
/// a non-quote — is a lifetime.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    match chars.get(1)? {
        '\\' => {
            // Escape: closing quote within the next 8 chars (`'\u{10FFFF}'`).
            (3..=11.min(chars.len().saturating_sub(1)))
                .find(|&len| chars[len] == '\'')
                .map(|len| len + 1)
        }
        _ => (chars.get(2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_from_code() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"Instant::now\"; // Instant::now in a comment\n",
        );
        assert!(!f.lines[0].code.contains("Instant::now"));
        assert!(f.lines[0].comment.contains("Instant::now"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("x.rs", "/* a\nInstant::now\n*/ let x = 1;");
        assert!(!f.lines[1].code.contains("Instant"));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppressions_parse_with_and_without_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "// sx-lint: allow(D001) -- measures real wall clock\nlet a = 1;\n// sx-lint: allow(H003)\n",
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "D001");
        assert_eq!(
            f.suppressions[0].reason.as_deref(),
            Some("measures real wall clock")
        );
        assert_eq!(f.suppressions[1].reason, None);
        assert!(f.suppression_for(2).is_some());
        assert!(f.suppression_for(5).is_none());
    }

    #[test]
    fn hot_marks_parse_and_cover_the_next_decl() {
        let f = SourceFile::parse(
            "x.rs",
            "// sx-lint: hot-root -- dispatch loop\nfn a() {}\n// sx-lint: hot-exempt -- setup only\nfn b() {}\n// sx-lint: hot-root\nfn c() {}\n",
        );
        assert_eq!(f.hot_marks.len(), 3);
        let root = f.hot_mark_for(2).expect("fn a is marked");
        assert!(!root.exempt);
        assert_eq!(root.reason.as_deref(), Some("dispatch loop"));
        let exempt = f.hot_mark_for(4).expect("fn b is marked");
        assert!(exempt.exempt);
        assert_eq!(f.hot_mark_for(6).expect("fn c").reason, None);
    }

    #[test]
    fn stacked_suppressions_each_cover_the_code_below() {
        let src = "// sx-lint: allow(A002) -- invariant one\n// sx-lint: allow(H003) -- invariant two\nx.expect(\"y\");\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppression_covering(3, "A002").is_some());
        assert!(f.suppression_covering(3, "H003").is_some());
        assert!(f.suppression_covering(3, "A001").is_none());
        // A suppression does not project past a code line.
        let far = SourceFile::parse(
            "x.rs",
            "// sx-lint: allow(A002) -- reason\nlet a = 1;\nx.expect(\"y\");\n",
        );
        assert!(far.suppression_covering(3, "A002").is_none());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn statements_join_until_semicolon() {
        let f = SourceFile::parse("x.rs", "jobs.sort_by(|a, b| {\n  a.cmp(b)\n});\nnext();");
        let stmt = f.statement(1, 8);
        assert!(stmt.contains("sort_by") && stmt.contains("cmp"));
        assert!(!stmt.contains("next"));
    }
}
