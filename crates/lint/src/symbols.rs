//! Workspace symbol index and intra-workspace call graph.
//!
//! `sx_lint` v2's flow-aware rules (A001–A003) need to know *which
//! functions are on the hot path*, and that requires two things no
//! line-local scan can provide: an index of every `fn` in the workspace
//! with its body span, and a call graph connecting them.  This module
//! builds both from the scrubbed [`SourceFile`] line model — still no
//! `syn`, still token-level, with the conservatisms documented in
//! `docs/LINTING.md`:
//!
//! * **Symbols** come from a brace-depth machine: a `fn name` header arms a
//!   pending state, the next `{` opens the body (recording the span), and
//!   the matching `}` closes it.  `impl Type` blocks are tracked the same
//!   way so methods get a `Type::name` qualified name.  Trait method
//!   *signatures* (terminated by `;` before any `{`) produce no symbol.
//! * **Call edges** are token-level: an identifier immediately followed by
//!   `(` inside a function body is a call site.  Qualified calls
//!   (`Type::name(…)`, including `Self::`) resolve exactly — to the
//!   indexed `Type::name`, or to nothing when the type has no such method
//!   (`Vec::new(…)` is a foreign-type call, not an edge to every workspace
//!   `new`).  Bare and method calls resolve to *every* workspace function
//!   with that bare name — method receivers are not type-checked, so
//!   ambiguity fans out conservatively (more hotness, not less).  Macro
//!   invocations (`name!`) are not call edges; the A-rules match the
//!   allocating macros (`format!`, `vec!`) directly instead.
//! * `crates/compat/` is excluded from the index: the compat shims are
//!   API-compatible stand-ins whose internals are out of lint scope, and
//!   name collisions through them (`gen`, `next`, `write`) would drag
//!   hotness into code the engine never runs per-event.
//!
//! Hot-path seeding and propagation live in [`crate::hotpath`].

use crate::source::SourceFile;
use std::collections::HashMap;

/// One indexed function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnSymbol {
    /// Bare name (`next_assignment`).
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else the bare name.
    pub qualified: String,
    /// Index of the defining file in the slice passed to
    /// [`SymbolIndex::build`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the `{` opening the body.
    pub body_start: usize,
    /// 1-based line of the matching `}`.
    pub body_end: usize,
    /// Whether the declaration sits in `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Reason from a covering hot-root annotation, if any.
    pub hot_root: Option<String>,
    /// Reason from a covering hot-exempt annotation, if any.
    pub hot_exempt: Option<String>,
}

/// The symbol index plus the token-level call graph over it.
#[derive(Debug)]
pub struct SymbolIndex {
    /// Every indexed function, in (file, line) order.
    pub fns: Vec<FnSymbol>,
    /// `calls[i]` = indices of functions that `fns[i]`'s body may call
    /// (deduplicated, in first-occurrence order).
    pub calls: Vec<Vec<usize>>,
}

/// What a `{` opened, for the brace-depth machine.
enum Container {
    Fn(usize),
    Impl(String),
    Other,
}

/// Header state between a `fn`/`impl` keyword and its `{` or `;`.
enum Pending {
    None,
    /// Saw `fn`, waiting for the name.
    FnAwaitName {
        line: usize,
    },
    /// Saw `fn name`, waiting for the body brace.
    FnNamed {
        name: String,
        line: usize,
    },
    /// Saw `impl`, accumulating the header text up to the brace.
    ImplHeader {
        text: String,
    },
}

impl SymbolIndex {
    /// Index every function in `files` and build the call graph.
    /// Deterministic: symbols in (file, line) order, edges in
    /// first-occurrence order.
    pub fn build(files: &[SourceFile]) -> SymbolIndex {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.rel_path.starts_with("crates/compat/") {
                continue;
            }
            index_file(fi, file, &mut fns);
        }

        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qualified: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
            by_qualified
                .entry(f.qualified.as_str())
                .or_default()
                .push(i);
        }

        let mut calls = Vec::with_capacity(fns.len());
        for f in &fns {
            calls.push(call_edges(f, &files[f.file], &by_name, &by_qualified));
        }
        SymbolIndex { fns, calls }
    }

    /// Look up a function by qualified name (first match in index order).
    pub fn by_qualified(&self, qualified: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.qualified == qualified)
    }
}

/// Run the brace-depth machine over one file, appending symbols.
fn index_file(file_idx: usize, file: &SourceFile, fns: &mut Vec<FnSymbol>) {
    let mut stack: Vec<Container> = Vec::new();
    let mut pending = Pending::None;

    for (li, ln) in file.lines.iter().enumerate() {
        let line_no = li + 1;
        let cs: Vec<char> = ln.code.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            let c = cs[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
                let word: String = cs[start..i].iter().collect();
                pending = match pending {
                    Pending::FnAwaitName { line } => Pending::FnNamed { name: word, line },
                    Pending::ImplHeader { mut text } => {
                        text.push_str(&word);
                        text.push(' ');
                        Pending::ImplHeader { text }
                    }
                    p => {
                        if word == "fn" && matches!(p, Pending::None) {
                            Pending::FnAwaitName { line: line_no }
                        } else if word == "impl" && matches!(p, Pending::None) {
                            Pending::ImplHeader {
                                text: String::new(),
                            }
                        } else {
                            p
                        }
                    }
                };
                continue;
            }
            match c {
                '{' => match std::mem::replace(&mut pending, Pending::None) {
                    Pending::FnNamed { name, line } => {
                        let mark = file.hot_mark_for(line);
                        let impl_name = stack.iter().rev().find_map(|c| match c {
                            Container::Impl(n) => Some(n.as_str()),
                            _ => None,
                        });
                        let qualified = match impl_name {
                            Some(t) => format!("{t}::{name}"),
                            None => name.clone(),
                        };
                        fns.push(FnSymbol {
                            name,
                            qualified,
                            file: file_idx,
                            line,
                            body_start: line_no,
                            body_end: line_no,
                            in_test: file.lines.get(line - 1).is_some_and(|l| l.in_test),
                            hot_root: mark
                                .filter(|m| !m.exempt)
                                .map(|m| m.reason.clone().unwrap_or_default()),
                            hot_exempt: mark
                                .filter(|m| m.exempt)
                                .map(|m| m.reason.clone().unwrap_or_default()),
                        });
                        stack.push(Container::Fn(fns.len() - 1));
                    }
                    Pending::ImplHeader { text } => {
                        stack.push(Container::Impl(impl_type_name(&text)));
                    }
                    _ => stack.push(Container::Other),
                },
                '}' => {
                    if let Some(Container::Fn(idx)) = stack.pop() {
                        fns[idx].body_end = line_no;
                    }
                }
                ';' => {
                    // A `;` before any `{` ends a header: trait method
                    // signatures and `impl Trait for T;`-style items
                    // produce no symbol.
                    if !matches!(pending, Pending::None) {
                        pending = Pending::None;
                    }
                }
                '(' => {
                    // `fn(` with no name is a function-pointer type, not a
                    // declaration.
                    if matches!(pending, Pending::FnAwaitName { .. }) {
                        pending = Pending::None;
                    } else if let Pending::ImplHeader { text } = &mut pending {
                        text.push(c);
                    }
                }
                _ => {
                    if let Pending::ImplHeader { text } = &mut pending {
                        text.push(c);
                    }
                }
            }
            i += 1;
        }
        if let Pending::ImplHeader { text } = &mut pending {
            text.push(' ');
        }
    }
}

/// Extract the implementing type's bare name from an accumulated impl
/// header (the text between `impl` and `{`): strip leading generics, take
/// the segment after a ` for ` if present (`impl Trait for Type`), then
/// the last `::` path segment of the first type word.
fn impl_type_name(header: &str) -> String {
    let mut rest = header.trim();
    if let Some(stripped) = rest.strip_prefix('<') {
        let mut depth = 1usize;
        let mut end = stripped.len();
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = stripped[end.min(stripped.len())..].trim_start();
    }
    let rest = match rest.rfind(" for ") {
        Some(at) => &rest[at + " for ".len()..],
        None => rest,
    };
    let first = rest
        .trim_start()
        .split(|c: char| c.is_whitespace() || c == '<')
        .next()
        .unwrap_or("");
    first
        .rsplit("::")
        .next()
        .unwrap_or(first)
        .trim()
        .to_string()
}

/// Rust keywords that can precede a `(` without being a call.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "as", "in", "let", "fn", "impl", "else",
    "move", "mut",
];

/// Token-level call sites in `f`'s body, resolved against the whole index.
///
/// Resolution depends on the shape of the call site:
///
/// * **Qualified calls** (`Type::name(…)`, uppercase-first path segment
///   before the `::`) resolve *exactly*: to the workspace functions whose
///   qualified name is `Type::name`, or to **nothing** when that type has
///   no such indexed method — `Vec::new(…)` / `String::from(…)` are
///   foreign-type calls, not edges to every workspace `new`.  `Self::`
///   stands for the enclosing impl type.
/// * **Everything else** (bare `name(…)`, method `.name(…)`, lowercase
///   module paths `cost::predict(…)`) resolves to *every* workspace
///   function with that bare name — method receivers are not type-checked,
///   so ambiguity fans out conservatively (more hotness, not less).
fn call_edges(
    f: &FnSymbol,
    file: &SourceFile,
    by_name: &HashMap<&str, Vec<usize>>,
    by_qualified: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    // The enclosing impl type, for resolving `Self::name(…)` call sites.
    let impl_type = f
        .qualified
        .strip_suffix(f.name.as_str())
        .and_then(|q| q.strip_suffix("::"));
    let mut edges = Vec::new();
    let push_targets = |edges: &mut Vec<usize>, targets: &[usize]| {
        for &t in targets {
            if !edges.contains(&t) {
                edges.push(t);
            }
        }
    };
    for li in (f.body_start - 1)..f.body_end.min(file.lines.len()) {
        let cs: Vec<char> = file.lines[li].code.chars().collect();
        let mut i = 0;
        let mut prev_word = String::new();
        // Punctuation between the previous word and the current one; ends
        // with `::` exactly when the current word is a path segment.
        let mut sep = String::new();
        while i < cs.len() {
            let c = cs[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
                let word: String = cs[start..i].iter().collect();
                let mut j = i;
                while j < cs.len() && cs[j] == ' ' {
                    j += 1;
                }
                let is_call = cs.get(j) == Some(&'(')
                    && prev_word != "fn"
                    && !KEYWORDS.contains(&word.as_str());
                if is_call {
                    let type_prefix = if sep.ends_with("::") {
                        if prev_word == "Self" {
                            impl_type
                        } else if prev_word.starts_with(char::is_uppercase) {
                            Some(prev_word.as_str())
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    match type_prefix {
                        Some(ty) => {
                            // Exact or nothing: a qualified call on a type
                            // with no such indexed method is foreign.
                            let qualified = format!("{ty}::{word}");
                            if let Some(targets) = by_qualified.get(qualified.as_str()) {
                                push_targets(&mut edges, targets);
                            }
                        }
                        None => {
                            if let Some(targets) = by_name.get(word.as_str()) {
                                push_targets(&mut edges, targets);
                            }
                        }
                    }
                }
                prev_word = word;
                sep.clear();
                continue;
            }
            if !c.is_whitespace() {
                sep.push(c);
            }
            i += 1;
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> SymbolIndex {
        let file = SourceFile::parse("crates/cluster/src/x.rs", src);
        SymbolIndex::build(std::slice::from_ref(&file))
    }

    #[test]
    fn free_functions_and_methods_are_indexed_with_spans() {
        let idx = index(
            "fn alpha() {\n    beta();\n}\n\nimpl Widget {\n    fn beta(&self) -> usize {\n        42\n    }\n}\n",
        );
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].qualified, "alpha");
        assert_eq!((idx.fns[0].body_start, idx.fns[0].body_end), (1, 3));
        assert_eq!(idx.fns[1].qualified, "Widget::beta");
        assert_eq!((idx.fns[1].body_start, idx.fns[1].body_end), (6, 8));
    }

    #[test]
    fn trait_impl_qualifies_by_the_implementing_type() {
        let idx = index(
            "impl<T: Clone> Scheduler for WeightedFairQueue {\n    fn next_assignment(&mut self) {}\n}\n",
        );
        assert_eq!(idx.fns[0].qualified, "WeightedFairQueue::next_assignment");
    }

    #[test]
    fn trait_signatures_produce_no_symbol() {
        let idx = index("trait T {\n    fn sig(&self) -> usize;\n    fn with_default(&self) -> usize {\n        1\n    }\n}\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "with_default");
    }

    #[test]
    fn call_edges_resolve_by_bare_name_conservatively() {
        let idx = index(
            "fn caller() {\n    helper();\n    thing.helper();\n}\nfn helper() {}\nimpl Other {\n    fn helper(&self) {}\n}\n",
        );
        let caller = idx.by_qualified("caller").expect("indexed");
        let callees: Vec<&str> = idx.calls[caller]
            .iter()
            .map(|&i| idx.fns[i].qualified.as_str())
            .collect();
        // Ambiguity fans out: both `helper` definitions are callees.
        assert_eq!(callees, ["helper", "Other::helper"]);
    }

    fn callees_of(idx: &SymbolIndex, qualified: &str) -> Vec<String> {
        let at = idx.by_qualified(qualified).expect("indexed");
        idx.calls[at]
            .iter()
            .map(|&i| idx.fns[i].qualified.clone())
            .collect()
    }

    #[test]
    fn qualified_calls_resolve_exactly_not_by_bare_name() {
        let idx = index(
            "fn caller() {\n    Widget::build();\n}\nimpl Widget {\n    fn build(&self) {}\n}\nimpl Gadget {\n    fn build(&self) {}\n}\n",
        );
        assert_eq!(callees_of(&idx, "caller"), ["Widget::build"]);
    }

    #[test]
    fn foreign_type_calls_produce_no_edge() {
        // `Vec` has no indexed method, so `Vec::new(…)` must not fan out
        // to every workspace `new`.
        let idx = index("fn caller() {\n    let v = Vec::new();\n}\nimpl Widget {\n    fn new() -> Self {\n        Widget\n    }\n}\n");
        assert!(callees_of(&idx, "caller").is_empty());
    }

    #[test]
    fn self_calls_resolve_within_the_enclosing_impl() {
        let idx = index(
            "impl Widget {\n    fn outer(&self) {\n        Self::inner();\n    }\n    fn inner() {}\n}\nimpl Gadget {\n    fn inner() {}\n}\n",
        );
        assert_eq!(callees_of(&idx, "Widget::outer"), ["Widget::inner"]);
    }

    #[test]
    fn lowercase_module_paths_still_fan_out_by_bare_name() {
        let idx = index("fn caller() {\n    cost::predict(1);\n}\nfn predict(x: usize) {}\n");
        assert_eq!(callees_of(&idx, "caller"), ["predict"]);
    }

    #[test]
    fn macros_are_not_call_edges() {
        let idx = index("fn caller() {\n    check!();\n}\nfn check() {}\n");
        let caller = idx.by_qualified("caller").expect("indexed");
        assert!(idx.calls[caller].is_empty());
    }

    #[test]
    fn hot_marks_attach_to_the_next_fn() {
        let idx = index(
            "// sx-lint: hot-root -- per-event dispatch\nfn hot() {}\n// sx-lint: hot-exempt -- setup only\nfn cold() {}\nfn plain() {}\n",
        );
        assert_eq!(idx.fns[0].hot_root.as_deref(), Some("per-event dispatch"));
        assert_eq!(idx.fns[1].hot_exempt.as_deref(), Some("setup only"));
        assert!(idx.fns[2].hot_root.is_none() && idx.fns[2].hot_exempt.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_declarations() {
        let idx = index("fn real(cb: fn(usize) -> usize) {\n    cb(1);\n}\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "real");
    }
}
