//! Hot-path propagation: from annotated roots to every reachable function.
//!
//! Hotness is seeded by `// sx-lint: hot-root -- <reason>` annotations on
//! the engine's per-event functions (the dispatch loop, scheduler
//! `next_assignment` impls, event-queue and warm-cache operations,
//! `MetricsRegistry::observe`) and propagated over the
//! [`crate::symbols::SymbolIndex`] call graph to a fixed point.  A
//! function marked `// sx-lint: hot-exempt -- <reason>` is a propagation
//! *boundary*: it never becomes hot and nothing is propagated through it —
//! the escape hatch for per-run setup (`SimScratch` construction), one-shot
//! report assembly, and retention sinks whose whole purpose is to allocate.
//!
//! Test code (`#[cfg(test)]` / `#[test]`) neither seeds nor receives
//! hotness: the allocation contract is about the engine, not its tests.

use crate::symbols::SymbolIndex;

/// Why a function is hot: the root it is reachable from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotInfo {
    /// Index (into [`SymbolIndex::fns`]) of the seeding root.
    pub root: usize,
}

/// One hot function's body span within a single file, ready for the
/// A-rules to scan.
#[derive(Debug, Clone)]
pub struct HotSpan {
    /// 1-based first body line (the `{` line).
    pub body_start: usize,
    /// 1-based last body line (the `}` line).
    pub body_end: usize,
    /// Qualified name of the hot function.
    pub qualified: String,
    /// Qualified name of the hot root it is reachable from.
    pub root: String,
}

/// Propagate hotness from every annotated root to a fixed point.
/// `result[i]` is `Some` iff `fns[i]` is hot, carrying the seeding root.
pub fn propagate(index: &SymbolIndex) -> Vec<Option<HotInfo>> {
    let mut hot: Vec<Option<HotInfo>> = vec![None; index.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in index.fns.iter().enumerate() {
        if f.hot_root.is_some() && f.hot_exempt.is_none() && !f.in_test {
            hot[i] = Some(HotInfo { root: i });
            queue.push(i);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let cur = queue[at];
        at += 1;
        let info = hot[cur].clone().expect("queued functions are hot");
        for &callee in &index.calls[cur] {
            let f = &index.fns[callee];
            if hot[callee].is_some() || f.hot_exempt.is_some() || f.in_test {
                continue;
            }
            hot[callee] = Some(HotInfo { root: info.root });
            queue.push(callee);
        }
    }
    hot
}

/// The hot body spans within file `file_idx`, in symbol order.
pub fn spans_for_file(
    index: &SymbolIndex,
    hot: &[Option<HotInfo>],
    file_idx: usize,
) -> Vec<HotSpan> {
    index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.file == file_idx)
        .filter_map(|(i, f)| {
            hot.get(i).and_then(|h| h.as_ref()).map(|info| HotSpan {
                body_start: f.body_start,
                body_end: f.body_end,
                qualified: f.qualified.clone(),
                root: index.fns[info.root].qualified.clone(),
            })
        })
        .collect()
}

/// Body spans of *every* function in file `file_idx` (hot or not) — the
/// A-rules use these to keep a nested function's lines out of its
/// enclosing function's scan.
pub fn all_spans_for_file(index: &SymbolIndex, file_idx: usize) -> Vec<(usize, usize)> {
    index
        .fns
        .iter()
        .filter(|f| f.file == file_idx)
        .map(|f| (f.body_start, f.body_end))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn hot_names(src: &str) -> Vec<String> {
        let file = SourceFile::parse("crates/cluster/src/x.rs", src);
        let index = SymbolIndex::build(std::slice::from_ref(&file));
        let hot = propagate(&index);
        index
            .fns
            .iter()
            .zip(&hot)
            .filter(|(_, h)| h.is_some())
            .map(|(f, _)| f.qualified.clone())
            .collect()
    }

    #[test]
    fn hotness_propagates_through_an_intermediate_helper() {
        let names = hot_names(
            "// sx-lint: hot-root -- the loop\nfn root() {\n    middle();\n}\nfn middle() {\n    leaf();\n}\nfn leaf() {}\nfn unrelated() {}\n",
        );
        assert_eq!(names, ["root", "middle", "leaf"]);
    }

    #[test]
    fn propagation_stops_at_a_hot_exempt_boundary() {
        let names = hot_names(
            "// sx-lint: hot-root -- the loop\nfn root() {\n    setup();\n}\n// sx-lint: hot-exempt -- runs once per simulation\nfn setup() {\n    build();\n}\nfn build() {}\n",
        );
        // Neither the exempt function nor anything it calls becomes hot.
        assert_eq!(names, ["root"]);
    }

    #[test]
    fn test_code_neither_seeds_nor_receives_hotness() {
        let names = hot_names(
            "// sx-lint: hot-root -- the loop\nfn root() {\n    probe();\n}\n#[cfg(test)]\nmod tests {\n    fn probe() {\n        root();\n    }\n}\n",
        );
        assert_eq!(names, ["root"]);
    }
}
