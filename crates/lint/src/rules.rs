//! The rule catalog: what `sx_lint` enforces, and why.
//!
//! Two families, mirroring `docs/LINTING.md`:
//!
//! * **D-rules** protect the determinism contract of
//!   `docs/ARCHITECTURE.md` — a seeded run must replay bit-identically, so
//!   wall clocks, ambient entropy, hash-order iteration and NaN-unsafe
//!   comparators are banned from simulator code.
//! * **H-rules** are workspace hygiene — crate-root attributes, panicking
//!   shortcuts in library code, and unfiled task markers.
//! * **A-rules** protect the hot-path allocation contract: functions
//!   reachable from a hot-root annotation (see
//!   [`crate::hotpath`]) must not allocate (A001), must not carry
//!   panicking shortcuts (A002), and must not take locks or do console
//!   I/O (A003).  They are flow-aware — the only rules that need the
//!   workspace call graph.
//! * **S001** polices the suppression mechanism itself: every
//!   `sx-lint: allow` must name a real rule and carry a written reason
//!   (and every `hot-root`/`hot-exempt` mark must carry one too).
//!
//! Rule ids are stable and pinned by the fixture tests; add new rules at
//! the end of [`RuleId::ALL`], never renumber.

use crate::hotpath::HotSpan;
use crate::source::SourceFile;

/// How bad a finding is.  The CI gate fails on *any* unsuppressed finding
/// regardless of severity; the distinction exists for human triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks the determinism contract (or the suppression contract).
    Error,
    /// Hygiene debt that will not scramble a trace by itself.
    Warning,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Wall-clock or ambient-entropy API in simulator code.
    D001,
    /// Iteration over a `HashMap`/`HashSet` in simulator code.
    D002,
    /// NaN-unsafe `partial_cmp(..).unwrap()` comparator in a sort.
    D003,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    H001,
    /// Crate root missing crate docs or `#![warn(missing_docs)]`.
    H002,
    /// `unwrap()`/`expect()` in `sx-cluster` library code.
    H003,
    /// `TODO`/`FIXME` without an issue reference.
    H004,
    /// Malformed `sx-lint: allow` (missing reason or unknown rule).
    S001,
    /// Heap allocation in a hot-path function.
    A001,
    /// Panicking shortcut reachable from a hot root.
    A002,
    /// Lock acquisition or console I/O in a hot-path function.
    A003,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 11] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::H001,
        RuleId::H002,
        RuleId::H003,
        RuleId::H004,
        RuleId::S001,
        RuleId::A001,
        RuleId::A002,
        RuleId::A003,
    ];

    /// The stable id string (`"D001"`, ...).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::H001 => "H001",
            RuleId::H002 => "H002",
            RuleId::H003 => "H003",
            RuleId::H004 => "H004",
            RuleId::S001 => "S001",
            RuleId::A001 => "A001",
            RuleId::A002 => "A002",
            RuleId::A003 => "A003",
        }
    }

    /// Parse an id string.
    pub fn from_id(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == s)
    }

    /// The rule's severity.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::D001
            | RuleId::D002
            | RuleId::D003
            | RuleId::S001
            | RuleId::A001
            | RuleId::A002 => Severity::Error,
            RuleId::H001 | RuleId::H002 | RuleId::H003 | RuleId::H004 | RuleId::A003 => {
                Severity::Warning
            }
        }
    }

    /// One-line description used in reports and `docs/LINTING.md`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => {
                "wall-clock/entropy API (Instant::now, SystemTime, thread_rng, from_entropy) in simulator code"
            }
            RuleId::D002 => {
                "iteration over a HashMap/HashSet in simulator code (hash order is nondeterministic across runs)"
            }
            RuleId::D003 => {
                "NaN-unsafe partial_cmp().unwrap() comparator in a sort (use f64::total_cmp or the EventKey pattern)"
            }
            RuleId::H001 => "crate root missing #![forbid(unsafe_code)]",
            RuleId::H002 => "crate root missing crate-level docs or #![warn(missing_docs)]",
            RuleId::H003 => "unwrap()/expect() in sx-cluster library code",
            RuleId::H004 => "TODO/FIXME without an issue reference",
            RuleId::S001 => "malformed sx-lint suppression (reason is mandatory; rule id must exist)",
            RuleId::A001 => {
                "heap allocation in a hot-path function (Vec::new, push/insert without with_capacity, collect, clone, to_string, format!, Box::new)"
            }
            RuleId::A002 => {
                "panicking shortcut (unwrap/expect/panic!) reachable from a hot root"
            }
            RuleId::A003 => {
                "lock acquisition (.lock()) or console I/O (println!/write! to a non-self target) in a hot-path function"
            }
        }
    }
}

/// What kind of file a path is, for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source under some crate's `src/`.
    Lib,
    /// A binary (`src/bin/` or `src/main.rs`).
    Bin,
    /// Tests, benches, examples.
    Test,
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileRole {
    let p = rel_path;
    if p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
    {
        FileRole::Test
    } else if p.contains("/src/bin/") || p.ends_with("/src/main.rs") {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// Whether `rel_path` is the root module of a crate (where the crate-level
/// attribute rules H001/H002 apply).
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

/// Whether `rel_path` belongs to the simulator-side crates whose traces
/// must replay bit-identically (the D-rule scope).
fn in_sim_scope(rel_path: &str) -> bool {
    ["crates/cluster/", "crates/splitexec/", "crates/annealer/"]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// Whether `rel_path` is in the NaN-unsafe-sort scope (sim crates plus the
/// bench harness, whose sweep reports also feed CI gates).
fn in_sort_scope(rel_path: &str) -> bool {
    in_sim_scope(rel_path) || rel_path.starts_with("crates/bench/")
}

/// One raised finding, before suppression resolution.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: usize,
    /// Human message with the offending token.
    pub message: String,
}

/// Run every applicable rule over one scrubbed file.
pub fn check_file(file: &SourceFile) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let role = classify(&file.rel_path);
    let compat = file.rel_path.starts_with("crates/compat/");

    if role == FileRole::Lib && !compat {
        if in_sim_scope(&file.rel_path) {
            check_wall_clock(file, &mut findings);
            check_hash_iteration(file, &mut findings);
        }
        if in_sort_scope(&file.rel_path) {
            check_partial_cmp_sort(file, &mut findings);
        }
        if file.rel_path.starts_with("crates/cluster/") {
            check_unwrap(file, &mut findings);
        }
    }
    if is_crate_root(&file.rel_path) {
        check_crate_attrs(file, &mut findings);
    }
    check_todo(file, &mut findings);
    check_suppression_hygiene(file, &mut findings);
    findings
}

/// D001: wall clocks and ambient entropy.
fn check_wall_clock(file: &SourceFile, out: &mut Vec<RawFinding>) {
    const BANNED: [&str; 4] = ["Instant::now", "SystemTime", "thread_rng", "from_entropy"];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in BANNED {
            if line.code.contains(token) {
                out.push(RawFinding {
                    rule: RuleId::D001,
                    line: idx + 1,
                    message: format!(
                        "`{token}` in simulator code: virtual time and seeded RNG only — \
                         a wall clock or entropy source makes the trace unreplayable"
                    ),
                });
            }
        }
    }
}

/// D002: iteration over hash containers.
///
/// A file-local identifier analysis: collect every identifier declared (or
/// typed) as `HashMap`/`HashSet`, then flag `.iter()`, `.keys()`,
/// `.values()`, `.drain()`, `.into_iter()`, `.retain()` or `for .. in`
/// over those identifiers — unless the statement visibly restores a
/// deterministic order (`sort`, `BTree`, `min`/`max`, or a fold into an
/// order-insensitive scalar like `.sum()`/`.count()` is still flagged:
/// f64 addition is not associative, so even "just a sum" can diverge).
fn check_hash_iteration(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let idents = hash_idents(file);
    const ITER_CALLS: [&str; 6] = [
        ".iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain()",
        ".into_iter()",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for ident in &idents {
            // Bare and `self.`-qualified receivers both count.
            let receivers = [ident.clone(), format!("self.{ident}")];
            let hit = receivers.iter().any(|recv| {
                ITER_CALLS
                    .iter()
                    .any(|call| code.contains(&format!("{recv}{call}")))
                    || code.contains(&format!("in &{recv}"))
                    || code.contains(&format!("in {recv} "))
            });
            if !hit {
                continue;
            }
            // Exemption evidence: a `sort` or a BTree collection within the
            // next few lines (covers both in-chain `.collect::<BTreeSet>()`
            // and the collect-into-Vec-then-sort idiom).
            let window: String = file.lines[idx..(idx + 8).min(file.lines.len())]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if window.contains("sort") || window.contains("BTree") {
                continue;
            }
            out.push(RawFinding {
                rule: RuleId::D002,
                line: idx + 1,
                message: format!(
                    "iteration over hash container `{ident}`: hash order varies across \
                     processes — sort the items, use a BTreeMap/BTreeSet, or prove the \
                     use order-insensitive and `sx-lint: allow(D002)` it with the proof"
                ),
            });
        }
    }
}

/// Identifiers declared as hash containers anywhere in the file (fields,
/// lets, and parameters — matched lexically).
fn hash_idents(file: &SourceFile) -> Vec<String> {
    let mut idents = Vec::new();
    for line in &file.lines {
        let code = &line.code;
        // `name: HashMap<..>` / `name: Mutex<HashMap<..>>` (field or param)
        // and `let [mut] name = HashMap::new()` / `HashSet::with_capacity`.
        for marker in ["HashMap", "HashSet"] {
            if !code.contains(marker) {
                continue;
            }
            if let Some(name) = decl_name_before_colon(code, marker) {
                push_unique(&mut idents, name);
            }
            if let Some(name) = let_binding_name(code, marker) {
                push_unique(&mut idents, name);
            }
        }
    }
    idents
}

fn push_unique(idents: &mut Vec<String>, name: String) {
    if !name.is_empty() && !idents.contains(&name) {
        idents.push(name);
    }
}

/// `foo: [Mutex<][std::collections::]HashMap<..` → `foo`.
///
/// Walks backward from the marker over path segments (`std::collections::`),
/// generic wrappers (`Mutex<`), references and whitespace to the annotation
/// colon, then takes the identifier before it.  Anything else before the
/// marker (`=`, `(`) means this is not a typed declaration.
fn decl_name_before_colon(code: &str, marker: &str) -> Option<String> {
    let at = code.find(marker)?;
    let bytes: Vec<char> = code[..at].chars().collect();
    let mut i = bytes.len();
    while i > 0 {
        let c = bytes[i - 1];
        if c == ':' {
            if i >= 2 && bytes[i - 2] == ':' {
                i -= 2; // `::` path separator
                continue;
            }
            // The single annotation colon: the identifier sits before it.
            let head: String = bytes[..i - 1].iter().collect();
            let name: String = head
                .trim_end()
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            return (!name.is_empty()).then_some(name);
        }
        if c.is_alphanumeric() || c == '_' || c == '<' || c == '>' || c == ' ' || c == '&' {
            i -= 1;
            continue;
        }
        return None;
    }
    None
}

/// `let [mut] foo = [path::]HashMap::new()` → `foo`.
fn let_binding_name(code: &str, marker: &str) -> Option<String> {
    if !code.contains(&format!("{marker}::new")) && !code.contains(&format!("{marker}::with")) {
        return None;
    }
    let let_at = code.find("let ")?;
    let rest = code[let_at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    Some(name)
}

/// D003: NaN-unsafe comparator sorts.
fn check_partial_cmp_sort(file: &SourceFile, out: &mut Vec<RawFinding>) {
    const SORT_FNS: [&str; 7] = [
        "sort_by",
        "sort_unstable_by",
        "min_by",
        "max_by",
        "min_by_key",
        "max_by_key",
        "binary_search_by",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(sort_fn) = SORT_FNS.iter().find(|f| line.code.contains(*f)) else {
            continue;
        };
        let stmt = file.statement(idx + 1, 10);
        if stmt.contains("partial_cmp") && (stmt.contains(".unwrap(") || stmt.contains(".expect("))
        {
            out.push(RawFinding {
                rule: RuleId::D003,
                line: idx + 1,
                message: format!(
                    "`{sort_fn}` with `partial_cmp(..).unwrap()`: panics on NaN and is not a \
                     total order — use `f64::total_cmp` (see the EventKey pattern in \
                     cluster/src/event.rs)"
                ),
            });
        }
    }
}

/// H001 + H002: crate-root attributes and crate docs.
fn check_crate_attrs(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let head_code: Vec<&str> = file.lines.iter().map(|l| l.code.as_str()).collect();
    let has = |needle: &str| head_code.iter().any(|c| c.contains(needle));
    if !has("#![forbid(unsafe_code)]") {
        out.push(RawFinding {
            rule: RuleId::H001,
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    let has_crate_docs = file
        .lines
        .iter()
        .take(5)
        .any(|l| l.comment.trim_start().starts_with("//!"));
    if !has("#![warn(missing_docs)]") || !has_crate_docs {
        out.push(RawFinding {
            rule: RuleId::H002,
            line: 1,
            message: "crate root lacks crate-level `//!` docs and/or `#![warn(missing_docs)]`"
                .to_string(),
        });
    }
}

/// H003: panicking shortcuts in `sx-cluster` library code.
fn check_unwrap(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in [".unwrap()", ".expect("] {
            if line.code.contains(token) {
                out.push(RawFinding {
                    rule: RuleId::H003,
                    line: idx + 1,
                    message: format!(
                        "`{token}` in sx-cluster library code: return a typed error, or \
                         `sx-lint: allow(H003)` with the invariant that makes it unreachable",
                        token = token.trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

/// H004: unfiled TODOs.  An issue reference is `#<digits>` or the word
/// `issue` in the same comment.
fn check_todo(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let c = &line.comment;
        let marker = ["TODO", "FIXME", "XXX"].iter().find(|m| c.contains(*m));
        let Some(marker) = marker else { continue };
        let has_ref = c.to_ascii_lowercase().contains("issue") || has_hash_number(c);
        if !has_ref {
            out.push(RawFinding {
                rule: RuleId::H004,
                line: idx + 1,
                message: format!(
                    "`{marker}` without an issue reference: file it (`{marker}(#123)`) or drop it"
                ),
            });
        }
    }
}

fn has_hash_number(comment: &str) -> bool {
    comment
        .char_indices()
        .filter(|&(_, c)| c == '#')
        .any(|(i, _)| {
            comment[i + 1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
}

/// S001: suppression hygiene — mandatory reason, known rule id.  Hot-path
/// marks are held to the same standard: a `hot-root`/`hot-exempt` without
/// a written reason is a finding.
fn check_suppression_hygiene(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for s in &file.suppressions {
        if RuleId::from_id(&s.rule).is_none() {
            out.push(RawFinding {
                rule: RuleId::S001,
                line: s.line,
                message: format!("`sx-lint: allow({})` names an unknown rule id", s.rule),
            });
        }
        if s.reason.is_none() {
            out.push(RawFinding {
                rule: RuleId::S001,
                line: s.line,
                message: format!(
                    "`sx-lint: allow({})` without a reason: append `-- <why this is safe>`",
                    s.rule
                ),
            });
        }
    }
    for m in &file.hot_marks {
        if m.reason.is_none() {
            let kind = if m.exempt { "hot-exempt" } else { "hot-root" };
            out.push(RawFinding {
                rule: RuleId::S001,
                line: m.line,
                message: format!(
                    "`sx-lint: {kind}` without a reason: append `-- <why this boundary exists>`"
                ),
            });
        }
    }
}

/// The flow-aware A-rules, run over the hot body spans of one file.
///
/// `all_fn_spans` holds the body spans of *every* function in the file so
/// a nested function's lines are scanned under its own hotness verdict,
/// not its enclosing function's.  Lines inside `#[cfg(test)]` regions are
/// always skipped.
pub fn check_hot(
    file: &SourceFile,
    hot_spans: &[HotSpan],
    all_fn_spans: &[(usize, usize)],
) -> Vec<RawFinding> {
    let mut findings: Vec<RawFinding> = Vec::new();
    if classify(&file.rel_path) != FileRole::Lib || file.rel_path.starts_with("crates/compat/") {
        return findings;
    }
    // Identifiers with `with_capacity` evidence anywhere in the file: a
    // `.push(..)`/`.insert(..)` into such a receiver is a write into a
    // pre-sized buffer, not a steady-state allocation.  (Lexical and
    // file-scoped — the alloc-budget test is the dynamic backstop.)
    let presized = presized_idents(file);

    for span in hot_spans {
        for line_no in span.body_start..=span.body_end.min(file.lines.len()) {
            let ln = &file.lines[line_no - 1];
            if ln.in_test {
                continue;
            }
            // Skip lines belonging to a *different* function nested inside
            // this span (it has its own span and hotness verdict).
            let nested = all_fn_spans.iter().any(|&(s, e)| {
                (s, e) != (span.body_start, span.body_end)
                    && s >= span.body_start
                    && e <= span.body_end
                    && (s..=e).contains(&line_no)
            });
            if nested {
                continue;
            }
            check_hot_line(file, span, line_no, &ln.code, &presized, &mut findings);
        }
    }
    // A line can sit in several overlapping hot spans; report it once.
    findings.sort_by(|a, b| (a.line, a.rule.id()).cmp(&(b.line, b.rule.id())));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

/// Allocating constructs matched verbatim on a hot line (A001), beyond the
/// receiver-sensitive `.push(`/`.insert(` cases.
const ALLOC_TOKENS: [&str; 10] = [
    "Vec::new",
    "vec!",
    "Box::new",
    "String::from",
    "String::new",
    ".to_string(",
    ".to_owned(",
    ".to_vec(",
    "format!",
    ".collect",
];

/// Panicking shortcuts (A002).  Indexing (`[]`) is deliberately out of
/// scope: a token scanner cannot tell a slice index from a map key, so the
/// rule stays token-honest.
const PANIC_TOKENS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];

/// Locks and console I/O (A003), longest token first so the finding names
/// `println!` rather than its `print!` substring.
const LOCK_IO_TOKENS: [&str; 6] = [
    ".lock()",
    "eprintln!",
    "println!",
    "eprint!",
    "print!",
    "dbg!",
];

/// Run A001/A002/A003 over one code line of a hot function.
fn check_hot_line(
    file: &SourceFile,
    span: &HotSpan,
    line_no: usize,
    code: &str,
    presized: &[String],
    out: &mut Vec<RawFinding>,
) {
    let context = format!(
        "in hot function `{}` (reachable from hot root `{}`)",
        span.qualified, span.root
    );

    if let Some(token) = ALLOC_TOKENS.iter().find(|t| code.contains(*t)) {
        out.push(RawFinding {
            rule: RuleId::A001,
            line: line_no,
            message: format!(
                "`{}` allocates {context}: hoist into a pre-sized scratch buffer, or \
                 `sx-lint: allow(A001)` with the invariant that bounds it",
                token.trim_matches(|c| c == '.' || c == '(')
            ),
        });
    } else {
        for grow in [".push(", ".insert("] {
            let Some(at) = code.find(grow) else { continue };
            let receiver = receiver_ident(code, at);
            if presized.iter().any(|p| p == &receiver) {
                continue;
            }
            out.push(RawFinding {
                rule: RuleId::A001,
                line: line_no,
                message: format!(
                    "`{receiver}{}` may grow the buffer {context}: no `with_capacity` \
                     evidence for `{receiver}` in this file — pre-size it, or \
                     `sx-lint: allow(A001)` with the invariant that bounds it",
                    grow.trim_end_matches('(')
                ),
            });
            break;
        }
    }

    if let Some(token) = PANIC_TOKENS.iter().find(|t| code.contains(*t)) {
        out.push(RawFinding {
            rule: RuleId::A002,
            line: line_no,
            message: format!(
                "`{}` {context}: a panic here kills the event loop mid-simulation — \
                 return a typed error, or `sx-lint: allow(A002)` with the invariant \
                 that makes it unreachable",
                token.trim_matches(|c| c == '.' || c == '(')
            ),
        });
    }

    if let Some(token) = LOCK_IO_TOKENS.iter().find(|t| code.contains(*t)) {
        out.push(RawFinding {
            rule: RuleId::A003,
            line: line_no,
            message: format!(
                "`{}` {context}: locks and console I/O stall the per-event budget — \
                 move it off the hot path, or `sx-lint: allow(A003)` with the reason \
                 it cannot contend",
                token.trim_matches(|c| c == '.' || c == '(')
            ),
        });
    } else if let Some(target) = write_macro_target(file, line_no, code) {
        if !target.starts_with("self.") {
            out.push(RawFinding {
                rule: RuleId::A003,
                line: line_no,
                message: format!(
                    "`write!`/`writeln!` to `{target}` {context}: I/O to a non-self \
                     target on the hot path — sinks may write to their own writer \
                     (`self.out`), everything else moves off the hot path"
                ),
            });
        }
    }
}

/// Identifiers with `with_capacity` evidence somewhere in the file.
fn presized_idents(file: &SourceFile) -> Vec<String> {
    let mut idents = Vec::new();
    for line in &file.lines {
        if !line.code.contains("with_capacity") {
            continue;
        }
        // Every identifier on a `with_capacity` line counts as evidence:
        // covers `queue: Vec::with_capacity(n)` struct fields and
        // `let mut queue = Vec::with_capacity(n)` bindings alike.
        let mut word = String::new();
        for c in line.code.chars().chain(std::iter::once(' ')) {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
            } else if !word.is_empty() {
                if word != "with_capacity" && !idents.contains(&word) {
                    idents.push(word.clone());
                }
                word.clear();
            }
        }
    }
    idents
}

/// The identifier immediately before a `.push(`/`.insert(` call site.
fn receiver_ident(code: &str, dot_at: usize) -> String {
    code[..dot_at]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

/// The first argument of a `write!`/`writeln!` on this statement, if any.
fn write_macro_target(file: &SourceFile, line_no: usize, code: &str) -> Option<String> {
    let at = code.find("writeln!(").or_else(|| code.find("write!("))?;
    let stmt = file.statement(line_no, 4);
    let rest = &stmt[stmt
        .find("writeln!(")
        .or_else(|| stmt.find("write!("))
        .unwrap_or(at)..];
    let open = rest.find('(')?;
    let arg: String = rest[open + 1..]
        .chars()
        .take_while(|&c| c != ',' && c != ')')
        .collect();
    Some(arg.trim().to_string())
}
