//! Finding baselines: land new rules without a same-PR workspace cleanup.
//!
//! A baseline is a snapshot of the *unsuppressed* findings of one lint
//! run, grouped as `(rule, file) → count` and serialized to
//! `lint.baseline.json`.  In CI, `sx_lint --baseline <file>` fails only on
//! **regressions** — a `(rule, file)` cell whose current count exceeds its
//! baselined count — so a future rule can ship enforcing "no new
//! violations" while the recorded debt is burned down separately.  Cells
//! that improve or disappear are simply reported; re-running
//! `--write-baseline` ratchets them down.
//!
//! The format is machine-written JSON with a fixed shape:
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "rule": "A001", "file": "crates/x/src/y.rs", "count": 2 }
//!   ]
//! }
//! ```
//!
//! The parser below accepts exactly that shape (the crate is
//! dependency-free by design, so it is a purpose-built scanner, not a
//! general JSON parser).

use crate::report::LintReport;

/// One baselined cell: `count` unsuppressed findings of `rule` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id string (`"A001"`).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Unsuppressed findings at snapshot time.
    pub count: usize,
}

/// A parsed or freshly snapshotted baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The cells, sorted by (rule, file).
    pub entries: Vec<BaselineEntry>,
}

/// A `(rule, file)` cell whose current count exceeds its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule id string.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Count allowed by the baseline (0 for an unbaselined cell).
    pub baselined: usize,
    /// Count observed in the current run.
    pub current: usize,
}

impl Baseline {
    /// Snapshot the unsuppressed findings of `report`.
    pub fn from_report(report: &LintReport) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for f in report.unsuppressed() {
            let rule = f.rule.id();
            match entries
                .iter_mut()
                .find(|e| e.rule == rule && e.file == f.file)
            {
                Some(e) => e.count += 1,
                None => entries.push(BaselineEntry {
                    rule: rule.to_string(),
                    file: f.file.clone(),
                    count: 1,
                }),
            }
        }
        entries.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
        Baseline { entries }
    }

    /// Serialize to the `lint.baseline.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"rule\": \"{}\", \"file\": \"{}\", \"count\": {} }}",
                e.rule, e.file, e.count
            ));
        }
        if !self.entries.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse the `lint.baseline.json` format.  Rejects unknown versions
    /// and malformed entries with a human-readable message.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let version = extract_usize(text, "version")
            .ok_or_else(|| "baseline: missing `\"version\"` key".to_string())?;
        if version != 1 {
            return Err(format!("baseline: unsupported version {version}"));
        }
        let entries_at = text
            .find("\"entries\"")
            .ok_or_else(|| "baseline: missing `\"entries\"` key".to_string())?;
        let mut entries = Vec::new();
        let mut rest = &text[entries_at..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..]
                .find('}')
                .ok_or_else(|| "baseline: unterminated entry object".to_string())?;
            let obj = &rest[open..open + close + 1];
            let bad = || format!("baseline: malformed entry `{}`", obj.trim());
            entries.push(BaselineEntry {
                rule: extract_string(obj, "rule").ok_or_else(bad)?,
                file: extract_string(obj, "file").ok_or_else(bad)?,
                count: extract_usize(obj, "count").ok_or_else(bad)?,
            });
            rest = &rest[open + close + 1..];
        }
        Ok(Baseline { entries })
    }

    /// The baselined count for a `(rule, file)` cell (0 if absent).
    pub fn allowed(&self, rule: &str, file: &str) -> usize {
        self.entries
            .iter()
            .find(|e| e.rule == rule && e.file == file)
            .map(|e| e.count)
            .unwrap_or(0)
    }
}

/// Compare a report against a baseline: every `(rule, file)` cell whose
/// current unsuppressed count exceeds the baselined count, sorted by
/// (rule, file).
pub fn regressions(report: &LintReport, baseline: &Baseline) -> Vec<Regression> {
    let current = Baseline::from_report(report);
    let mut out: Vec<Regression> = current
        .entries
        .iter()
        .filter_map(|e| {
            let allowed = baseline.allowed(&e.rule, &e.file);
            (e.count > allowed).then(|| Regression {
                rule: e.rule.clone(),
                file: e.file.clone(),
                baselined: allowed,
                current: e.count,
            })
        })
        .collect();
    out.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
    out
}

/// `"key": "value"` → `value` (no escape handling: paths and rule ids in
/// this workspace contain neither quotes nor backslashes).
fn extract_string(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// `"key": 42` → `42`.
fn extract_usize(obj: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;
    use crate::rules::RuleId;

    fn report_with(findings: Vec<(RuleId, &str, bool)>) -> LintReport {
        LintReport {
            files_scanned: 1,
            findings: findings
                .into_iter()
                .map(|(rule, file, suppressed)| Finding {
                    rule,
                    file: file.to_string(),
                    line: 1,
                    message: String::new(),
                    suppressed,
                    suppress_reason: suppressed.then(|| "test".to_string()),
                })
                .collect(),
        }
    }

    #[test]
    fn snapshot_counts_unsuppressed_by_rule_and_file() {
        let report = report_with(vec![
            (RuleId::A001, "a.rs", false),
            (RuleId::A001, "a.rs", false),
            (RuleId::A002, "a.rs", false),
            (RuleId::A001, "b.rs", true), // suppressed: not baselined
        ]);
        let base = Baseline::from_report(&report);
        assert_eq!(base.entries.len(), 2);
        assert_eq!(base.allowed("A001", "a.rs"), 2);
        assert_eq!(base.allowed("A002", "a.rs"), 1);
        assert_eq!(base.allowed("A001", "b.rs"), 0);
    }

    #[test]
    fn json_round_trips() {
        let base = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "A001".to_string(),
                    file: "crates/x/src/y.rs".to_string(),
                    count: 2,
                },
                BaselineEntry {
                    rule: "H003".to_string(),
                    file: "crates/z/src/w.rs".to_string(),
                    count: 1,
                },
            ],
        };
        let parsed = Baseline::parse(&base.to_json()).expect("round trip");
        assert_eq!(parsed, base);
        let empty = Baseline::default();
        assert_eq!(Baseline::parse(&empty.to_json()).expect("empty"), empty);
    }

    #[test]
    fn parse_rejects_bad_versions_and_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"entries\": [{\"rule\": \"A001\"}]}").is_err());
    }

    #[test]
    fn regressions_fire_only_above_the_baselined_count() {
        let old = report_with(vec![(RuleId::A001, "a.rs", false)]);
        let base = Baseline::from_report(&old);
        // Same count: no regression.  One more: regression.  New cell:
        // regression against an implicit 0.
        let same = report_with(vec![(RuleId::A001, "a.rs", false)]);
        assert!(regressions(&same, &base).is_empty());
        let worse = report_with(vec![
            (RuleId::A001, "a.rs", false),
            (RuleId::A001, "a.rs", false),
            (RuleId::A002, "b.rs", false),
        ]);
        let regs = regressions(&worse, &base);
        assert_eq!(regs.len(), 2);
        assert_eq!((regs[0].baselined, regs[0].current), (1, 2));
        assert_eq!((regs[1].rule.as_str(), regs[1].baselined), ("A002", 0));
        // Improvement (cell disappears): no regression.
        let better = report_with(vec![]);
        assert!(regressions(&better, &base).is_empty());
    }
}
