//! The driver: walk the workspace, scan every Rust source, resolve
//! suppressions and the allowlist, and assemble a [`LintReport`].

use crate::hotpath;
use crate::report::{Finding, LintReport};
use crate::rules::{check_file, check_hot, RawFinding, RuleId};
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One grandfathered site from the allowlist file: suppresses `rule` for
/// every path starting with `path_prefix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being grandfathered.
    pub rule: RuleId,
    /// Workspace-relative path prefix (`/`-separated).
    pub path_prefix: String,
    /// The mandatory written reason.
    pub reason: String,
}

/// Errors the driver can hit.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure while walking or reading.
    Io(PathBuf, io::Error),
    /// A malformed allowlist line (1-based line number and its text).
    BadAllowlist(usize, String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            LintError::BadAllowlist(line, text) => write!(
                f,
                "allowlist line {line}: expected `<rule-id> <path-prefix> -- <reason>`, got `{text}`"
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Parse the allowlist format: one `<rule-id> <path-prefix> -- <reason>`
/// per line; `#` comments and blank lines ignored.  The reason is as
/// mandatory here as it is inline.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, LintError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || LintError::BadAllowlist(idx + 1, raw.to_string());
        let (head, reason) = line.split_once("--").ok_or_else(bad)?;
        let mut parts = head.split_whitespace();
        let rule = parts.next().and_then(RuleId::from_id).ok_or_else(bad)?;
        let path_prefix = parts.next().ok_or_else(bad)?.to_string();
        let reason = reason.trim().to_string();
        if reason.is_empty() || parts.next().is_some() {
            return Err(bad());
        }
        entries.push(AllowEntry {
            rule,
            path_prefix,
            reason,
        });
    }
    Ok(entries)
}

/// Lint a single in-memory source as if it lived at `rel_path` — the entry
/// point the fixture tests use.  Applies inline suppressions but no
/// allowlist.  The file is its own whole workspace, so `hot-root`
/// annotations inside it seed the A-rules.
pub fn lint_source(rel_path: &str, text: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), text.to_string())], &[]).findings
}

/// Lint a set of in-memory sources as one workspace: the line-local rules
/// per file, plus the symbol index / call graph / hot-path pass across
/// all of them.
pub fn lint_sources(sources: &[(String, String)], allowlist: &[AllowEntry]) -> LintReport {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| SourceFile::parse(rel, text))
        .collect();
    lint_parsed(&files, allowlist)
}

/// Lint every workspace source under `root`, honoring the allowlist.
pub fn lint_workspace(root: &Path, allowlist: &[AllowEntry]) -> Result<LintReport, LintError> {
    let mut rels = Vec::new();
    collect_rust_files(root, root, &mut rels)?;
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let abs = root.join(rel);
        let text = fs::read_to_string(&abs).map_err(|e| LintError::Io(abs.clone(), e))?;
        files.push(SourceFile::parse(rel, &text));
    }
    Ok(lint_parsed(&files, allowlist))
}

/// The two-pass core: line-local rules per file, then the workspace-wide
/// symbol/call-graph/hot-path pass feeding the A-rules.
fn lint_parsed(files: &[SourceFile], allowlist: &[AllowEntry]) -> LintReport {
    let index = SymbolIndex::build(files);
    let hot = hotpath::propagate(&index);
    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let mut raws = check_file(file);
        let hot_spans = hotpath::spans_for_file(&index, &hot, fi);
        let all_spans = hotpath::all_spans_for_file(&index, fi);
        raws.extend(check_hot(file, &hot_spans, &all_spans));
        findings.extend(resolve(file, raws, allowlist));
    }
    LintReport {
        files_scanned: files.len(),
        findings,
    }
}

/// Resolve each raw finding against inline suppressions and the allowlist.
fn resolve(file: &SourceFile, raws: Vec<RawFinding>, allowlist: &[AllowEntry]) -> Vec<Finding> {
    raws.into_iter()
        .map(|raw| {
            let inline = file
                .suppression_covering(raw.line, raw.rule.id())
                .filter(|s| s.reason.is_some());
            let grandfathered = allowlist
                .iter()
                .find(|a| a.rule == raw.rule && file.rel_path.starts_with(a.path_prefix.as_str()));
            let (suppressed, reason) = match (inline, grandfathered) {
                (Some(s), _) => (true, s.reason.clone()),
                (None, Some(a)) => (true, Some(a.reason.clone())),
                (None, None) => (false, None),
            };
            Finding {
                rule: raw.rule,
                file: file.rel_path.clone(),
                line: raw.line,
                message: raw.message,
                suppressed,
                suppress_reason: reason,
            }
        })
        .collect()
}

/// Directories never scanned: build output, VCS, and the linter's own
/// deliberately-bad fixture corpus.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "fixtures"
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rust_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_rejects_malformed_lines() {
        let ok = parse_allowlist(
            "# comment\n\nD001 crates/splitexec/src/timing.rs -- real wall-clock measurement\n",
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, RuleId::D001);
        assert!(parse_allowlist("D001 some/path").is_err());
        assert!(parse_allowlist("D999 some/path -- reason").is_err());
        assert!(parse_allowlist("D001 some/path --   ").is_err());
    }

    #[test]
    fn inline_suppression_requires_matching_rule_and_reason() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        let path = "crates/cluster/src/x.rs";
        let findings = lint_source(path, bad);
        assert!(findings.iter().any(|f| !f.suppressed));

        let suppressed = format!("// sx-lint: allow(D001) -- proving the suppressor\n{bad}");
        let findings = lint_source(path, &suppressed);
        assert!(findings.iter().all(|f| f.suppressed));

        // A reasonless allow suppresses nothing and raises S001 itself.
        let reasonless = format!("// sx-lint: allow(D001)\n{bad}");
        let findings = lint_source(path, &reasonless);
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::S001 && !f.suppressed));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::D001 && !f.suppressed));
    }

    #[test]
    fn allowlist_grandfathers_by_path_prefix() {
        let file = SourceFile::parse(
            "crates/cluster/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        let allow = vec![AllowEntry {
            rule: RuleId::D001,
            path_prefix: "crates/cluster/".to_string(),
            reason: "grandfathered for the test".to_string(),
        }];
        let findings = resolve(&file, check_file(&file), &allow);
        assert!(findings
            .iter()
            .filter(|f| f.rule == RuleId::D001)
            .all(|f| f.suppressed));
    }
}
