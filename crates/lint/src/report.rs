//! Findings and output formats.
//!
//! Two formats, selected by the CLI's `--format`:
//!
//! * `human` — one `file:line: severity[rule] message` per finding, the
//!   suppressed ones summarized at the end;
//! * `json` — a deterministic hand-rolled JSON document (the linter is
//!   dependency-free, so it carries its own four-line escaper) for
//!   machine consumption in CI dashboards.

use crate::rules::RuleId;

/// One resolved finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Whether an inline `sx-lint: allow` or an allowlist entry covers it.
    pub suppressed: bool,
    /// The written reason of the covering suppression, if any.
    pub suppress_reason: Option<String>,
}

/// The result of linting a set of files.
#[derive(Debug)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Every finding, suppressed or not, in file/line order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// The findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Whether the gate passes (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// The human report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "{}:{}: {}[{}] {}\n",
                f.file,
                f.line,
                f.rule.severity().label(),
                f.rule.id(),
                f.message
            ));
        }
        let suppressed = self.findings.iter().filter(|f| f.suppressed).count();
        let unsuppressed = self.findings.len() - suppressed;
        out.push_str(&format!(
            "sx-lint: {} file(s) scanned, {} finding(s) ({} suppressed)\n",
            self.files_scanned, unsuppressed, suppressed
        ));
        out
    }

    /// The JSON report.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"unsuppressed\": {},\n",
            self.unsuppressed().count()
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"suppressed\": {}, \"message\": \"{}\"{}}}{}\n",
                f.rule.id(),
                f.rule.severity().label(),
                escape(&f.file),
                f.line,
                f.suppressed,
                escape(&f.message),
                f.suppress_reason
                    .as_deref()
                    .map(|r| format!(", \"reason\": \"{}\"", escape(r)))
                    .unwrap_or_default(),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(suppressed: bool) -> Finding {
        Finding {
            rule: RuleId::D001,
            file: "crates/cluster/src/x.rs".to_string(),
            line: 7,
            message: "a \"quoted\" message".to_string(),
            suppressed,
            suppress_reason: suppressed.then(|| "why".to_string()),
        }
    }

    #[test]
    fn human_report_lists_unsuppressed_and_counts_suppressed() {
        let r = LintReport {
            files_scanned: 3,
            findings: vec![finding(false), finding(true)],
        };
        let text = r.human();
        assert!(text.contains("crates/cluster/src/x.rs:7: error[D001]"));
        assert!(text.contains("3 file(s) scanned, 1 finding(s) (1 suppressed)"));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let r = LintReport {
            files_scanned: 1,
            findings: vec![finding(true)],
        };
        let json = r.json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"unsuppressed\": 0"));
        assert!(json.contains("\"reason\": \"why\""));
        assert!(r.is_clean());
    }
}
