//! Weighted multi-source Dijkstra search used by the CMR embedding heuristic.
//!
//! The Cai–Macready–Roy heuristic grows vertex models by repeatedly finding
//! cheapest paths from candidate root qubits to the existing chains of
//! already-embedded neighbors.  Costs live on *vertices* (a qubit already
//! used by other chains is exponentially more expensive to reuse), so the
//! search accumulates the weight of every vertex on the path, excluding the
//! source set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a multi-source shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    /// Accumulated cost to reach each vertex (`f64::INFINITY` if unreachable).
    pub cost: Vec<f64>,
    /// Predecessor vertex on a cheapest path (`usize::MAX` for sources and
    /// unreachable vertices).
    pub predecessor: Vec<usize>,
    /// Number of edge relaxations performed (for resource accounting).
    pub relaxations: u64,
}

impl ShortestPaths {
    /// Reconstruct the path from a source to `target`, inclusive of both the
    /// first reached source vertex and the target.  Returns `None` when the
    /// target is unreachable.
    pub fn path_to(&self, target: usize) -> Option<Vec<usize>> {
        if !self.cost[target].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut current = target;
        while self.predecessor[current] != usize::MAX {
            current = self.predecessor[current];
            path.push(current);
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the min cost.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-source Dijkstra over a graph given as an adjacency closure.
///
/// * `neighbors(v)` must yield the neighbors of `v`.
/// * `vertex_weight(v)` is the cost of *entering* vertex `v`; source vertices
///   cost nothing.
/// * Vertices with non-finite weight are treated as forbidden.
pub fn multi_source_dijkstra<N, I, W>(
    num_vertices: usize,
    sources: &[usize],
    mut neighbors: N,
    mut vertex_weight: W,
) -> ShortestPaths
where
    N: FnMut(usize) -> I,
    I: IntoIterator<Item = usize>,
    W: FnMut(usize) -> f64,
{
    let mut cost = vec![f64::INFINITY; num_vertices];
    let mut predecessor = vec![usize::MAX; num_vertices];
    let mut heap = BinaryHeap::new();
    let mut relaxations: u64 = 0;
    for &s in sources {
        if s < num_vertices {
            cost[s] = 0.0;
            heap.push(HeapEntry {
                cost: 0.0,
                vertex: s,
            });
        }
    }
    while let Some(HeapEntry { cost: c, vertex: v }) = heap.pop() {
        if c > cost[v] {
            continue;
        }
        for u in neighbors(v) {
            relaxations += 1;
            let w = vertex_weight(u);
            if !w.is_finite() {
                continue;
            }
            let candidate = c + w;
            if candidate < cost[u] {
                cost[u] = candidate;
                predecessor[u] = v;
                heap.push(HeapEntry {
                    cost: candidate,
                    vertex: u,
                });
            }
        }
    }
    ShortestPaths {
        cost,
        predecessor,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use chimera_graph::Graph;

    fn run(graph: &Graph, sources: &[usize]) -> ShortestPaths {
        multi_source_dijkstra(
            graph.vertex_count(),
            sources,
            |v| graph.neighbors(v).collect::<Vec<_>>(),
            |_| 1.0,
        )
    }

    #[test]
    fn single_source_unit_weights_match_bfs() {
        let g = generators::path(6);
        let sp = run(&g, &[0]);
        for (v, &c) in sp.cost.iter().enumerate() {
            assert_eq!(c, v as f64);
        }
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let sp = run(&g, &[0, 6]);
        assert_eq!(sp.cost[3], 3.0);
        assert_eq!(sp.cost[5], 1.0);
        assert_eq!(sp.cost[6], 0.0);
    }

    #[test]
    fn path_reconstruction() {
        let g = generators::path(5);
        let sp = run(&g, &[0]);
        let path = sp.path_to(4).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3, 4]);
        assert_eq!(sp.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn unreachable_targets_return_none() {
        let mut g = generators::path(3);
        g.add_vertex();
        let sp = run(&g, &[0]);
        assert!(sp.path_to(3).is_none());
        assert!(!sp.cost[3].is_finite());
    }

    #[test]
    fn vertex_weights_steer_the_path() {
        // Square 0-1-2-3-0; make vertex 1 very expensive so the path 0 -> 2
        // goes through 3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sp = multi_source_dijkstra(
            4,
            &[0],
            |v| g.neighbors(v).collect::<Vec<_>>(),
            |v| if v == 1 { 100.0 } else { 1.0 },
        );
        assert_eq!(sp.path_to(2).unwrap(), vec![0, 3, 2]);
        assert_eq!(sp.cost[2], 2.0);
    }

    #[test]
    fn forbidden_vertices_block_paths() {
        let g = generators::path(4);
        let sp = multi_source_dijkstra(
            4,
            &[0],
            |v| g.neighbors(v).collect::<Vec<_>>(),
            |v| if v == 2 { f64::INFINITY } else { 1.0 },
        );
        assert!(sp.path_to(3).is_none());
        assert!(sp.path_to(1).is_some());
    }

    #[test]
    fn relaxation_counter_grows_with_graph_size() {
        let small = run(&generators::complete(5), &[0]).relaxations;
        let large = run(&generators::complete(20), &[0]).relaxations;
        assert!(large > small);
        assert!(small > 0);
    }

    #[test]
    fn out_of_range_sources_are_ignored() {
        let g = generators::path(3);
        let sp = run(&g, &[99]);
        assert!(sp.cost.iter().all(|c| !c.is_finite()));
    }
}
