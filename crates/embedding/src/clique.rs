//! Deterministic complete-graph (clique) embedding into Chimera hardware.
//!
//! This is the polynomial construction the paper attributes to Choi and to
//! Klymko–Sullivan–Humble: embedding `K_n` into a Chimera lattice with
//! `O(n²)` qubits using L-shaped chains.  Each logical vertex `i = 4b + a`
//! (for shore size `L = 4`) owns the horizontal qubits at position `a`
//! across row `b` and the vertical qubits at position `a` down column `b`;
//! the two runs meet (and are coupled) in the diagonal cell `(b, b)`, every
//! pair of chains crosses in exactly two cells, and the chains are pairwise
//! disjoint.
//!
//! The construction is exact, fault-intolerant and — as the paper notes —
//! wasteful for sparse inputs, which is why the CMR heuristic
//! ([`crate::cmr`]) is the paper's choice for the runtime model; the clique
//! embedder serves as the deterministic baseline in the ablation benchmarks.

use crate::types::{EmbedError, Embedding};
use chimera_graph::{Chimera, ChimeraCoord, Side};
use serde::{Deserialize, Serialize};

/// Outcome of the deterministic clique embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CliqueOutcome {
    /// The embedding (chains indexed by logical vertex).
    pub embedding: Embedding,
    /// Number of unit-cell rows/columns of the lattice actually used.
    pub cells_used: usize,
}

/// Largest complete graph embeddable by this construction in a pristine
/// `C(m, m, L)` lattice.
pub fn max_clique_size(chimera: &Chimera) -> usize {
    chimera.shore_size() * chimera.rows().min(chimera.cols())
}

/// Embed the complete graph `K_n` into a pristine Chimera lattice.
///
/// Returns an error if the lattice is too small (the construction needs
/// `ceil(n / L)` rows and columns) or if `n` is zero.
pub fn clique_embedding(n: usize, chimera: &Chimera) -> Result<CliqueOutcome, EmbedError> {
    if n == 0 {
        return Err(EmbedError::DegenerateInput(
            "cannot embed an empty complete graph".into(),
        ));
    }
    let l = chimera.shore_size();
    let blocks = n.div_ceil(l);
    if blocks > chimera.rows() || blocks > chimera.cols() {
        return Err(EmbedError::HardwareTooSmall {
            required: 2 * l * blocks * blocks,
            available: chimera.qubit_count(),
        });
    }
    let mut chains = Vec::with_capacity(n);
    for i in 0..n {
        let b = i / l;
        let a = i % l;
        let mut chain = Vec::with_capacity(2 * blocks);
        // Horizontal run across row b, columns 0..blocks.
        for c in 0..blocks {
            chain.push(chimera.linear_index(ChimeraCoord {
                row: b,
                col: c,
                side: Side::Horizontal,
                k: a,
            }));
        }
        // Vertical run down column b, rows 0..blocks.
        for r in 0..blocks {
            chain.push(chimera.linear_index(ChimeraCoord {
                row: r,
                col: b,
                side: Side::Vertical,
                k: a,
            }));
        }
        chains.push(chain);
    }
    Ok(CliqueOutcome {
        embedding: Embedding::from_chains(chains),
        cells_used: blocks,
    })
}

/// Number of physical qubits the construction uses for `K_n` on shore size
/// `l`: `n` chains of length `2·ceil(n/l)`.
pub fn clique_qubit_cost(n: usize, l: usize) -> usize {
    n * 2 * n.div_ceil(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_embedding;
    use chimera_graph::generators;

    #[test]
    fn small_cliques_embed_and_verify() {
        let chimera = Chimera::new(4, 4, 4);
        for n in 1..=16 {
            let out = clique_embedding(n, &chimera).unwrap();
            let input = generators::complete(n);
            verify_embedding(&input, chimera.graph(), &out.embedding)
                .unwrap_or_else(|e| panic!("K{n} failed: {e}"));
        }
    }

    #[test]
    fn k16_on_4x4_uses_all_expected_qubits() {
        let chimera = Chimera::new(4, 4, 4);
        let out = clique_embedding(16, &chimera).unwrap();
        assert_eq!(out.cells_used, 4);
        assert_eq!(out.embedding.qubits_used(), clique_qubit_cost(16, 4));
        assert_eq!(out.embedding.max_chain_length(), 8);
    }

    #[test]
    fn qubit_cost_grows_quadratically() {
        // The paper: embedding a complete graph with n vertices requires a
        // Chimera hardware with ~n^2 qubits.
        let cost_10 = clique_qubit_cost(10, 4);
        let cost_20 = clique_qubit_cost(20, 4);
        let cost_40 = clique_qubit_cost(40, 4);
        assert!(cost_20 >= 3 * cost_10);
        assert!(cost_40 >= 3 * cost_20);
    }

    #[test]
    fn max_clique_size_matches_lattice() {
        assert_eq!(max_clique_size(&Chimera::new(4, 4, 4)), 16);
        assert_eq!(max_clique_size(&Chimera::dw2_vesuvius()), 32);
        assert_eq!(max_clique_size(&Chimera::dw2x()), 48);
        assert_eq!(max_clique_size(&Chimera::new(3, 5, 4)), 12);
    }

    #[test]
    fn dw2x_hosts_k48() {
        let chimera = Chimera::dw2x();
        let out = clique_embedding(48, &chimera).unwrap();
        let input = generators::complete(48);
        verify_embedding(&input, chimera.graph(), &out.embedding).unwrap();
        assert_eq!(out.embedding.max_chain_length(), 24);
    }

    #[test]
    fn oversized_clique_is_rejected() {
        let chimera = Chimera::new(2, 2, 4);
        let err = clique_embedding(9, &chimera).unwrap_err();
        assert!(matches!(err, EmbedError::HardwareTooSmall { .. }));
    }

    #[test]
    fn zero_clique_is_rejected() {
        let chimera = Chimera::new(2, 2, 4);
        assert!(matches!(
            clique_embedding(0, &chimera).unwrap_err(),
            EmbedError::DegenerateInput(_)
        ));
    }

    #[test]
    fn chains_are_pairwise_disjoint() {
        let chimera = Chimera::new(6, 6, 4);
        let out = clique_embedding(24, &chimera).unwrap();
        assert!(!out.embedding.has_overlaps());
        assert_eq!(
            out.embedding.total_chain_length(),
            out.embedding.qubits_used()
        );
    }
}
