//! Embedding validation.
//!
//! A mapping `φ` is a minor embedding of `G` into `H` when (Sec. 2.2 of the
//! paper): every logical vertex maps to a *connected* subtree of `H`, the
//! vertex models are pairwise disjoint, and every logical edge is realized by
//! at least one hardware coupler between the corresponding vertex models.
//! The verifier checks all three conditions and is used by every embedding
//! test in the workspace, so a bug in either embedder cannot silently produce
//! invalid programs.

use crate::types::{EmbedError, Embedding};
use chimera_graph::{metrics, Graph};

/// Verify that `embedding` is a valid minor embedding of `input` into
/// `hardware`.  Returns `Ok(())` or a descriptive [`EmbedError::Invalid`].
pub fn verify_embedding(
    input: &Graph,
    hardware: &Graph,
    embedding: &Embedding,
) -> Result<(), EmbedError> {
    if embedding.num_logical() != input.vertex_count() {
        return Err(EmbedError::Invalid(format!(
            "embedding covers {} logical vertices but the input has {}",
            embedding.num_logical(),
            input.vertex_count()
        )));
    }

    // 1. Non-empty, in-range, connected vertex models.
    for (v, chain) in embedding.iter() {
        if chain.is_empty() {
            return Err(EmbedError::Invalid(format!(
                "logical vertex {v} has an empty chain"
            )));
        }
        if let Some(&q) = chain.iter().find(|&&q| q >= hardware.vertex_count()) {
            return Err(EmbedError::Invalid(format!(
                "chain of logical vertex {v} references qubit {q} outside the hardware"
            )));
        }
        if !metrics::is_connected_subset(hardware, chain) {
            return Err(EmbedError::Invalid(format!(
                "chain of logical vertex {v} is not connected in the hardware graph"
            )));
        }
    }

    // 2. Disjoint vertex models.
    let mut owner = vec![usize::MAX; hardware.vertex_count()];
    for (v, chain) in embedding.iter() {
        for &q in chain {
            if owner[q] != usize::MAX {
                return Err(EmbedError::Invalid(format!(
                    "qubit {q} is claimed by logical vertices {} and {v}",
                    owner[q]
                )));
            }
            owner[q] = v;
        }
    }

    // 3. Every logical edge is realized by at least one hardware coupler.
    for (u, v) in input.edges() {
        let realized = embedding.chain(u).iter().any(|&qu| {
            hardware
                .neighbors(qu)
                .any(|qn| embedding.chain(v).binary_search(&qn).is_ok())
        });
        if !realized {
            return Err(EmbedError::Invalid(format!(
                "logical edge ({u}, {v}) has no hardware coupler between its chains"
            )));
        }
    }
    Ok(())
}

/// Count the hardware couplers available to realize each logical edge; used
/// by the parameter-setting stage to decide how to distribute `J` values.
pub fn couplers_per_edge(
    input: &Graph,
    hardware: &Graph,
    embedding: &Embedding,
) -> Vec<((usize, usize), usize)> {
    input
        .edges()
        .map(|(u, v)| {
            let count = embedding
                .chain(u)
                .iter()
                .map(|&qu| {
                    hardware
                        .neighbors(qu)
                        .filter(|qn| embedding.chain(v).binary_search(qn).is_ok())
                        .count()
                })
                .sum();
            ((u, v), count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::{generators, Chimera};

    fn identity_embedding(n: usize) -> Embedding {
        Embedding::from_chains((0..n).map(|v| vec![v]).collect())
    }

    #[test]
    fn identity_embedding_of_subgraph_is_valid() {
        // A path embeds into itself with singleton chains.
        let g = generators::path(5);
        verify_embedding(&g, &g, &identity_embedding(5)).unwrap();
    }

    #[test]
    fn missing_edge_is_rejected() {
        let input = generators::complete(3);
        let hardware = generators::path(3);
        let err = verify_embedding(&input, &hardware, &identity_embedding(3)).unwrap_err();
        assert!(err.to_string().contains("no hardware coupler"));
    }

    #[test]
    fn empty_chain_is_rejected() {
        let input = generators::path(2);
        let hardware = generators::path(2);
        let e = Embedding::from_chains(vec![vec![0], vec![]]);
        let err = verify_embedding(&input, &hardware, &e).unwrap_err();
        assert!(err.to_string().contains("empty chain"));
    }

    #[test]
    fn disconnected_chain_is_rejected() {
        let input = generators::path(2);
        let hardware = generators::path(4);
        // Chain {0, 3} is not connected in the path 0-1-2-3 without 1, 2.
        let e = Embedding::from_chains(vec![vec![0, 3], vec![1]]);
        let err = verify_embedding(&input, &hardware, &e).unwrap_err();
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn overlapping_chains_are_rejected() {
        let input = generators::path(2);
        let hardware = generators::path(3);
        let e = Embedding::from_chains(vec![vec![0, 1], vec![1, 2]]);
        let err = verify_embedding(&input, &hardware, &e).unwrap_err();
        assert!(err.to_string().contains("claimed by"));
    }

    #[test]
    fn out_of_range_qubit_is_rejected() {
        let input = generators::path(2);
        let hardware = generators::path(2);
        let e = Embedding::from_chains(vec![vec![0], vec![7]]);
        let err = verify_embedding(&input, &hardware, &e).unwrap_err();
        assert!(err.to_string().contains("outside the hardware"));
    }

    #[test]
    fn wrong_logical_count_is_rejected() {
        let input = generators::path(3);
        let hardware = generators::path(3);
        let err = verify_embedding(&input, &hardware, &identity_embedding(2)).unwrap_err();
        assert!(err.to_string().contains("logical vertices"));
    }

    #[test]
    fn couplers_per_edge_counts_crossings() {
        // K2 embedded into a single Chimera cell with one vertical and one
        // horizontal qubit per chain: each chain is connected through the
        // intra-cell coupler, and the two chains cross on two couplers.
        let chimera = Chimera::new(1, 1, 4);
        let input = generators::complete(2);
        let e = Embedding::from_chains(vec![vec![0, 4], vec![1, 5]]);
        verify_embedding(&input, chimera.graph(), &e).unwrap();
        let counts = couplers_per_edge(&input, chimera.graph(), &e);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].1, 2);
    }
}
