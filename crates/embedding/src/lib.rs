//! # minor-embed — minor-graph embedding into Chimera hardware
//!
//! The classical pre-processing step that dominates the split-execution
//! runtime in the paper's analysis (Fig. 9a): mapping the interaction graph
//! of a logical Ising problem onto the Chimera hardware graph as a *graph
//! minor*, then spreading the logical parameters over the embedded chains.
//!
//! * [`cmr`] — the randomized Cai–Macready–Roy heuristic (Dijkstra-grown
//!   vertex models with overlap penalties and improvement passes), the
//!   algorithm the paper's Stage-1 model charges for.
//! * [`clique`] — the deterministic `O(n²)`-qubit complete-graph embedding
//!   used as the baseline/ablation.
//! * [`verify`] — validity checking (connected, disjoint chains covering all
//!   logical edges).
//! * [`parameter`] — embedded-Ising parameter setting (bias splitting,
//!   coupler assignment, ferromagnetic chain strength) and readout
//!   un-embedding by majority vote.
//! * [`dijkstra`] — the weighted multi-source shortest-path search used by
//!   the heuristic.
//!
//! ```
//! use minor_embed::prelude::*;
//! use chimera_graph::{generators, Chimera};
//!
//! let hardware = Chimera::new(2, 2, 4);
//! let input = generators::complete(5);
//! let outcome = find_embedding(&input, hardware.graph(), &CmrConfig::with_seed(7)).unwrap();
//! verify_embedding(&input, hardware.graph(), &outcome.embedding).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clique;
pub mod cmr;
pub mod dijkstra;
pub mod parameter;
pub mod types;
pub mod verify;

pub use clique::{clique_embedding, CliqueOutcome};
pub use cmr::{find_embedding, CmrConfig, CmrOutcome, CmrStats};
pub use parameter::{embed_ising, unembed_sample, EmbeddedIsing, ParameterSetting};
pub use types::{EmbedError, Embedding};
pub use verify::verify_embedding;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::clique::{clique_embedding, max_clique_size};
    pub use crate::cmr::{find_embedding, CmrConfig, CmrOutcome, CmrStats};
    pub use crate::parameter::{embed_ising, unembed_sample, EmbeddedIsing, ParameterSetting};
    pub use crate::types::{EmbedError, Embedding};
    pub use crate::verify::verify_embedding;
}

#[cfg(test)]
mod proptests {
    use crate::cmr::{find_embedding, CmrConfig};
    use crate::parameter::{embed_ising, unembed_sample, ParameterSetting};
    use crate::verify::verify_embedding;
    use chimera_graph::{generators, Chimera};
    use proptest::prelude::*;
    use qubo_ising::Ising;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every embedding the CMR heuristic reports as successful passes the
        /// independent verifier, for random sparse inputs on a 3×3 lattice.
        #[test]
        fn cmr_embeddings_always_verify(n in 2usize..10, p in 0.1f64..0.6, seed in 0u64..50) {
            let input = generators::gnp(n, p, seed);
            let hardware = Chimera::new(3, 3, 4).into_graph();
            let config = CmrConfig { seed, tries: 3, ..CmrConfig::default() };
            if let Ok(outcome) = find_embedding(&input, &hardware, &config) {
                prop_assert!(verify_embedding(&input, &hardware, &outcome.embedding).is_ok());
                prop_assert!(outcome.embedding.qubits_used() >= n.min(hardware.vertex_count()));
            }
        }

        /// Embedding then decoding an unbroken (all chains aligned) physical
        /// state returns exactly the logical state used to build it.
        #[test]
        fn unembed_inverts_aligned_states(n in 2usize..8, seed in 0u64..50, mask in 0u64..256) {
            let input = generators::gnp(n, 0.5, seed);
            let hardware = Chimera::new(3, 3, 4).into_graph();
            let config = CmrConfig { seed, ..CmrConfig::default() };
            if let Ok(outcome) = find_embedding(&input, &hardware, &config) {
                let logical_spins: Vec<i8> =
                    (0..n).map(|i| if (mask >> i) & 1 == 1 { 1 } else { -1 }).collect();
                let mut physical = vec![1i8; hardware.vertex_count()];
                for (v, chain) in outcome.embedding.iter() {
                    for &q in chain {
                        physical[q] = logical_spins[v];
                    }
                }
                let decoded = unembed_sample(&outcome.embedding, &physical);
                prop_assert_eq!(decoded.spins, logical_spins);
                prop_assert_eq!(decoded.chain_breaks, 0);
            }
        }

        /// Parameter setting conserves logical biases and couplings in total,
        /// regardless of chain shapes.
        #[test]
        fn parameter_setting_conserves_totals(n in 2usize..8, seed in 0u64..50) {
            let graph = generators::gnp(n, 0.5, seed);
            let logical = Ising::random_on_graph(&graph, seed + 1);
            let hardware = Chimera::new(3, 3, 4).into_graph();
            let config = CmrConfig { seed, ..CmrConfig::default() };
            if let Ok(outcome) = find_embedding(&graph, &hardware, &config) {
                let embedded = embed_ising(
                    &logical,
                    &outcome.embedding,
                    &hardware,
                    ParameterSetting::default(),
                );
                for (v, chain) in outcome.embedding.iter() {
                    let total: f64 = chain.iter().map(|&q| embedded.physical.field(q)).sum();
                    prop_assert!((total - logical.field(v)).abs() < 1e-9);
                }
                for ((u, v), juv) in logical.couplings() {
                    let mut total = 0.0;
                    for &qu in outcome.embedding.chain(u) {
                        for &qv in outcome.embedding.chain(v) {
                            total += embedded.physical.coupling(qu, qv);
                        }
                    }
                    prop_assert!((total - juv).abs() < 1e-9);
                }
            }
        }
    }
}
