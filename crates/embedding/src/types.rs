//! Core embedding types shared across the algorithms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A minor embedding: for each logical vertex, the set of hardware qubits
/// (its *chain* or *vertex model*) that collectively represent it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Embedding {
    /// `chains[v]` lists the hardware qubits assigned to logical vertex `v`,
    /// sorted ascending.
    chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Create an embedding with `n` empty chains.
    pub fn new(n: usize) -> Self {
        Self {
            chains: vec![Vec::new(); n],
        }
    }

    /// Build from explicit chains (each chain is sorted and deduplicated).
    pub fn from_chains(chains: Vec<Vec<usize>>) -> Self {
        let chains = chains
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c.dedup();
                c
            })
            .collect();
        Self { chains }
    }

    /// Number of logical vertices.
    pub fn num_logical(&self) -> usize {
        self.chains.len()
    }

    /// The chain of logical vertex `v`.
    pub fn chain(&self, v: usize) -> &[usize] {
        &self.chains[v]
    }

    /// Replace the chain of logical vertex `v`.
    pub fn set_chain(&mut self, v: usize, mut chain: Vec<usize>) {
        chain.sort_unstable();
        chain.dedup();
        self.chains[v] = chain;
    }

    /// Remove the chain of logical vertex `v` (leaving it empty).
    pub fn clear_chain(&mut self, v: usize) {
        self.chains[v].clear();
    }

    /// Iterate over `(logical vertex, chain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.chains
            .iter()
            .enumerate()
            .map(|(v, c)| (v, c.as_slice()))
    }

    /// Total number of hardware qubits used (counting duplicates once).
    pub fn qubits_used(&self) -> usize {
        let mut all = BTreeSet::new();
        for chain in &self.chains {
            all.extend(chain.iter().copied());
        }
        all.len()
    }

    /// Sum of chain lengths (counts a qubit once per chain that uses it).
    pub fn total_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Length of the longest chain (0 if all chains are empty).
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean chain length over non-empty chains (0 if none).
    pub fn average_chain_length(&self) -> f64 {
        let non_empty: Vec<usize> = self
            .chains
            .iter()
            .filter(|c| !c.is_empty())
            .map(Vec::len)
            .collect();
        if non_empty.is_empty() {
            0.0
        } else {
            non_empty.iter().sum::<usize>() as f64 / non_empty.len() as f64
        }
    }

    /// Whether any hardware qubit is shared by two or more chains.
    pub fn has_overlaps(&self) -> bool {
        let mut seen = BTreeSet::new();
        for chain in &self.chains {
            for &q in chain {
                if !seen.insert(q) {
                    return true;
                }
            }
        }
        false
    }

    /// Map from hardware qubit to the logical vertex whose chain contains it.
    /// When chains overlap, the lowest-numbered logical vertex wins; use
    /// [`Self::has_overlaps`] to detect that situation.
    pub fn qubit_to_logical(&self, num_hardware: usize) -> Vec<Option<usize>> {
        let mut map = vec![None; num_hardware];
        for (v, chain) in self.iter() {
            for &q in chain {
                if q < num_hardware && map[q].is_none() {
                    map[q] = Some(v);
                }
            }
        }
        map
    }
}

impl fmt::Display for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "embedding: {} logical vertices, {} qubits, max chain {}",
            self.num_logical(),
            self.qubits_used(),
            self.max_chain_length()
        )?;
        for (v, chain) in self.iter() {
            writeln!(f, "  {v} -> {chain:?}")?;
        }
        Ok(())
    }
}

/// Errors produced by the embedding algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// The hardware graph is too small for the requested input.
    HardwareTooSmall {
        /// Qubits required (lower bound).
        required: usize,
        /// Qubits available.
        available: usize,
    },
    /// The heuristic failed to find an overlap-free embedding within its
    /// iteration budget.
    NoEmbeddingFound {
        /// Number of improvement passes attempted.
        passes: usize,
    },
    /// The produced embedding failed validation (used by the verifier).
    Invalid(String),
    /// The input graph is empty or otherwise degenerate.
    DegenerateInput(String),
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::HardwareTooSmall {
                required,
                available,
            } => write!(
                f,
                "hardware too small: needs at least {required} usable qubits, has {available}"
            ),
            EmbedError::NoEmbeddingFound { passes } => {
                write!(f, "no overlap-free embedding found after {passes} passes")
            }
            EmbedError::Invalid(msg) => write!(f, "invalid embedding: {msg}"),
            EmbedError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
        }
    }
}

impl std::error::Error for EmbedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chains_sorts_and_dedups() {
        let e = Embedding::from_chains(vec![vec![3, 1, 3], vec![2]]);
        assert_eq!(e.chain(0), &[1, 3]);
        assert_eq!(e.chain(1), &[2]);
        assert_eq!(e.num_logical(), 2);
    }

    #[test]
    fn usage_statistics() {
        let e = Embedding::from_chains(vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
        assert_eq!(e.qubits_used(), 6);
        assert_eq!(e.total_chain_length(), 6);
        assert_eq!(e.max_chain_length(), 3);
        assert!((e.average_chain_length() - 2.0).abs() < 1e-12);
        assert!(!e.has_overlaps());
    }

    #[test]
    fn overlap_detection() {
        let e = Embedding::from_chains(vec![vec![0, 1], vec![1, 2]]);
        assert!(e.has_overlaps());
        assert_eq!(e.qubits_used(), 3);
        assert_eq!(e.total_chain_length(), 4);
    }

    #[test]
    fn qubit_to_logical_map() {
        let e = Embedding::from_chains(vec![vec![0, 2], vec![5]]);
        let map = e.qubit_to_logical(6);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], Some(0));
        assert_eq!(map[5], Some(1));
        assert_eq!(map[1], None);
    }

    #[test]
    fn empty_chains_average_is_zero() {
        let e = Embedding::new(3);
        assert_eq!(e.average_chain_length(), 0.0);
        assert_eq!(e.max_chain_length(), 0);
        assert!(!e.has_overlaps());
    }

    #[test]
    fn set_and_clear_chain() {
        let mut e = Embedding::new(2);
        e.set_chain(0, vec![7, 3, 7]);
        assert_eq!(e.chain(0), &[3, 7]);
        e.clear_chain(0);
        assert!(e.chain(0).is_empty());
    }

    #[test]
    fn display_is_informative() {
        let e = Embedding::from_chains(vec![vec![0], vec![1, 2]]);
        let text = e.to_string();
        assert!(text.contains("2 logical vertices"));
        assert!(text.contains("max chain 2"));
    }

    #[test]
    fn error_display() {
        let err = EmbedError::HardwareTooSmall {
            required: 100,
            available: 50,
        };
        assert!(err.to_string().contains("100"));
        let err = EmbedError::NoEmbeddingFound { passes: 5 };
        assert!(err.to_string().contains("5 passes"));
    }
}
