//! Embedded-Ising parameter setting.
//!
//! After a minor embedding is found, the logical Ising parameters must be
//! spread over the physical qubits and couplers (Sec. 2.2 of the paper):
//! each logical bias is divided across its chain, each logical coupling is
//! assigned to the hardware couplers that realize the logical edge, and a
//! strong ferromagnetic *chain coupling* is added inside every chain so the
//! physical qubits of one chain "behave collectively".  The chain strength
//! is "typically chosen to be much larger than neighboring elements".
//!
//! The inverse direction — turning a hardware readout back into logical
//! spins — uses majority vote over each chain and reports chain breaks.

use crate::types::Embedding;
use chimera_graph::Graph;
use qubo_ising::{Ising, Spin};
use serde::{Deserialize, Serialize};

/// Options controlling how logical parameters are spread over the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterSetting {
    /// Ferromagnetic coupling strength applied inside every chain.  Positive
    /// values favor aligned chains under the `E = -Σ J sᵢsⱼ` convention.
    pub chain_strength: f64,
    /// If true, a logical coupling is divided evenly over every available
    /// hardware coupler between the two chains; otherwise the full value is
    /// placed on the first available coupler.
    pub spread_couplings: bool,
}

impl Default for ParameterSetting {
    fn default() -> Self {
        Self {
            chain_strength: 2.0,
            spread_couplings: true,
        }
    }
}

impl ParameterSetting {
    /// Choose a chain strength relative to the largest logical parameter
    /// (`factor` × max(|h|, |J|), with a floor of 1.0).
    pub fn auto(ising: &Ising, factor: f64) -> Self {
        let max_param = ising.max_abs_field().max(ising.max_abs_coupling()).max(1.0);
        Self {
            chain_strength: factor * max_param,
            spread_couplings: true,
        }
    }
}

/// The embedded (physical) Ising program together with bookkeeping needed to
/// interpret readouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddedIsing {
    /// The physical Ising model over hardware qubits.
    pub physical: Ising,
    /// The embedding used.
    pub embedding: Embedding,
    /// Number of floating-point operations spent setting parameters (the
    /// paper's `ParameterSetting` resource in the Stage-1 model).
    pub operations: u64,
    /// Chain strength actually applied.
    pub chain_strength: f64,
}

/// Spread a logical Ising model over the hardware according to an embedding.
///
/// The caller is responsible for supplying a *valid* embedding (see
/// [`crate::verify::verify_embedding`]); logical edges without any hardware
/// coupler are silently dropped, which mirrors what a real toolchain would do
/// if handed an invalid embedding.
pub fn embed_ising(
    logical: &Ising,
    embedding: &Embedding,
    hardware: &Graph,
    setting: ParameterSetting,
) -> EmbeddedIsing {
    let mut physical = Ising::new(hardware.vertex_count());
    let mut operations: u64 = 0;

    // Biases: h_i divided uniformly over the chain of i.
    for (v, chain) in embedding.iter() {
        if chain.is_empty() {
            continue;
        }
        let share = logical.field(v) / chain.len() as f64;
        operations += 1;
        for &q in chain {
            physical.add_field(q, share);
            operations += 1;
        }
    }

    // Logical couplings over the available hardware couplers.
    for ((u, v), juv) in logical.couplings() {
        let mut available: Vec<(usize, usize)> = Vec::new();
        for &qu in embedding.chain(u) {
            for qv in hardware.neighbors(qu) {
                if embedding.chain(v).binary_search(&qv).is_ok() {
                    available.push((qu, qv));
                }
            }
        }
        operations += available.len() as u64;
        if available.is_empty() {
            continue;
        }
        if setting.spread_couplings {
            let share = juv / available.len() as f64;
            for (qu, qv) in available {
                physical.add_coupling(qu, qv, share);
                operations += 1;
            }
        } else {
            let (qu, qv) = available[0];
            physical.add_coupling(qu, qv, juv);
            operations += 1;
        }
    }

    // Ferromagnetic chain couplings on every hardware edge internal to a chain.
    for (_, chain) in embedding.iter() {
        for (idx, &qa) in chain.iter().enumerate() {
            for &qb in &chain[idx + 1..] {
                if hardware.has_edge(qa, qb) {
                    physical.add_coupling(qa, qb, setting.chain_strength);
                    operations += 1;
                }
            }
        }
    }

    EmbeddedIsing {
        physical,
        embedding: embedding.clone(),
        operations,
        chain_strength: setting.chain_strength,
    }
}

/// Result of decoding one hardware readout into logical spins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedSample {
    /// Logical spins recovered by majority vote over each chain.
    pub spins: Vec<Spin>,
    /// Number of chains whose qubits disagreed (chain breaks).
    pub chain_breaks: usize,
}

/// Decode a physical readout into logical spins by majority vote per chain.
/// Ties break toward +1.
pub fn unembed_sample(embedding: &Embedding, physical_spins: &[Spin]) -> DecodedSample {
    let mut spins = Vec::with_capacity(embedding.num_logical());
    let mut chain_breaks = 0;
    for (_, chain) in embedding.iter() {
        if chain.is_empty() {
            spins.push(1);
            continue;
        }
        let mut up = 0usize;
        let mut down = 0usize;
        for &q in chain {
            match physical_spins.get(q) {
                Some(&s) if s > 0 => up += 1,
                Some(_) => down += 1,
                None => {}
            }
        }
        if up > 0 && down > 0 {
            chain_breaks += 1;
        }
        spins.push(if up >= down { 1 } else { -1 });
    }
    DecodedSample {
        spins,
        chain_breaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::clique_embedding;
    use crate::cmr::{find_embedding, CmrConfig};
    use chimera_graph::{generators, Chimera};
    use qubo_ising::solve_ising_exact;

    fn logical_triangle() -> Ising {
        let mut m = Ising::new(3);
        m.set_field(0, 0.5);
        m.set_field(1, -0.25);
        m.set_coupling(0, 1, -1.0);
        m.set_coupling(1, 2, 0.75);
        m.set_coupling(0, 2, 0.5);
        m
    }

    #[test]
    fn biases_are_split_across_chains() {
        let logical = logical_triangle();
        let chimera = Chimera::new(2, 2, 4);
        let out = clique_embedding(3, &chimera).unwrap();
        let embedded = embed_ising(
            &logical,
            &out.embedding,
            chimera.graph(),
            ParameterSetting::default(),
        );
        // The sum of physical biases over a chain equals the logical bias.
        for (v, chain) in out.embedding.iter() {
            let total: f64 = chain.iter().map(|&q| embedded.physical.field(q)).sum();
            assert!((total - logical.field(v)).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn logical_couplings_are_preserved_in_total() {
        let logical = logical_triangle();
        let chimera = Chimera::new(2, 2, 4);
        let out = clique_embedding(3, &chimera).unwrap();
        let embedded = embed_ising(
            &logical,
            &out.embedding,
            chimera.graph(),
            ParameterSetting::default(),
        );
        // Sum of inter-chain physical couplings equals the logical coupling.
        for ((u, v), juv) in logical.couplings() {
            let mut total = 0.0;
            for &qu in out.embedding.chain(u) {
                for &qv in out.embedding.chain(v) {
                    total += embedded.physical.coupling(qu, qv);
                }
            }
            assert!((total - juv).abs() < 1e-9, "edge ({u}, {v})");
        }
    }

    #[test]
    fn chain_couplings_use_the_requested_strength() {
        let logical = Ising::new(4);
        let chimera = Chimera::new(2, 2, 4);
        let out = clique_embedding(4, &chimera).unwrap();
        let setting = ParameterSetting {
            chain_strength: 3.5,
            spread_couplings: true,
        };
        let embedded = embed_ising(&logical, &out.embedding, chimera.graph(), setting);
        // With no logical parameters, every nonzero physical coupling is a
        // chain coupling of the requested strength.
        let mut found = 0;
        for (_, j) in embedded.physical.couplings() {
            assert!((j - 3.5).abs() < 1e-12);
            found += 1;
        }
        assert!(
            found > 0,
            "chains of length > 1 must produce chain couplings"
        );
        assert_eq!(embedded.chain_strength, 3.5);
    }

    #[test]
    fn auto_chain_strength_scales_with_parameters() {
        let mut logical = Ising::new(2);
        logical.set_coupling(0, 1, 4.0);
        let setting = ParameterSetting::auto(&logical, 1.5);
        assert!((setting.chain_strength - 6.0).abs() < 1e-12);
        // Floor of 1.0 for an all-zero model.
        let weak = ParameterSetting::auto(&Ising::new(2), 2.0);
        assert!((weak.chain_strength - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ground_state_is_preserved_through_embedding() {
        // Small enough to solve both the logical and the physical model
        // exactly: the logical ground state must be recoverable from the
        // physical ground state by majority vote.
        let logical = logical_triangle();
        let hardware = Chimera::new(1, 1, 4).into_graph();
        let cmr = find_embedding(
            &logical.interaction_graph(),
            &hardware,
            &CmrConfig::with_seed(5),
        )
        .unwrap();
        let embedded = embed_ising(
            &logical,
            &cmr.embedding,
            &hardware,
            ParameterSetting::auto(&logical, 2.0),
        );
        let (_, physical_ground, _) = solve_ising_exact(&embedded.physical);
        let decoded = unembed_sample(&cmr.embedding, &physical_ground);
        assert_eq!(decoded.chain_breaks, 0, "strong chains should not break");
        let (logical_energy, logical_ground, degeneracy) = solve_ising_exact(&logical);
        let decoded_energy = logical.energy(&decoded.spins);
        assert!(
            (decoded_energy - logical_energy).abs() < 1e-9,
            "decoded {decoded_energy} vs optimal {logical_energy} (degeneracy {degeneracy}, ground {logical_ground:?})"
        );
    }

    #[test]
    fn unembed_majority_vote_and_chain_breaks() {
        let embedding = Embedding::from_chains(vec![vec![0, 1, 2], vec![3, 4]]);
        // Chain 0: two up, one down -> +1, broken.  Chain 1: both down -> -1.
        let decoded = unembed_sample(&embedding, &[1, 1, -1, -1, -1]);
        assert_eq!(decoded.spins, vec![1, -1]);
        assert_eq!(decoded.chain_breaks, 1);
    }

    #[test]
    fn unembed_handles_short_readout_and_empty_chain() {
        let embedding = Embedding::from_chains(vec![vec![0], vec![]]);
        let decoded = unembed_sample(&embedding, &[-1]);
        assert_eq!(decoded.spins, vec![-1, 1]);
        assert_eq!(decoded.chain_breaks, 0);
    }

    #[test]
    fn operation_count_grows_with_chain_length() {
        let logical = Ising::random_on_graph(&generators::complete(8), 3);
        let chimera = Chimera::new(4, 4, 4);
        let small = embed_ising(
            &logical,
            &clique_embedding(8, &Chimera::new(2, 2, 4))
                .unwrap()
                .embedding,
            Chimera::new(2, 2, 4).graph(),
            ParameterSetting::default(),
        );
        let large = embed_ising(
            &logical,
            &clique_embedding(8, &chimera).unwrap().embedding,
            chimera.graph(),
            ParameterSetting::default(),
        );
        // Same logical problem, longer chains on the larger lattice -> more
        // parameter-setting work.
        assert!(large.operations >= small.operations);
        assert!(small.operations > 0);
    }
}
