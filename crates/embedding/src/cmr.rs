//! The Cai–Macready–Roy (CMR) randomized minor-embedding heuristic.
//!
//! This is the algorithm the paper selects for its Stage-1 programming model
//! ("a non-deterministic technique recently proposed by Cai, Macready, and
//! Roy ... employs Dijkstra's algorithm to construct the minimum path between
//! randomly distributed subtrees", Sec. 2.2).  The implementation follows the
//! published heuristic:
//!
//! 1. Logical vertices are processed in random order.  Each vertex is given a
//!    *vertex model* (chain) grown from a root qubit chosen to minimize the
//!    total weighted shortest-path distance to the chains of its
//!    already-embedded neighbors; the connecting paths are absorbed into the
//!    chain.
//! 2. Qubits already used by other chains carry an exponentially growing
//!    weight, discouraging (but initially permitting) overlap.
//! 3. Improvement passes re-embed every vertex with the rest held fixed until
//!    the embedding is overlap-free and the total chain length stops
//!    shrinking, or the pass budget is exhausted.
//!
//! The worst-case operation count assumed by the paper's Stage-1 ASPEN model
//! is `(E_G + N_G log N_G) · 2 E_H · N_H · N_G`; the per-call statistics
//! returned in [`CmrStats`] expose the measured analogue (Dijkstra calls and
//! edge relaxations) so the model and the implementation can be compared
//! directly, which is exactly the comparison of Fig. 9(a).

use crate::dijkstra::{multi_source_dijkstra, ShortestPaths};
use crate::types::{EmbedError, Embedding};
use chimera_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the CMR heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmrConfig {
    /// Maximum number of improvement passes after the construction pass.
    pub max_passes: usize,
    /// Number of independent randomized restarts; the best (fewest qubits)
    /// successful try wins.
    pub tries: usize,
    /// Base RNG seed; try `i` uses `seed + i`.
    pub seed: u64,
    /// Run restarts in parallel with Rayon.
    pub parallel_tries: bool,
    /// Base of the exponential penalty applied to qubits already used by
    /// other chains.
    pub overlap_penalty_base: f64,
}

impl Default for CmrConfig {
    fn default() -> Self {
        Self {
            max_passes: 10,
            tries: 4,
            seed: 0,
            parallel_tries: false,
            overlap_penalty_base: 64.0,
        }
    }
}

impl CmrConfig {
    /// Convenience constructor fixing only the seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Work counters recorded while running the heuristic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmrStats {
    /// Number of (multi-source) Dijkstra invocations.
    pub dijkstra_calls: u64,
    /// Total edge relaxations across all Dijkstra invocations.
    pub edge_relaxations: u64,
    /// Improvement passes executed in the successful try (or the last try).
    pub passes_used: usize,
    /// Number of restarts attempted.
    pub tries_used: usize,
}

impl CmrStats {
    fn absorb(&mut self, other: &CmrStats) {
        self.dijkstra_calls += other.dijkstra_calls;
        self.edge_relaxations += other.edge_relaxations;
        self.passes_used = self.passes_used.max(other.passes_used);
        self.tries_used += other.tries_used;
    }
}

/// A successful embedding together with its work counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmrOutcome {
    /// The overlap-free embedding.
    pub embedding: Embedding,
    /// Work performed (aggregated over all tries).
    pub stats: CmrStats,
}

/// Find a minor embedding of `input` into `hardware` using the CMR heuristic.
///
/// Returns an error if the input is larger than the hardware, if the input
/// has isolated structure the hardware cannot host, or if no overlap-free
/// embedding is found within the configured budget.
pub fn find_embedding(
    input: &Graph,
    hardware: &Graph,
    config: &CmrConfig,
) -> Result<CmrOutcome, EmbedError> {
    let n = input.vertex_count();
    if n == 0 {
        return Err(EmbedError::DegenerateInput(
            "input graph has no vertices".into(),
        ));
    }
    let usable: Vec<usize> = if hardware.edge_count() == 0 {
        hardware.vertices().collect()
    } else {
        hardware.non_isolated_vertices().collect()
    };
    if usable.len() < n {
        return Err(EmbedError::HardwareTooSmall {
            required: n,
            available: usable.len(),
        });
    }

    let tries = config.tries.max(1);
    let run_try = |t: usize| -> (Option<Embedding>, CmrStats) {
        let mut stats = CmrStats {
            tries_used: 1,
            ..CmrStats::default()
        };
        let embedding = single_try(
            input,
            hardware,
            &usable,
            config,
            config.seed.wrapping_add(t as u64),
            &mut stats,
        );
        (embedding, stats)
    };

    let results: Vec<(Option<Embedding>, CmrStats)> = if config.parallel_tries {
        (0..tries).into_par_iter().map(run_try).collect()
    } else {
        (0..tries).map(run_try).collect()
    };

    let mut total_stats = CmrStats::default();
    let mut best: Option<Embedding> = None;
    for (embedding, stats) in &results {
        total_stats.absorb(stats);
        if let Some(e) = embedding {
            let better = match &best {
                None => true,
                Some(b) => e.qubits_used() < b.qubits_used(),
            };
            if better {
                best = Some(e.clone());
            }
        }
    }
    match best {
        Some(embedding) => Ok(CmrOutcome {
            embedding,
            stats: total_stats,
        }),
        None => Err(EmbedError::NoEmbeddingFound {
            passes: config.max_passes,
        }),
    }
}

/// One randomized construction + improvement attempt.
fn single_try(
    input: &Graph,
    hardware: &Graph,
    usable: &[usize],
    config: &CmrConfig,
    seed: u64,
    stats: &mut CmrStats,
) -> Option<Embedding> {
    let n = input.vertex_count();
    let nh = hardware.vertex_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let usable_set: Vec<bool> = {
        let mut mask = vec![false; nh];
        for &q in usable {
            mask[q] = true;
        }
        mask
    };

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut usage: Vec<u32> = vec![0; nh];

    // Construction pass.
    for &x in &order {
        embed_vertex(
            x,
            input,
            hardware,
            &usable_set,
            config,
            &mut rng,
            &mut chains,
            &mut usage,
            stats,
        );
    }

    // Improvement passes: re-embed every vertex with the others held fixed,
    // in a freshly shuffled order each pass, until the embedding is
    // overlap-free and stops shrinking.  Because later passes can temporarily
    // re-introduce overlaps, the best overlap-free snapshot seen at the end
    // of any pass is kept.
    let mut previous_total = total_length(&chains);
    let mut passes = 0;
    let mut best_valid: Option<Vec<Vec<usize>>> = snapshot_if_valid(&chains, &usage);
    for _ in 0..config.max_passes {
        passes += 1;
        order.shuffle(&mut rng);
        for &x in &order {
            remove_chain(&chains[x], &mut usage);
            chains[x].clear();
            embed_vertex(
                x,
                input,
                hardware,
                &usable_set,
                config,
                &mut rng,
                &mut chains,
                &mut usage,
                stats,
            );
        }
        let overlap_free = usage.iter().all(|&u| u <= 1);
        let total = total_length(&chains);
        if overlap_free {
            let better = match &best_valid {
                None => true,
                Some(best) => total < best.iter().map(Vec::len).sum::<usize>(),
            };
            if better {
                best_valid = snapshot_if_valid(&chains, &usage);
            }
            if total >= previous_total {
                break;
            }
        }
        previous_total = total;
    }
    stats.passes_used = stats.passes_used.max(passes);

    best_valid.map(Embedding::from_chains)
}

/// Return a copy of the chains when they form a complete, overlap-free
/// assignment.
fn snapshot_if_valid(chains: &[Vec<usize>], usage: &[u32]) -> Option<Vec<Vec<usize>>> {
    let overlap_free = usage.iter().all(|&u| u <= 1);
    let all_assigned = chains.iter().all(|c| !c.is_empty());
    if overlap_free && all_assigned {
        Some(chains.to_vec())
    } else {
        None
    }
}

fn total_length(chains: &[Vec<usize>]) -> usize {
    chains.iter().map(Vec::len).sum()
}

fn remove_chain(chain: &[usize], usage: &mut [u32]) {
    for &q in chain {
        usage[q] = usage[q].saturating_sub(1);
    }
}

fn add_chain(chain: &[usize], usage: &mut [u32]) {
    for &q in chain {
        usage[q] += 1;
    }
}

/// Grow the vertex model for logical vertex `x` given the current chains of
/// all other vertices.
#[allow(clippy::too_many_arguments)]
fn embed_vertex(
    x: usize,
    input: &Graph,
    hardware: &Graph,
    usable: &[bool],
    config: &CmrConfig,
    rng: &mut ChaCha8Rng,
    chains: &mut [Vec<usize>],
    usage: &mut [u32],
    stats: &mut CmrStats,
) {
    let nh = hardware.vertex_count();
    let embedded_neighbors: Vec<usize> = input
        .neighbors(x)
        .filter(|&y| !chains[y].is_empty())
        .collect();

    if embedded_neighbors.is_empty() {
        // No constraints yet: take the least-used usable qubit, breaking ties
        // randomly.
        let min_usage = (0..nh)
            .filter(|&q| usable[q])
            .map(|q| usage[q])
            .min()
            .unwrap_or(0);
        let candidates: Vec<usize> = (0..nh)
            .filter(|&q| usable[q] && usage[q] == min_usage)
            .collect();
        let choice = candidates[rng.gen_range(0..candidates.len())];
        chains[x] = vec![choice];
        add_chain(&chains[x], usage);
        return;
    }

    // One weighted Dijkstra per embedded neighbor, rooted at that neighbor's
    // chain.
    let weight_of = |q: usize, usage: &[u32]| -> f64 {
        if !usable[q] {
            f64::INFINITY
        } else {
            config.overlap_penalty_base.powi(usage[q] as i32)
        }
    };
    let searches: Vec<(usize, ShortestPaths)> = embedded_neighbors
        .iter()
        .map(|&y| {
            let sp = multi_source_dijkstra(
                nh,
                &chains[y],
                |v| hardware.neighbors(v).collect::<Vec<_>>(),
                |v| weight_of(v, usage),
            );
            stats.dijkstra_calls += 1;
            stats.edge_relaxations += sp.relaxations;
            (y, sp)
        })
        .collect();

    // Root selection: cheapest total distance to all neighbor chains.
    let mut best_root = None;
    let mut best_cost = f64::INFINITY;
    for (q, &q_usable) in usable.iter().enumerate().take(nh) {
        if !q_usable {
            continue;
        }
        let mut total = weight_of(q, usage);
        let mut reachable = true;
        for (_, sp) in &searches {
            if sp.cost[q].is_finite() {
                total += sp.cost[q];
            } else {
                reachable = false;
                break;
            }
        }
        if reachable && total < best_cost {
            best_cost = total;
            best_root = Some(q);
        }
    }
    let Some(root) = best_root else {
        // Hardware is disconnected relative to the neighbor chains; fall back
        // to an arbitrary usable qubit so the try can fail gracefully later.
        let fallback = (0..nh).find(|&q| usable[q]).unwrap_or(0);
        chains[x] = vec![fallback];
        add_chain(&chains[x], usage);
        return;
    };

    // Absorb the connecting paths (excluding the neighbor-chain endpoints)
    // into x's chain.
    let mut chain = vec![root];
    for (y, sp) in &searches {
        if let Some(path) = sp.path_to(root) {
            for &q in &path {
                if !chains[*y].contains(&q) && !chain.contains(&q) {
                    chain.push(q);
                }
            }
        }
    }
    chain.sort_unstable();
    chain.dedup();
    // Trim qubits that are not needed for connectivity to any neighbor chain
    // or for keeping the chain itself connected; unions of shortest paths
    // routinely contain such redundant branches.
    trim_chain(&mut chain, hardware, &embedded_neighbors, chains);
    chains[x] = chain;
    add_chain(&chains[x], usage);
}

/// Remove redundant qubits from a freshly built chain.
///
/// A qubit can be dropped when (a) the remaining chain is still connected in
/// the hardware graph and (b) every embedded logical neighbor still has at
/// least one hardware coupler into the remaining chain.  Leaves are examined
/// repeatedly until no further removal is possible.
fn trim_chain(
    chain: &mut Vec<usize>,
    hardware: &Graph,
    embedded_neighbors: &[usize],
    chains: &[Vec<usize>],
) {
    if chain.len() <= 1 {
        return;
    }
    let touches_chain = |q: usize, other: &[usize]| -> bool {
        hardware
            .neighbors(q)
            .any(|n| other.binary_search(&n).is_ok())
    };
    loop {
        let mut removed = false;
        let mut idx = 0;
        while idx < chain.len() {
            if chain.len() == 1 {
                break;
            }
            let q = chain[idx];
            let mut candidate: Vec<usize> = chain.iter().copied().filter(|&c| c != q).collect();
            candidate.sort_unstable();
            let still_connected = chimera_graph::metrics::is_connected_subset(hardware, &candidate);
            let still_covers = embedded_neighbors
                .iter()
                .all(|&y| candidate.iter().any(|&c| touches_chain(c, &chains[y])));
            if still_connected && still_covers {
                chain.remove(idx);
                removed = true;
            } else {
                idx += 1;
            }
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_embedding;
    use chimera_graph::{generators, Chimera, FaultModel};

    fn embed_ok(input: &Graph, hardware: &Graph, seed: u64) -> CmrOutcome {
        let config = CmrConfig {
            seed,
            ..CmrConfig::default()
        };
        let out = find_embedding(input, hardware, &config).expect("embedding should exist");
        verify_embedding(input, hardware, &out.embedding).expect("embedding should verify");
        out
    }

    #[test]
    fn embeds_single_vertex() {
        let input = Graph::new(1);
        let hw = Chimera::new(1, 1, 4).into_graph();
        let out = embed_ok(&input, &hw, 1);
        assert_eq!(out.embedding.qubits_used(), 1);
    }

    #[test]
    fn embeds_single_edge() {
        let input = generators::path(2);
        let hw = Chimera::new(1, 1, 4).into_graph();
        let out = embed_ok(&input, &hw, 2);
        assert!(out.embedding.qubits_used() >= 2);
        assert!(out.stats.dijkstra_calls >= 1);
    }

    #[test]
    fn embeds_triangle_into_single_cell() {
        // K3 does not fit natively in a bipartite K4,4 cell, so at least one
        // chain must have length 2.
        let input = generators::complete(3);
        let hw = Chimera::new(1, 1, 4).into_graph();
        let out = embed_ok(&input, &hw, 3);
        assert!(out.embedding.max_chain_length() >= 2);
    }

    #[test]
    fn embeds_k6_into_2x2_chimera() {
        let input = generators::complete(6);
        let hw = Chimera::new(2, 2, 4).into_graph();
        let out = embed_ok(&input, &hw, 4);
        assert!(out.embedding.qubits_used() <= hw.vertex_count());
    }

    #[test]
    fn embeds_k10_into_dw2x_subregion() {
        // Mid-size cliques are the hard case for the CMR heuristic (the
        // paper's own measured line stops near K12); give it a healthy
        // restart budget so the test exercises success, not luck.
        let input = generators::complete(10);
        let hw = Chimera::new(4, 4, 4).into_graph();
        let config = CmrConfig {
            seed: 5,
            tries: 32,
            ..CmrConfig::default()
        };
        let out = find_embedding(&input, &hw, &config).expect("embedding should exist");
        verify_embedding(&input, &hw, &out.embedding).expect("embedding should verify");
    }

    #[test]
    fn embeds_cycle_and_grid_inputs() {
        let hw = Chimera::new(3, 3, 4).into_graph();
        embed_ok(&generators::cycle(12), &hw, 6);
        embed_ok(&generators::grid(3, 4), &hw, 7);
    }

    #[test]
    fn embeds_random_graph_on_faulted_hardware() {
        let chimera = Chimera::new(4, 4, 4);
        let faults = FaultModel::exact_dead_qubits(chimera.graph(), 6, 99);
        let hw = faults.apply(chimera.graph());
        let input = generators::gnp(10, 0.3, 17);
        embed_ok(&input, &hw, 8);
    }

    #[test]
    fn rejects_oversized_input() {
        let input = generators::complete(20);
        let hw = Chimera::new(1, 1, 4).into_graph();
        let err = find_embedding(&input, &hw, &CmrConfig::default()).unwrap_err();
        assert!(matches!(err, EmbedError::HardwareTooSmall { .. }));
    }

    #[test]
    fn rejects_empty_input() {
        let hw = Chimera::new(1, 1, 4).into_graph();
        let err = find_embedding(&Graph::new(0), &hw, &CmrConfig::default()).unwrap_err();
        assert!(matches!(err, EmbedError::DegenerateInput(_)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let input = generators::gnp(8, 0.4, 3);
        let hw = Chimera::new(3, 3, 4).into_graph();
        let config = CmrConfig::with_seed(42);
        let a = find_embedding(&input, &hw, &config).unwrap();
        let b = find_embedding(&input, &hw, &config).unwrap();
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn parallel_tries_match_serial_success() {
        let input = generators::complete(5);
        let hw = Chimera::new(2, 2, 4).into_graph();
        let serial = find_embedding(
            &input,
            &hw,
            &CmrConfig {
                seed: 9,
                parallel_tries: false,
                ..CmrConfig::default()
            },
        )
        .unwrap();
        let parallel = find_embedding(
            &input,
            &hw,
            &CmrConfig {
                seed: 9,
                parallel_tries: true,
                ..CmrConfig::default()
            },
        )
        .unwrap();
        // Each try is seeded identically, so the chosen best embedding agrees.
        assert_eq!(serial.embedding, parallel.embedding);
    }

    #[test]
    fn work_counters_grow_with_problem_size() {
        // K4 and K6 both embed reliably from any seed; K6 must cost more.
        let hw = Chimera::new(4, 4, 4).into_graph();
        let small = embed_ok(&generators::complete(4), &hw, 10).stats;
        let large = embed_ok(&generators::complete(6), &hw, 10).stats;
        assert!(large.dijkstra_calls > small.dijkstra_calls);
        assert!(large.edge_relaxations > small.edge_relaxations);
    }

    #[test]
    fn disconnected_input_embeds_too() {
        let mut input = generators::path(3);
        input.add_vertex(); // isolated logical vertex
        let hw = Chimera::new(2, 2, 4).into_graph();
        embed_ok(&input, &hw, 12);
    }
}
