//! QUBO ⇄ Ising conversion.
//!
//! The paper (Eqs. 4–5) maps a QUBO matrix `Q` to logical Ising parameters by
//! a linear change of variables between bits `b ∈ {0,1}` and spins
//! `s ∈ {-1,+1}`.  This module provides an **energy-preserving** conversion
//! (the QUBO objective equals the Ising energy plus a constant offset, so
//! minimizers coincide) using the substitution `bᵢ = (1 + sᵢ)/2`, together
//! with helpers matching the paper's published coefficient formulas for
//! structural comparison.
//!
//! Deriving with `Q` symmetric:
//!
//! ```text
//! bᵀQb = Σᵢ Qᵢᵢ bᵢ + 2 Σ_{i<j} Qᵢⱼ bᵢ bⱼ
//!      = offset - Σᵢ hᵢ sᵢ - Σ_{i<j} Jᵢⱼ sᵢ sⱼ
//! hᵢ     = -( Qᵢᵢ/2 + ½ Σ_{j≠i} Qᵢⱼ )
//! Jᵢⱼ    = -Qᵢⱼ/2
//! offset =  ½ Σᵢ Qᵢᵢ + ½ Σ_{i<j} Qᵢⱼ
//! ```
//!
//! The paper's Eq. (4)–(5) (`hᵢ = Qᵢᵢ/2 + ¼ΣⱼQᵢⱼ`, `Jᵢⱼ = Qᵢⱼ/4`) quote the
//! same transformation with the opposite spin-sign convention and with the
//! row sum running over the full symmetric matrix (each off-diagonal pair
//! counted twice); [`paper_ising_parameters`] reproduces those published
//! coefficients verbatim so the resource counts of the Stage-1 model can be
//! cross-checked.

use crate::ising::{Ising, Spin};
use crate::qubo::Qubo;
use serde::{Deserialize, Serialize};

/// Result of converting a QUBO into an Ising model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsingConversion {
    /// The logical Ising model.
    pub ising: Ising,
    /// Constant offset such that `qubo.energy(b) = ising.energy(s) + offset`
    /// under the bit/spin correspondence of [`bits_to_spins`].
    pub offset: f64,
    /// Number of floating-point additions/multiplications performed, for the
    /// Stage-1 resource accounting (`ParameterSetting` in the paper's model).
    pub operations: u64,
}

/// Convert bits to spins with `s = 2b - 1` (`false → -1`, `true → +1`).
pub fn bits_to_spins(bits: &[bool]) -> Vec<Spin> {
    bits.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

/// Convert spins to bits with `b = (s + 1)/2`.
pub fn spins_to_bits(spins: &[Spin]) -> Vec<bool> {
    spins.iter().map(|&s| s > 0).collect()
}

/// Convert a QUBO instance to an energy-equivalent logical Ising model.
pub fn qubo_to_ising(qubo: &Qubo) -> IsingConversion {
    let n = qubo.num_variables();
    let mut ising = Ising::new(n);
    let mut offset = 0.0;
    let mut operations: u64 = 0;
    for i in 0..n {
        let qii = qubo.get(i, i);
        let mut row_sum = 0.0;
        for j in 0..n {
            if j != i {
                row_sum += qubo.get(i, j);
                operations += 1;
            }
        }
        ising.set_field(i, -(qii / 2.0 + row_sum / 2.0));
        operations += 3;
        offset += qii / 2.0;
        operations += 1;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let qij = qubo.get(i, j);
            if qij != 0.0 {
                ising.set_coupling(i, j, -qij / 2.0);
                offset += qij / 2.0;
                operations += 2;
            }
        }
    }
    IsingConversion {
        ising,
        offset,
        operations,
    }
}

/// Convert an Ising model back to an energy-equivalent QUBO (inverse of
/// [`qubo_to_ising`] up to the constant offset).
pub fn ising_to_qubo(ising: &Ising) -> (Qubo, f64) {
    // From b = (1+s)/2, s = 2b - 1:
    //   -h s        = -h (2b - 1)        = -2h b + h
    //   -J s_i s_j  = -J (2bᵢ-1)(2bⱼ-1)  = -4J bᵢbⱼ + 2J bᵢ + 2J bⱼ - J
    let n = ising.num_spins();
    let mut qubo = Qubo::new(n);
    let mut offset = 0.0;
    for i in 0..n {
        let h = ising.field(i);
        qubo.add(i, i, -2.0 * h);
        offset += h;
    }
    for ((i, j), jij) in ising.couplings() {
        // Off-diagonal entries contribute 2*Q_ij to the quadratic form, so
        // set Q_ij = -2J to realize the -4J bᵢbⱼ term.
        qubo.add(i, j, -2.0 * jij);
        qubo.add(i, i, 2.0 * jij);
        qubo.add(j, j, 2.0 * jij);
        offset -= jij;
    }
    (qubo, offset)
}

/// Bias and coupling vectors in the paper's notation: `(h, J)` with `J`
/// keyed by the upper-triangle index pair.
pub type PaperIsingParameters = (Vec<f64>, Vec<((usize, usize), f64)>);

/// The logical Ising parameters exactly as printed in the paper's Eqs. 4–5:
/// `hᵢ = Qᵢᵢ/2 + ¼ Σⱼ Qᵢⱼ` and `Jᵢⱼ = Qᵢⱼ/4` for `i < j`.
///
/// Returned as `(h, J)` vectors; used to validate the operation-count model
/// of Stage 1 rather than for energy-preserving execution.
pub fn paper_ising_parameters(qubo: &Qubo) -> PaperIsingParameters {
    let n = qubo.num_variables();
    let mut h = vec![0.0; n];
    for (i, hi) in h.iter_mut().enumerate() {
        let mut row = 0.0;
        for j in 0..n {
            row += qubo.get(i, j);
        }
        *hi = qubo.get(i, i) / 2.0 + row / 4.0;
    }
    let mut j_terms = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let qij = qubo.get(i, j);
            if qij != 0.0 {
                j_terms.push(((i, j), qij / 4.0));
            }
        }
    }
    (h, j_terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_assignments(n: usize) -> Vec<Vec<bool>> {
        (0..(1usize << n))
            .map(|mask| (0..n).map(|i| (mask >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn bit_spin_round_trip() {
        let bits = vec![true, false, true, true];
        let spins = bits_to_spins(&bits);
        assert_eq!(spins, vec![1, -1, 1, 1]);
        assert_eq!(spins_to_bits(&spins), bits);
    }

    #[test]
    fn conversion_preserves_energy_small_instance() {
        let qubo = Qubo::from_matrix(&[
            vec![1.0, -2.0, 0.5],
            vec![-2.0, 0.0, 1.0],
            vec![0.5, 1.0, -1.0],
        ]);
        let conv = qubo_to_ising(&qubo);
        for bits in all_assignments(3) {
            let spins = bits_to_spins(&bits);
            let qe = qubo.energy(&bits);
            let ie = conv.ising.energy(&spins) + conv.offset;
            assert!((qe - ie).abs() < 1e-9, "bits {bits:?}: {qe} vs {ie}");
        }
    }

    #[test]
    fn conversion_preserves_argmin() {
        let qubo = Qubo::random(8, 0.6, 17);
        let conv = qubo_to_ising(&qubo);
        let mut best_qubo = (f64::INFINITY, Vec::new());
        let mut best_ising = (f64::INFINITY, Vec::new());
        for bits in all_assignments(8) {
            let spins = bits_to_spins(&bits);
            let qe = qubo.energy(&bits);
            let ie = conv.ising.energy(&spins);
            if qe < best_qubo.0 {
                best_qubo = (qe, bits.clone());
            }
            if ie < best_ising.0 {
                best_ising = (ie, bits);
            }
        }
        assert_eq!(best_qubo.1, best_ising.1);
    }

    #[test]
    fn round_trip_through_ising_preserves_energy() {
        let qubo = Qubo::random(6, 0.7, 23);
        let conv = qubo_to_ising(&qubo);
        let (back, back_offset) = ising_to_qubo(&conv.ising);
        for bits in all_assignments(6) {
            let original = qubo.energy(&bits);
            let round_trip = back.energy(&bits) + back_offset + conv.offset;
            assert!(
                (original - round_trip).abs() < 1e-9,
                "bits {bits:?}: {original} vs {round_trip}"
            );
        }
    }

    #[test]
    fn operations_scale_quadratically() {
        // The paper models parameter setting as O(n^2)-O(n^3) additions; our
        // counter should grow at least quadratically with n for dense inputs.
        let small = qubo_to_ising(&Qubo::random(10, 1.0, 1)).operations;
        let large = qubo_to_ising(&Qubo::random(20, 1.0, 1)).operations;
        assert!(large >= 3 * small, "ops {small} -> {large}");
    }

    #[test]
    fn interaction_structure_is_preserved() {
        let qubo = Qubo::random(12, 0.3, 9);
        let conv = qubo_to_ising(&qubo);
        assert_eq!(conv.ising.interaction_graph(), qubo.interaction_graph());
    }

    #[test]
    fn paper_parameters_match_formulas() {
        let qubo = Qubo::from_matrix(&[vec![2.0, 4.0], vec![4.0, -2.0]]);
        let (h, j) = paper_ising_parameters(&qubo);
        // h0 = Q00/2 + (Q00 + Q01)/4 = 1 + 1.5 = 2.5
        assert!((h[0] - 2.5).abs() < 1e-12);
        // h1 = Q11/2 + (Q10 + Q11)/4 = -1 + 0.5 = -0.5
        assert!((h[1] + 0.5).abs() < 1e-12);
        assert_eq!(j.len(), 1);
        assert_eq!(j[0].0, (0, 1));
        assert!((j[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_qubo_converts_to_zero_ising() {
        let conv = qubo_to_ising(&Qubo::new(5));
        assert_eq!(conv.ising.num_couplings(), 0);
        assert!(conv.ising.fields().all(|h| h == 0.0));
        assert_eq!(conv.offset, 0.0);
    }
}
