//! Ising spin models.
//!
//! The D-Wave QPU natively minimizes Ising Hamiltonians of the paper's
//! Eq. (2): `H = -Σᵢ hᵢ sᵢ - Σ_{i<j} J_{ij} sᵢ sⱼ` over spins `sᵢ ∈ {-1,+1}`,
//! with per-qubit biases `hᵢ` and pairwise couplings `J_{ij}` constrained to
//! the hardware connectivity graph.

use chimera_graph::Graph;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A spin value, `-1` or `+1`, stored as `i8` for compactness.
pub type Spin = i8;

/// An Ising model: linear biases plus sparse symmetric couplings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Ising {
    /// Per-spin biases `hᵢ`.
    h: Vec<f64>,
    /// Couplings keyed by `(min(i,j), max(i,j))`; zero entries are removed.
    j: BTreeMap<(usize, usize), f64>,
}

impl Ising {
    /// Create an Ising model over `n` spins with zero biases and couplings.
    pub fn new(n: usize) -> Self {
        Self {
            h: vec![0.0; n],
            j: BTreeMap::new(),
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Number of nonzero couplings.
    pub fn num_couplings(&self) -> usize {
        self.j.len()
    }

    /// Bias on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// Set the bias on spin `i`.
    pub fn set_field(&mut self, i: usize, value: f64) {
        self.h[i] = value;
    }

    /// Add to the bias on spin `i`.
    pub fn add_field(&mut self, i: usize, delta: f64) {
        self.h[i] += delta;
    }

    /// Coupling between spins `i` and `j` (0 if absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        let key = canonical(i, j);
        self.j.get(&key).copied().unwrap_or(0.0)
    }

    /// Set the coupling between two distinct spins.  Setting 0 removes the
    /// coupling.
    ///
    /// # Panics
    /// Panics on a self-coupling or out-of-range index.
    pub fn set_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "self-couplings are not allowed");
        assert!(
            i < self.num_spins() && j < self.num_spins(),
            "coupling ({i}, {j}) out of range"
        );
        let key = canonical(i, j);
        if value == 0.0 {
            self.j.remove(&key);
        } else {
            self.j.insert(key, value);
        }
    }

    /// Add to the coupling between two spins.
    pub fn add_coupling(&mut self, i: usize, j: usize, delta: f64) {
        let current = self.coupling(i, j);
        self.set_coupling(i, j, current + delta);
    }

    /// Iterate over couplings as `((i, j), J)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.j.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate over all biases.
    pub fn fields(&self) -> impl Iterator<Item = f64> + '_ {
        self.h.iter().copied()
    }

    /// Evaluate the Hamiltonian `H(s) = -Σ hᵢ sᵢ - Σ J_{ij} sᵢ sⱼ`.
    ///
    /// # Panics
    /// Panics if `spins.len()` differs from the number of spins or contains
    /// values other than ±1.
    pub fn energy(&self, spins: &[Spin]) -> f64 {
        assert_eq!(spins.len(), self.num_spins(), "spin vector length mismatch");
        debug_assert!(spins.iter().all(|&s| s == 1 || s == -1));
        let mut e = 0.0;
        for (i, &hi) in self.h.iter().enumerate() {
            e -= hi * spins[i] as f64;
        }
        for (&(i, j), &jij) in &self.j {
            e -= jij * spins[i] as f64 * spins[j] as f64;
        }
        e
    }

    /// The energy change from flipping spin `i` in configuration `spins`.
    ///
    /// This is the quantity the annealer evaluates in its inner loop; it is
    /// computed in O(degree) without re-evaluating the full Hamiltonian.
    pub fn flip_delta(&self, spins: &[Spin], i: usize) -> f64 {
        let si = spins[i] as f64;
        let mut local = self.h[i];
        for (&(a, b), &jab) in self.j.range((i, 0)..(i + 1, 0)) {
            debug_assert_eq!(a, i);
            local += jab * spins[b] as f64;
        }
        // Couplings stored with i as the larger index.
        for (&(a, b), &jab) in &self.j {
            if b == i {
                local += jab * spins[a] as f64;
            }
        }
        // E = -s_i * local + rest; flipping s_i changes E by 2 * s_i * local.
        2.0 * si * local
    }

    /// The interaction graph induced by nonzero couplings.
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_spins());
        for &(i, j) in self.j.keys() {
            g.add_edge(i, j);
        }
        g
    }

    /// Largest absolute bias (0 if there are no spins).
    pub fn max_abs_field(&self) -> f64 {
        self.h.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Largest absolute coupling (0 if there are none).
    pub fn max_abs_coupling(&self) -> f64 {
        self.j.values().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Generate a random Ising model whose interaction graph is `graph`,
    /// with biases and couplings uniform in `[-1, 1]`.  Deterministic in
    /// `seed`.
    pub fn random_on_graph(graph: &Graph, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = Self::new(graph.vertex_count());
        for i in 0..graph.vertex_count() {
            model.set_field(i, rng.gen_range(-1.0..=1.0));
        }
        for (u, v) in graph.edges() {
            let mut value: f64 = 0.0;
            while value == 0.0 {
                value = rng.gen_range(-1.0..=1.0);
            }
            model.set_coupling(u, v, value);
        }
        model
    }

    /// A random spin configuration, deterministic in `seed`.
    pub fn random_spins(n: usize, seed: u64) -> Vec<Spin> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
            .collect()
    }
}

fn canonical(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    #[test]
    fn empty_model_has_zero_energy() {
        let m = Ising::new(3);
        assert_eq!(m.energy(&[1, -1, 1]), 0.0);
        assert_eq!(m.num_spins(), 3);
        assert_eq!(m.num_couplings(), 0);
    }

    #[test]
    fn single_spin_energy_follows_bias() {
        let mut m = Ising::new(1);
        m.set_field(0, 0.5);
        // E = -h*s: aligned spin (+1) has lower energy.
        assert_eq!(m.energy(&[1]), -0.5);
        assert_eq!(m.energy(&[-1]), 0.5);
    }

    #[test]
    fn ferromagnetic_coupling_prefers_alignment() {
        let mut m = Ising::new(2);
        m.set_coupling(0, 1, 1.0);
        assert_eq!(m.energy(&[1, 1]), -1.0);
        assert_eq!(m.energy(&[-1, -1]), -1.0);
        assert_eq!(m.energy(&[1, -1]), 1.0);
    }

    #[test]
    fn coupling_storage_is_symmetric_and_sparse() {
        let mut m = Ising::new(4);
        m.set_coupling(3, 1, 0.25);
        assert_eq!(m.coupling(1, 3), 0.25);
        assert_eq!(m.coupling(3, 1), 0.25);
        assert_eq!(m.num_couplings(), 1);
        m.set_coupling(1, 3, 0.0);
        assert_eq!(m.num_couplings(), 0);
    }

    #[test]
    fn add_coupling_accumulates_and_removes_on_zero() {
        let mut m = Ising::new(3);
        m.add_coupling(0, 1, 0.5);
        m.add_coupling(1, 0, 0.5);
        assert_eq!(m.coupling(0, 1), 1.0);
        m.add_coupling(0, 1, -1.0);
        assert_eq!(m.num_couplings(), 0);
    }

    #[test]
    #[should_panic(expected = "self-couplings")]
    fn self_coupling_panics() {
        Ising::new(2).set_coupling(1, 1, 1.0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let g = generators::gnp(12, 0.4, 5);
        let m = Ising::random_on_graph(&g, 6);
        let spins = Ising::random_spins(12, 7);
        for i in 0..12 {
            let mut flipped = spins.clone();
            flipped[i] = -flipped[i];
            let expected = m.energy(&flipped) - m.energy(&spins);
            let got = m.flip_delta(&spins, i);
            assert!(
                (expected - got).abs() < 1e-9,
                "spin {i}: delta {got} vs {expected}"
            );
        }
    }

    #[test]
    fn interaction_graph_round_trip() {
        let g = generators::grid(3, 3);
        let m = Ising::random_on_graph(&g, 2);
        assert_eq!(m.interaction_graph(), g);
    }

    #[test]
    fn max_abs_values() {
        let mut m = Ising::new(3);
        m.set_field(0, -0.7);
        m.set_field(2, 0.3);
        m.set_coupling(0, 1, -0.9);
        assert!((m.max_abs_field() - 0.7).abs() < 1e-12);
        assert!((m.max_abs_coupling() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn random_spins_are_deterministic_and_valid() {
        let a = Ising::random_spins(50, 1);
        let b = Ising::random_spins(50, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s == 1 || s == -1));
        assert!(a.contains(&1) && a.contains(&-1));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn energy_length_mismatch_panics() {
        Ising::new(3).energy(&[1, 1]);
    }
}
