//! Control-precision modeling.
//!
//! Sec. 2.2 of the paper notes that the programmed Ising parameters can only
//! be realized to the bits of precision supported by the electronic control
//! system and the analog couplers, so "the final, programmed Ising model may
//! be substantively different from the intended logical input".  This module
//! models that effect: parameters are rescaled into the analog range
//! `[-range, +range]` and rounded to a uniform grid with a given number of
//! bits, and the resulting perturbation is quantified.

use crate::ising::Ising;
use serde::{Deserialize, Serialize};

/// Specification of the control electronics' precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionSpec {
    /// Number of bits used to represent each bias/coupling.
    pub bits: u32,
    /// Symmetric analog range: values are representable in `[-range, range]`.
    pub range: f64,
}

impl Default for PrecisionSpec {
    fn default() -> Self {
        // The D-Wave control system exposes roughly 4-5 bits of effective
        // precision over the [-1, 1] analog range.
        Self {
            bits: 5,
            range: 1.0,
        }
    }
}

impl PrecisionSpec {
    /// Create a spec with the given bit width over `[-1, 1]`.
    pub fn with_bits(bits: u32) -> Self {
        Self { bits, range: 1.0 }
    }

    /// Size of one quantization step.
    pub fn step(&self) -> f64 {
        // `bits` bits represent 2^bits levels across the symmetric range.
        2.0 * self.range / ((1u64 << self.bits) - 1) as f64
    }

    /// Quantize one value: clamp to the representable range and round to the
    /// nearest level of a zero-centered grid with spacing [`Self::step`]
    /// (clamping again so the result never leaves the analog range).  Zero is
    /// always exactly representable; the rounding error is at most half a
    /// step.
    pub fn quantize(&self, value: f64) -> f64 {
        let clamped = value.clamp(-self.range, self.range);
        let step = self.step();
        ((clamped / step).round() * step).clamp(-self.range, self.range)
    }
}

/// The result of quantizing a logical Ising model for hardware programming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedIsing {
    /// The quantized (programmed) model.
    pub programmed: Ising,
    /// Largest absolute bias perturbation introduced by quantization.
    pub max_field_error: f64,
    /// Largest absolute coupling perturbation introduced by quantization.
    pub max_coupling_error: f64,
    /// Scale factor applied before quantization so the largest parameter
    /// fills the analog range (auto-scaling, as the D-Wave toolchain does).
    pub scale: f64,
}

/// Rescale a logical Ising model into the analog range and quantize it.
///
/// The model is scaled by `range / max(|h|, |J|)` (no scaling if the model is
/// all zero), quantized parameter-by-parameter, and the worst-case
/// perturbations (in the scaled units) are reported.
pub fn quantize_ising(ising: &Ising, spec: PrecisionSpec) -> QuantizedIsing {
    let max_param = ising.max_abs_field().max(ising.max_abs_coupling());
    let scale = if max_param > 0.0 {
        spec.range / max_param
    } else {
        1.0
    };
    let mut programmed = Ising::new(ising.num_spins());
    let mut max_field_error: f64 = 0.0;
    let mut max_coupling_error: f64 = 0.0;
    for i in 0..ising.num_spins() {
        let scaled = ising.field(i) * scale;
        let q = spec.quantize(scaled);
        max_field_error = max_field_error.max((q - scaled).abs());
        programmed.set_field(i, q);
    }
    for ((i, j), jij) in ising.couplings() {
        let scaled = jij * scale;
        let q = spec.quantize(scaled);
        max_coupling_error = max_coupling_error.max((q - scaled).abs());
        if q != 0.0 {
            programmed.set_coupling(i, j, q);
        }
    }
    QuantizedIsing {
        programmed,
        max_field_error,
        max_coupling_error,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    #[test]
    fn step_size_shrinks_with_bits() {
        let coarse = PrecisionSpec::with_bits(3).step();
        let fine = PrecisionSpec::with_bits(8).step();
        assert!(fine < coarse);
        assert!((PrecisionSpec::with_bits(1).step() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_clamps_and_rounds() {
        let spec = PrecisionSpec::with_bits(5);
        assert!((spec.quantize(5.0) - 1.0).abs() < 1e-12);
        assert!((spec.quantize(-5.0) + 1.0).abs() < 1e-12);
        let q = spec.quantize(0.33);
        assert!((q - 0.33).abs() <= spec.step() / 2.0 + 1e-12);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let g = generators::gnp(20, 0.4, 3);
        let m = Ising::random_on_graph(&g, 4);
        let spec = PrecisionSpec::with_bits(5);
        let q = quantize_ising(&m, spec);
        let half_step = spec.step() / 2.0 + 1e-12;
        assert!(q.max_field_error <= half_step, "{}", q.max_field_error);
        assert!(
            q.max_coupling_error <= half_step,
            "{}",
            q.max_coupling_error
        );
    }

    #[test]
    fn more_bits_means_less_error() {
        let g = generators::gnp(20, 0.5, 7);
        let m = Ising::random_on_graph(&g, 8);
        let coarse = quantize_ising(&m, PrecisionSpec::with_bits(3));
        let fine = quantize_ising(&m, PrecisionSpec::with_bits(10));
        assert!(fine.max_coupling_error <= coarse.max_coupling_error);
        assert!(fine.max_field_error <= coarse.max_field_error);
    }

    #[test]
    fn scaling_fills_analog_range() {
        let mut m = Ising::new(2);
        m.set_field(0, 0.25);
        m.set_coupling(0, 1, 0.5);
        let q = quantize_ising(&m, PrecisionSpec::default());
        assert!((q.scale - 2.0).abs() < 1e-12);
        // The largest programmed parameter sits at the edge of the range.
        assert!((q.programmed.coupling(0, 1).abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_model_quantizes_to_zero() {
        let m = Ising::new(4);
        let q = quantize_ising(&m, PrecisionSpec::default());
        assert_eq!(q.scale, 1.0);
        assert_eq!(q.max_field_error, 0.0);
        assert!(q.programmed.fields().all(|h| h == 0.0));
    }

    #[test]
    fn structure_is_preserved_at_high_precision() {
        let g = generators::cycle(10);
        let m = Ising::random_on_graph(&g, 5);
        let q = quantize_ising(&m, PrecisionSpec::with_bits(16));
        assert_eq!(q.programmed.interaction_graph(), g);
    }
}
