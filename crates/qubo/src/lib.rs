//! # qubo-ising — discrete-optimization problem layer
//!
//! The problem representations consumed by the split-execution system:
//!
//! * [`qubo::Qubo`] — quadratic unconstrained binary optimization instances
//!   (`argmin_b bᵀQb`, the paper's Eq. 3),
//! * [`ising::Ising`] — Ising Hamiltonians with biases and couplings (Eq. 2),
//! * [`convert`] — the QUBO ⇄ logical-Ising mapping (the paper's Eqs. 4–5),
//!   energy-preserving with an explicit constant offset,
//! * [`precision`] — control-electronics quantization of programmed
//!   parameters (Sec. 2.2),
//! * [`energy`] — exact brute-force ground states for small instances and
//!   readout ranking (stage-3 post-processing),
//! * [`problems`] — reductions from MAX-CUT, number partitioning, minimum
//!   vertex cover and graph coloring into QUBO form.
//!
//! ```
//! use qubo_ising::prelude::*;
//! use chimera_graph::generators;
//!
//! let maxcut = MaxCut::unweighted(generators::cycle(6));
//! let qubo = maxcut.to_qubo();
//! let conversion = qubo_to_ising(&qubo);
//! assert_eq!(conversion.ising.num_spins(), 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;
pub mod energy;
pub mod ising;
pub mod precision;
pub mod problems;
pub mod qubo;

pub use convert::{ising_to_qubo, qubo_to_ising, IsingConversion};
pub use energy::{rank_solutions, solve_ising_exact, solve_qubo_exact, ExactSolution};
pub use ising::{Ising, Spin};
pub use precision::{quantize_ising, PrecisionSpec, QuantizedIsing};
pub use qubo::Qubo;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::convert::{bits_to_spins, ising_to_qubo, qubo_to_ising, spins_to_bits};
    pub use crate::energy::{rank_solutions, solve_ising_exact, solve_qubo_exact};
    pub use crate::ising::{Ising, Spin};
    pub use crate::precision::{quantize_ising, PrecisionSpec};
    pub use crate::problems::coloring::GraphColoring;
    pub use crate::problems::maxcut::MaxCut;
    pub use crate::problems::partition::NumberPartition;
    pub use crate::problems::vertex_cover::VertexCover;
    pub use crate::qubo::Qubo;
}

#[cfg(test)]
mod proptests {
    use crate::convert::{bits_to_spins, qubo_to_ising};
    use crate::precision::{quantize_ising, PrecisionSpec};
    use crate::qubo::Qubo;
    use proptest::prelude::*;

    fn random_bits(n: usize, mask: u64) -> Vec<bool> {
        (0..n).map(|i| (mask >> (i % 64)) & 1 == 1).collect()
    }

    proptest! {
        /// QUBO → Ising conversion preserves energies up to the offset for
        /// arbitrary random instances and assignments.
        #[test]
        fn conversion_energy_identity(
            n in 1usize..12,
            density in 0.0f64..1.0,
            seed in 0u64..500,
            mask in 0u64..u64::MAX,
        ) {
            let qubo = Qubo::random(n, density, seed);
            let conv = qubo_to_ising(&qubo);
            let bits = random_bits(n, mask);
            let spins = bits_to_spins(&bits);
            let qe = qubo.energy(&bits);
            let ie = conv.ising.energy(&spins) + conv.offset;
            prop_assert!((qe - ie).abs() < 1e-8, "{} vs {}", qe, ie);
        }

        /// Quantization error never exceeds half a step in scaled units.
        #[test]
        fn quantization_error_bound(
            n in 1usize..15,
            density in 0.0f64..1.0,
            seed in 0u64..200,
            bits in 2u32..10,
        ) {
            let qubo = Qubo::random(n, density, seed);
            let conv = qubo_to_ising(&qubo);
            let spec = PrecisionSpec::with_bits(bits);
            let q = quantize_ising(&conv.ising, spec);
            let bound = spec.step() / 2.0 + 1e-9;
            prop_assert!(q.max_field_error <= bound);
            prop_assert!(q.max_coupling_error <= bound);
        }

        /// The QUBO energy of the all-false assignment is always zero and the
        /// single-variable assignments equal the diagonal entries.
        #[test]
        fn qubo_energy_basis_cases(n in 1usize..16, density in 0.0f64..1.0, seed in 0u64..200) {
            let qubo = Qubo::random(n, density, seed);
            prop_assert_eq!(qubo.energy(&vec![false; n]), 0.0);
            for i in 0..n {
                let mut bits = vec![false; n];
                bits[i] = true;
                prop_assert!((qubo.energy(&bits) - qubo.get(i, i)).abs() < 1e-12);
            }
        }

        /// MAX-CUT QUBO energy always equals the negated cut value.
        #[test]
        fn maxcut_energy_is_negated_cut(
            n in 2usize..10,
            p in 0.0f64..1.0,
            seed in 0u64..200,
            mask in 0u64..u64::MAX,
        ) {
            use crate::problems::maxcut::MaxCut;
            use chimera_graph::generators;
            let mc = MaxCut::unweighted(generators::gnp(n, p, seed));
            let qubo = mc.to_qubo();
            let bits = random_bits(n, mask);
            prop_assert!((qubo.energy(&bits) + mc.cut_value(&bits)).abs() < 1e-9);
        }

        /// Number-partitioning QUBO energy plus offset equals the squared
        /// imbalance.
        #[test]
        fn partition_energy_is_squared_imbalance(
            values in proptest::collection::vec(0.0f64..20.0, 1..10),
            mask in 0u64..u64::MAX,
        ) {
            use crate::problems::partition::NumberPartition;
            let p = NumberPartition::new(values.clone());
            let qubo = p.to_qubo();
            let bits = random_bits(values.len(), mask);
            let lhs = qubo.energy(&bits) + p.offset();
            let rhs = p.imbalance(&bits).powi(2);
            // Scale the tolerance with the magnitude of the numbers involved.
            let tol = 1e-6 * (1.0 + rhs.abs());
            prop_assert!((lhs - rhs).abs() < tol, "{} vs {}", lhs, rhs);
        }
    }
}
