//! Quadratic unconstrained binary optimization (QUBO) problems.
//!
//! A QUBO instance is `argmin_b bᵀ Q b` over binary vectors `b ∈ {0,1}ⁿ`
//! with a symmetric real matrix `Q` (the paper's Eq. 3).  The matrix is
//! stored densely; problem sizes in this reproduction are bounded by the
//! logical capacity of the Chimera hardware (≈100 vertices for complete
//! inputs), so a dense representation is simplest and cache friendly.

use chimera_graph::Graph;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense symmetric QUBO matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qubo {
    n: usize,
    /// Row-major `n × n` matrix, kept symmetric by the mutators.
    q: Vec<f64>,
}

impl Qubo {
    /// Create an all-zero QUBO over `n` binary variables.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            q: vec![0.0; n * n],
        }
    }

    /// Build a QUBO from a full matrix given as rows.
    ///
    /// The matrix is symmetrized as `(Q + Qᵀ)/2`, which leaves the quadratic
    /// form unchanged.
    ///
    /// # Panics
    /// Panics if the rows do not form a square matrix.
    pub fn from_matrix(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has length {} != {n}", row.len());
        }
        let mut qubo = Self::new(n);
        for (i, row) in rows.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                qubo.q[i * n + j] = (value + rows[j][i]) / 2.0;
            }
        }
        qubo
    }

    /// Number of binary variables.
    pub fn num_variables(&self) -> usize {
        self.n
    }

    /// Matrix entry `Q[i][j]`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.q[i * self.n + j]
    }

    /// Set `Q[i][j]` (and `Q[j][i]`, keeping the matrix symmetric).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.q[i * self.n + j] = value;
        self.q[j * self.n + i] = value;
    }

    /// Add `delta` to `Q[i][j]` (and `Q[j][i]` when `i != j`).
    pub fn add(&mut self, i: usize, j: usize, delta: f64) {
        self.q[i * self.n + j] += delta;
        if i != j {
            self.q[j * self.n + i] += delta;
        }
    }

    /// Linear (diagonal) coefficient of variable `i`.
    pub fn diagonal(&self, i: usize) -> f64 {
        self.get(i, i)
    }

    /// Evaluate the quadratic form `bᵀ Q b` for a binary assignment.
    ///
    /// # Panics
    /// Panics if `bits.len() != n`.
    pub fn energy(&self, bits: &[bool]) -> f64 {
        assert_eq!(bits.len(), self.n, "assignment length mismatch");
        let mut total = 0.0;
        for i in 0..self.n {
            if !bits[i] {
                continue;
            }
            // Diagonal term plus twice the upper-triangle terms (symmetric).
            total += self.get(i, i);
            for (j, &bit) in bits.iter().enumerate().skip(i + 1) {
                if bit {
                    total += 2.0 * self.get(i, j);
                }
            }
        }
        total
    }

    /// Number of structurally nonzero off-diagonal pairs `i < j`.
    pub fn interaction_count(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) != 0.0 {
                    count += 1;
                }
            }
        }
        count
    }

    /// The interaction graph: vertices are variables, edges connect pairs
    /// with a nonzero off-diagonal coefficient.  This is the *logical* graph
    /// that must be minor-embedded into the hardware.
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) != 0.0 {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Largest absolute coefficient (0 for an empty problem).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.q.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Generate a random QUBO whose interaction graph is (approximately)
    /// an Erdős–Rényi `G(n, density)` graph, with coefficients drawn
    /// uniformly from `[-1, 1]`.  Deterministic in `seed`.
    pub fn random(n: usize, density: f64, seed: u64) -> Self {
        let density = density.clamp(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut qubo = Self::new(n);
        for i in 0..n {
            qubo.set(i, i, rng.gen_range(-1.0..=1.0));
            for j in (i + 1)..n {
                if rng.gen::<f64>() < density {
                    let value = rng.gen_range(-1.0..=1.0);
                    qubo.set(i, j, value);
                }
            }
        }
        qubo
    }

    /// Generate a random QUBO whose interaction graph is exactly `graph`,
    /// with coefficients drawn uniformly from `[-1, 1]`.
    pub fn random_on_graph(graph: &Graph, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = graph.vertex_count();
        let mut qubo = Self::new(n);
        for i in 0..n {
            qubo.set(i, i, rng.gen_range(-1.0..=1.0));
        }
        for (u, v) in graph.edges() {
            // Avoid exactly-zero couplings so the interaction graph is preserved.
            let mut value: f64 = 0.0;
            while value == 0.0 {
                value = rng.gen_range(-1.0..=1.0);
            }
            qubo.set(u, v, value);
        }
        qubo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    #[test]
    fn new_qubo_is_zero() {
        let q = Qubo::new(4);
        assert_eq!(q.num_variables(), 4);
        assert_eq!(q.energy(&[true; 4]), 0.0);
        assert_eq!(q.interaction_count(), 0);
        assert_eq!(q.max_abs_coefficient(), 0.0);
    }

    #[test]
    fn set_is_symmetric() {
        let mut q = Qubo::new(3);
        q.set(0, 2, 1.5);
        assert_eq!(q.get(0, 2), 1.5);
        assert_eq!(q.get(2, 0), 1.5);
    }

    #[test]
    fn add_accumulates() {
        let mut q = Qubo::new(2);
        q.add(0, 1, 1.0);
        q.add(0, 1, 0.5);
        assert_eq!(q.get(1, 0), 1.5);
        q.add(1, 1, 2.0);
        q.add(1, 1, 2.0);
        assert_eq!(q.diagonal(1), 4.0);
    }

    #[test]
    fn from_matrix_symmetrizes() {
        let q = Qubo::from_matrix(&[vec![1.0, 2.0], vec![0.0, -1.0]]);
        assert_eq!(q.get(0, 1), 1.0);
        assert_eq!(q.get(1, 0), 1.0);
        assert_eq!(q.get(0, 0), 1.0);
        assert_eq!(q.get(1, 1), -1.0);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn from_matrix_rejects_ragged() {
        Qubo::from_matrix(&[vec![1.0, 2.0], vec![0.0]]);
    }

    #[test]
    fn energy_matches_quadratic_form() {
        // Q = [[1, 2], [2, 3]]; b = (1, 1) -> 1 + 3 + 2*2 = 8.
        let q = Qubo::from_matrix(&[vec![1.0, 2.0], vec![2.0, 3.0]]);
        assert_eq!(q.energy(&[true, true]), 8.0);
        assert_eq!(q.energy(&[true, false]), 1.0);
        assert_eq!(q.energy(&[false, true]), 3.0);
        assert_eq!(q.energy(&[false, false]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn energy_rejects_wrong_length() {
        Qubo::new(3).energy(&[true, false]);
    }

    #[test]
    fn interaction_graph_matches_nonzeros() {
        let mut q = Qubo::new(4);
        q.set(0, 1, 1.0);
        q.set(2, 3, -0.5);
        q.set(1, 1, 3.0); // diagonal should not create an edge
        let g = q.interaction_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert_eq!(q.interaction_count(), 2);
    }

    #[test]
    fn random_qubo_is_deterministic() {
        let a = Qubo::random(10, 0.5, 3);
        let b = Qubo::random(10, 0.5, 3);
        let c = Qubo::random(10, 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max_abs_coefficient() <= 1.0);
    }

    #[test]
    fn random_on_graph_preserves_structure() {
        let g = generators::cycle(8);
        let q = Qubo::random_on_graph(&g, 11);
        assert_eq!(q.interaction_graph(), g);
    }

    #[test]
    fn random_density_extremes() {
        let dense = Qubo::random(12, 1.0, 0);
        assert_eq!(dense.interaction_count(), 12 * 11 / 2);
        let sparse = Qubo::random(12, 0.0, 0);
        assert_eq!(sparse.interaction_count(), 0);
    }
}
