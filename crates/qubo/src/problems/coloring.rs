//! Graph k-coloring → QUBO reduction.
//!
//! One-hot encoding: variable `x_{v,c}` means "vertex `v` has color `c`".
//! The QUBO charges a penalty `P (1 - Σ_c x_{v,c})²` per vertex (exactly one
//! color) and `P x_{u,c} x_{v,c}` per edge and color (no monochromatic edge).
//! A proper k-coloring exists iff the minimum equals `-P·|V|` after dropping
//! constants, i.e. iff the decoded assignment has zero violations.

use crate::qubo::Qubo;
use chimera_graph::Graph;
use serde::{Deserialize, Serialize};

/// A graph k-coloring instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphColoring {
    graph: Graph,
    colors: usize,
    penalty: f64,
}

impl GraphColoring {
    /// Create a k-coloring instance with unit penalty weight.
    ///
    /// # Panics
    /// Panics if `colors == 0`.
    pub fn new(graph: Graph, colors: usize) -> Self {
        assert!(colors > 0, "at least one color is required");
        Self {
            graph,
            colors,
            penalty: 1.0,
        }
    }

    /// Number of colors `k`.
    pub fn colors(&self) -> usize {
        self.colors
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of QUBO variables (`|V| × k`).
    pub fn num_variables(&self) -> usize {
        self.graph.vertex_count() * self.colors
    }

    /// Index of the variable for (vertex, color).
    pub fn variable(&self, vertex: usize, color: usize) -> usize {
        vertex * self.colors + color
    }

    /// Build the QUBO.  The constant `P·|V|` from the one-hot penalty is
    /// dropped; [`Self::offset`] returns it.
    pub fn to_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.num_variables());
        let p = self.penalty;
        // One-hot: P (1 - Σ_c x)² = P - 2P Σ x + P Σ x² + 2P Σ_{c<c'} x x'.
        for v in self.graph.vertices() {
            for c in 0..self.colors {
                let i = self.variable(v, c);
                q.add(i, i, -p); // -2P x + P x² = -P x for binary x
                for c2 in (c + 1)..self.colors {
                    let j = self.variable(v, c2);
                    q.add(i, j, p); // counted twice -> 2P x x'
                }
            }
        }
        // Edge constraint: P x_{u,c} x_{v,c}.
        for (u, v) in self.graph.edges() {
            for c in 0..self.colors {
                let i = self.variable(u, c);
                let j = self.variable(v, c);
                q.add(i, j, p / 2.0); // counted twice -> P x x
            }
        }
        q
    }

    /// Constant offset dropped by [`Self::to_qubo`].
    pub fn offset(&self) -> f64 {
        self.penalty * self.graph.vertex_count() as f64
    }

    /// Decode an assignment into a color per vertex (`None` when the one-hot
    /// constraint is violated for that vertex).
    pub fn decode(&self, bits: &[bool]) -> Vec<Option<usize>> {
        self.graph
            .vertices()
            .map(|v| {
                let chosen: Vec<usize> = (0..self.colors)
                    .filter(|&c| bits[self.variable(v, c)])
                    .collect();
                if chosen.len() == 1 {
                    Some(chosen[0])
                } else {
                    None
                }
            })
            .collect()
    }

    /// Whether an assignment encodes a proper coloring.
    pub fn is_proper(&self, bits: &[bool]) -> bool {
        let colors = self.decode(bits);
        if colors.iter().any(Option::is_none) {
            return false;
        }
        self.graph.edges().all(|(u, v)| colors[u] != colors[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::solve_qubo_exact;
    use chimera_graph::generators;

    #[test]
    fn triangle_is_three_colorable_but_not_two() {
        let three = GraphColoring::new(generators::cycle(3), 3);
        let sol = solve_qubo_exact(&three.to_qubo());
        assert!(three.is_proper(&sol.assignment));
        assert!((sol.energy + three.offset()).abs() < 1e-9);

        let two = GraphColoring::new(generators::cycle(3), 2);
        let sol = solve_qubo_exact(&two.to_qubo());
        assert!(!two.is_proper(&sol.assignment));
        // The minimum is strictly above the fully satisfied value.
        assert!(sol.energy + two.offset() > 0.5);
    }

    #[test]
    fn even_cycle_is_two_colorable() {
        let inst = GraphColoring::new(generators::cycle(6), 2);
        let sol = solve_qubo_exact(&inst.to_qubo());
        assert!(inst.is_proper(&sol.assignment));
        let colors: Vec<usize> = inst.decode(&sol.assignment).into_iter().flatten().collect();
        assert_eq!(colors.len(), 6);
        for (u, v) in inst.graph().edges() {
            assert_ne!(colors[u], colors[v]);
        }
    }

    #[test]
    fn path_coloring_decodes_cleanly() {
        let inst = GraphColoring::new(generators::path(4), 2);
        let sol = solve_qubo_exact(&inst.to_qubo());
        assert!(inst.is_proper(&sol.assignment));
    }

    #[test]
    fn variable_indexing_is_dense_and_unique() {
        let inst = GraphColoring::new(generators::complete(3), 3);
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..3 {
            for c in 0..3 {
                assert!(seen.insert(inst.variable(v, c)));
            }
        }
        assert_eq!(seen.len(), inst.num_variables());
        assert_eq!(*seen.iter().max().unwrap(), inst.num_variables() - 1);
    }

    #[test]
    fn decode_flags_violated_one_hot() {
        let inst = GraphColoring::new(generators::path(2), 2);
        // Vertex 0 gets two colors, vertex 1 gets none.
        let bits = vec![true, true, false, false];
        let decoded = inst.decode(&bits);
        assert_eq!(decoded, vec![None, None]);
        assert!(!inst.is_proper(&bits));
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn zero_colors_rejected() {
        GraphColoring::new(generators::path(2), 0);
    }
}
