//! MAX-CUT → QUBO reduction.
//!
//! For a graph with edge weights `w_{uv}`, maximizing the cut is equivalent
//! to minimizing `Σ_{(u,v)∈E} w_{uv} (2 x_u x_v − x_u − x_v)`, since an edge
//! contributes `−w` exactly when its endpoints take different values.

use crate::qubo::Qubo;
use chimera_graph::Graph;
use serde::{Deserialize, Serialize};

/// A MAX-CUT instance: a graph plus per-edge weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxCut {
    graph: Graph,
    weights: Vec<((usize, usize), f64)>,
}

impl MaxCut {
    /// Unweighted MAX-CUT on `graph` (every edge has weight 1).
    pub fn unweighted(graph: Graph) -> Self {
        let weights = graph.edges().map(|e| (e, 1.0)).collect();
        Self { graph, weights }
    }

    /// Weighted MAX-CUT; missing edges default to weight 1.
    pub fn weighted(graph: Graph, weights: &[((usize, usize), f64)]) -> Self {
        let mut all: Vec<((usize, usize), f64)> = graph.edges().map(|e| (e, 1.0)).collect();
        for &((u, v), w) in weights {
            let key = if u < v { (u, v) } else { (v, u) };
            if let Some(entry) = all.iter_mut().find(|(e, _)| *e == key) {
                entry.1 = w;
            }
        }
        Self {
            graph,
            weights: all,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|(_, w)| w).sum()
    }

    /// Build the QUBO whose minimizer maximizes the cut.
    pub fn to_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.graph.vertex_count());
        for &((u, v), w) in &self.weights {
            // 2 w x_u x_v  - w x_u - w x_v  (off-diagonal entries are counted
            // twice by the quadratic form, so set Q_uv = w).
            q.add(u, v, w);
            q.add(u, u, -w);
            q.add(v, v, -w);
        }
        q
    }

    /// Cut value of a partition described by a binary assignment.
    pub fn cut_value(&self, assignment: &[bool]) -> f64 {
        self.weights
            .iter()
            .filter(|&&((u, v), _)| assignment[u] != assignment[v])
            .map(|(_, w)| w)
            .sum()
    }

    /// Decode a QUBO assignment into the two sides of the cut.
    pub fn decode(&self, assignment: &[bool]) -> (Vec<usize>, Vec<usize>) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (v, &in_right) in assignment.iter().enumerate() {
            if in_right {
                right.push(v);
            } else {
                left.push(v);
            }
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::solve_qubo_exact;
    use chimera_graph::generators;

    #[test]
    fn qubo_energy_tracks_cut_value() {
        // Minimizing the QUBO is equivalent to maximizing the cut:
        // energy = -cut for unweighted instances.
        let mc = MaxCut::unweighted(generators::cycle(5));
        let q = mc.to_qubo();
        for mask in 0..(1u32 << 5) {
            let bits: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 == 1).collect();
            assert!(
                (q.energy(&bits) + mc.cut_value(&bits)).abs() < 1e-9,
                "bits {bits:?}"
            );
        }
    }

    #[test]
    fn exact_solution_of_even_cycle_is_full_cut() {
        let mc = MaxCut::unweighted(generators::cycle(6));
        let sol = solve_qubo_exact(&mc.to_qubo());
        assert!((sol.energy + 6.0).abs() < 1e-9, "cut of C6 is 6");
        assert_eq!(mc.cut_value(&sol.assignment), 6.0);
    }

    #[test]
    fn exact_solution_of_odd_cycle_loses_one_edge() {
        let mc = MaxCut::unweighted(generators::cycle(5));
        let sol = solve_qubo_exact(&mc.to_qubo());
        assert!((sol.energy + 4.0).abs() < 1e-9);
    }

    #[test]
    fn complete_bipartite_structure_is_recovered() {
        // K4's max cut is 4 (2+2 split).
        let mc = MaxCut::unweighted(generators::complete(4));
        let sol = solve_qubo_exact(&mc.to_qubo());
        assert!((sol.energy + 4.0).abs() < 1e-9);
        let (left, right) = mc.decode(&sol.assignment);
        assert_eq!(left.len(), 2);
        assert_eq!(right.len(), 2);
    }

    #[test]
    fn weighted_edges_bias_the_cut() {
        // Triangle with one heavy edge: the optimum must cut the heavy edge.
        let g = generators::cycle(3);
        let mc = MaxCut::weighted(g, &[((0, 1), 10.0)]);
        let sol = solve_qubo_exact(&mc.to_qubo());
        let cut = mc.cut_value(&sol.assignment);
        // A triangle can cut at most two edges; the optimum takes the heavy
        // edge plus one unit edge.
        assert!((cut - 11.0).abs() < 1e-9, "heavy edge plus one unit edge");
        assert!(sol.assignment[0] != sol.assignment[1]);
        assert!((mc.total_weight() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_yields_trivial_instance() {
        let mc = MaxCut::unweighted(Graph::new(3));
        let q = mc.to_qubo();
        assert_eq!(q.interaction_count(), 0);
        assert_eq!(mc.cut_value(&[true, false, true]), 0.0);
    }
}
