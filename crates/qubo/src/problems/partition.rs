//! Number partitioning → QUBO reduction.
//!
//! Given positive numbers `a_1..a_n`, split them into two sets with sums as
//! close as possible.  With `x_i ∈ {0,1}` selecting the second set, the
//! squared imbalance `(Σ a_i - 2 Σ a_i x_i)²` expands into a QUBO whose
//! minimum is the squared optimal residue (0 for perfectly balanced inputs).

use crate::qubo::Qubo;
use serde::{Deserialize, Serialize};

/// A number-partitioning instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumberPartition {
    numbers: Vec<f64>,
}

impl NumberPartition {
    /// Create an instance from the given numbers.
    ///
    /// # Panics
    /// Panics if any number is negative or non-finite.
    pub fn new(numbers: Vec<f64>) -> Self {
        assert!(
            numbers.iter().all(|&a| a.is_finite() && a >= 0.0),
            "numbers must be non-negative and finite"
        );
        Self { numbers }
    }

    /// The numbers being partitioned.
    pub fn numbers(&self) -> &[f64] {
        &self.numbers
    }

    /// Total sum of the input numbers.
    pub fn total(&self) -> f64 {
        self.numbers.iter().sum()
    }

    /// Build the QUBO encoding of the squared imbalance.
    ///
    /// `(S - 2 Σ a_i x_i)² = S² - 4 S Σ a_i x_i + 4 (Σ a_i x_i)²`; dropping
    /// the constant `S²`, the diagonal gets `4 a_i (a_i - S)` and each pair
    /// `i<j` gets an off-diagonal coefficient `4 a_i a_j`.
    pub fn to_qubo(&self) -> Qubo {
        let n = self.numbers.len();
        let total = self.total();
        let mut q = Qubo::new(n);
        for i in 0..n {
            let a = self.numbers[i];
            q.add(i, i, 4.0 * a * (a - total));
            for j in (i + 1)..n {
                q.add(i, j, 4.0 * a * self.numbers[j]);
            }
        }
        q
    }

    /// The constant offset dropped by [`Self::to_qubo`]; adding it back turns
    /// the QUBO energy into the squared imbalance.
    pub fn offset(&self) -> f64 {
        self.total() * self.total()
    }

    /// Imbalance `|sum(A) - sum(B)|` of the partition described by `bits`.
    pub fn imbalance(&self, bits: &[bool]) -> f64 {
        let selected: f64 = self
            .numbers
            .iter()
            .zip(bits)
            .filter(|(_, &b)| b)
            .map(|(a, _)| a)
            .sum();
        (self.total() - 2.0 * selected).abs()
    }

    /// Decode an assignment into the two subsets (indices).
    pub fn decode(&self, bits: &[bool]) -> (Vec<usize>, Vec<usize>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                b.push(i);
            } else {
                a.push(i);
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::solve_qubo_exact;

    #[test]
    fn qubo_energy_equals_squared_imbalance_minus_offset() {
        let p = NumberPartition::new(vec![3.0, 1.0, 4.0, 2.0]);
        let q = p.to_qubo();
        for mask in 0..(1u32 << 4) {
            let bits: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 1).collect();
            let energy_plus_offset = q.energy(&bits) + p.offset();
            let squared = p.imbalance(&bits).powi(2);
            assert!(
                (energy_plus_offset - squared).abs() < 1e-9,
                "bits {bits:?}: {energy_plus_offset} vs {squared}"
            );
        }
    }

    #[test]
    fn balanced_instance_reaches_zero_imbalance() {
        let p = NumberPartition::new(vec![3.0, 1.0, 4.0, 2.0, 2.0]);
        let sol = solve_qubo_exact(&p.to_qubo());
        assert!(
            (sol.energy + p.offset()).abs() < 1e-9,
            "perfect split exists"
        );
        assert_eq!(p.imbalance(&sol.assignment), 0.0);
    }

    #[test]
    fn unbalanced_instance_minimizes_residue() {
        let p = NumberPartition::new(vec![10.0, 3.0, 2.0]);
        let sol = solve_qubo_exact(&p.to_qubo());
        // Best split: {10} vs {3, 2} -> residue 5.
        assert!((p.imbalance(&sol.assignment) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn decode_partitions_all_indices() {
        let p = NumberPartition::new(vec![1.0, 2.0, 3.0]);
        let (a, b) = p.decode(&[true, false, true]);
        assert_eq!(a, vec![1]);
        assert_eq!(b, vec![0, 2]);
    }

    #[test]
    fn interaction_graph_is_complete() {
        let p = NumberPartition::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let q = p.to_qubo();
        assert_eq!(q.interaction_count(), 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_numbers_are_rejected() {
        NumberPartition::new(vec![1.0, -2.0]);
    }

    #[test]
    fn empty_instance_is_trivial() {
        let p = NumberPartition::new(vec![]);
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.offset(), 0.0);
        assert_eq!(p.to_qubo().num_variables(), 0);
    }
}
