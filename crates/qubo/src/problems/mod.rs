//! NP-hard problem reductions to QUBO form.
//!
//! Sec. 2.1 of the paper lists the problem families that map into the
//! D-Wave's Ising/QUBO form — MAX-CUT, MIN-COVER, MAX-SAT, classification,
//! integer programming, set packing, etc. (following Lucas' catalogue of
//! Ising formulations).  This module provides the reductions used by the
//! example applications and the benchmark workload generators:
//!
//! * [`maxcut`] — maximum cut of a weighted graph,
//! * [`partition`] — number partitioning,
//! * [`vertex_cover`] — minimum vertex cover (the paper's "MIN-COVER"),
//! * [`coloring`] — graph k-coloring.
//!
//! Every reduction also provides a decoder from a QUBO assignment back to the
//! original combinatorial object and a verifier used by the tests.

pub mod coloring;
pub mod maxcut;
pub mod partition;
pub mod vertex_cover;
