//! Minimum vertex cover → QUBO reduction (the paper's "MIN-COVER").
//!
//! Minimize `Σ x_v` subject to every edge having at least one covered
//! endpoint.  The constraint is enforced with a penalty
//! `P (1 - x_u)(1 - x_v)` per edge; any `P > 1` makes violating a constraint
//! more expensive than adding a vertex, so minima of the QUBO are exactly the
//! minimum vertex covers.

use crate::qubo::Qubo;
use chimera_graph::Graph;
use serde::{Deserialize, Serialize};

/// A minimum-vertex-cover instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexCover {
    graph: Graph,
    penalty: f64,
}

impl VertexCover {
    /// Create an instance with the default penalty weight (2.0).
    pub fn new(graph: Graph) -> Self {
        Self {
            graph,
            penalty: 2.0,
        }
    }

    /// Override the constraint penalty weight.
    ///
    /// # Panics
    /// Panics if the penalty is not greater than 1 (the reduction is only
    /// exact for `P > 1`).
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        assert!(
            penalty > 1.0,
            "penalty must exceed the per-vertex cost of 1"
        );
        self.penalty = penalty;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Build the QUBO: `Σ_v x_v + P Σ_{(u,v)∈E} (1 - x_u)(1 - x_v)`,
    /// dropping the constant `P·|E|`.
    pub fn to_qubo(&self) -> Qubo {
        let n = self.graph.vertex_count();
        let mut q = Qubo::new(n);
        for v in 0..n {
            q.add(v, v, 1.0);
        }
        for (u, v) in self.graph.edges() {
            // (1-xu)(1-xv) = 1 - xu - xv + xu xv.
            q.add(u, u, -self.penalty);
            q.add(v, v, -self.penalty);
            q.add(u, v, self.penalty / 2.0); // off-diagonals count twice
        }
        q
    }

    /// Constant offset dropped by [`Self::to_qubo`].
    pub fn offset(&self) -> f64 {
        self.penalty * self.graph.edge_count() as f64
    }

    /// Whether `bits` describes a valid vertex cover.
    pub fn is_cover(&self, bits: &[bool]) -> bool {
        self.graph.edges().all(|(u, v)| bits[u] || bits[v])
    }

    /// Size of the selected vertex set.
    pub fn cover_size(&self, bits: &[bool]) -> usize {
        bits.iter().filter(|&&b| b).count()
    }

    /// Decode an assignment into the list of covered vertices.
    pub fn decode(&self, bits: &[bool]) -> Vec<usize> {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::solve_qubo_exact;
    use chimera_graph::generators;

    #[test]
    fn energy_equals_size_plus_penalty_violations() {
        let vc = VertexCover::new(generators::cycle(4));
        let q = vc.to_qubo();
        for mask in 0..(1u32 << 4) {
            let bits: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 1).collect();
            let violations = vc
                .graph()
                .edges()
                .filter(|&(u, v)| !bits[u] && !bits[v])
                .count() as f64;
            let expected = vc.cover_size(&bits) as f64 + 2.0 * violations;
            let got = q.energy(&bits) + vc.offset();
            assert!((got - expected).abs() < 1e-9, "bits {bits:?}");
        }
    }

    #[test]
    fn star_graph_optimal_cover_is_the_hub() {
        let vc = VertexCover::new(generators::star(6));
        let sol = solve_qubo_exact(&vc.to_qubo());
        assert!(vc.is_cover(&sol.assignment));
        assert_eq!(vc.cover_size(&sol.assignment), 1);
        assert_eq!(vc.decode(&sol.assignment), vec![0]);
    }

    #[test]
    fn even_cycle_cover_is_half_the_vertices() {
        let vc = VertexCover::new(generators::cycle(6));
        let sol = solve_qubo_exact(&vc.to_qubo());
        assert!(vc.is_cover(&sol.assignment));
        assert_eq!(vc.cover_size(&sol.assignment), 3);
    }

    #[test]
    fn complete_graph_needs_all_but_one() {
        let vc = VertexCover::new(generators::complete(5));
        let sol = solve_qubo_exact(&vc.to_qubo());
        assert!(vc.is_cover(&sol.assignment));
        assert_eq!(vc.cover_size(&sol.assignment), 4);
    }

    #[test]
    fn larger_penalty_does_not_change_optimum() {
        let g = generators::gnp(8, 0.4, 13);
        let base = VertexCover::new(g.clone());
        let strict = VertexCover::new(g).with_penalty(10.0);
        let a = solve_qubo_exact(&base.to_qubo());
        let b = solve_qubo_exact(&strict.to_qubo());
        assert!(base.is_cover(&a.assignment));
        assert!(strict.is_cover(&b.assignment));
        assert_eq!(
            base.cover_size(&a.assignment),
            strict.cover_size(&b.assignment)
        );
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn weak_penalty_is_rejected() {
        VertexCover::new(generators::cycle(3)).with_penalty(0.5);
    }

    #[test]
    fn empty_graph_needs_no_cover() {
        let vc = VertexCover::new(Graph::new(4));
        let sol = solve_qubo_exact(&vc.to_qubo());
        assert_eq!(vc.cover_size(&sol.assignment), 0);
        assert!(vc.is_cover(&sol.assignment));
    }
}
