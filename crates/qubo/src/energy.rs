//! Energy evaluation utilities: exact brute-force ground states for small
//! instances, energy landscapes and solution ranking.
//!
//! The brute-force solver is the ground truth against which the simulated
//! QPU's success probability `p_s` (Sec. 3.2 of the paper) is estimated.

use crate::ising::{Ising, Spin};
use crate::qubo::Qubo;
use serde::{Deserialize, Serialize};

/// Maximum problem size accepted by the exact solvers (2^24 states).
pub const MAX_EXACT_VARIABLES: usize = 24;

/// An exact solution of a small instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactSolution {
    /// Minimum energy value found.
    pub energy: f64,
    /// One optimal assignment (lowest index order among ties).
    pub assignment: Vec<bool>,
    /// Number of optimal assignments (degeneracy of the ground state).
    pub degeneracy: usize,
}

/// Exhaustively minimize a QUBO.  Only valid for small instances.
///
/// # Panics
/// Panics if the instance has more than [`MAX_EXACT_VARIABLES`] variables.
pub fn solve_qubo_exact(qubo: &Qubo) -> ExactSolution {
    let n = qubo.num_variables();
    assert!(
        n <= MAX_EXACT_VARIABLES,
        "exact solver limited to {MAX_EXACT_VARIABLES} variables, got {n}"
    );
    let mut best = f64::INFINITY;
    let mut best_bits = vec![false; n];
    let mut degeneracy = 0usize;
    for mask in 0u64..(1u64 << n) {
        let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        let e = qubo.energy(&bits);
        if e < best - 1e-12 {
            best = e;
            best_bits = bits;
            degeneracy = 1;
        } else if (e - best).abs() <= 1e-12 {
            degeneracy += 1;
        }
    }
    ExactSolution {
        energy: best,
        assignment: best_bits,
        degeneracy,
    }
}

/// Exhaustively minimize an Ising model.  Only valid for small instances.
///
/// # Panics
/// Panics if the instance has more than [`MAX_EXACT_VARIABLES`] spins.
pub fn solve_ising_exact(ising: &Ising) -> (f64, Vec<Spin>, usize) {
    let n = ising.num_spins();
    assert!(
        n <= MAX_EXACT_VARIABLES,
        "exact solver limited to {MAX_EXACT_VARIABLES} spins, got {n}"
    );
    let mut best = f64::INFINITY;
    let mut best_spins = vec![1; n];
    let mut degeneracy = 0usize;
    for mask in 0u64..(1u64 << n) {
        let spins: Vec<Spin> = (0..n)
            .map(|i| if (mask >> i) & 1 == 1 { 1 } else { -1 })
            .collect();
        let e = ising.energy(&spins);
        if e < best - 1e-12 {
            best = e;
            best_spins = spins;
            degeneracy = 1;
        } else if (e - best).abs() <= 1e-12 {
            degeneracy += 1;
        }
    }
    (best, best_spins, degeneracy)
}

/// A sampled solution with its energy and multiplicity, as produced by
/// post-processing (stage 3 of the split-execution application).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSolution {
    /// Ising energy of the configuration.
    pub energy: f64,
    /// The spin configuration.
    pub spins: Vec<Spin>,
    /// Number of times this configuration appeared in the readout ensemble.
    pub multiplicity: usize,
}

/// Sort an ensemble of readout configurations by energy (ascending) and
/// collapse duplicates, mirroring the heapsort-based post-processing of the
/// paper's Stage 3.  Returns the ranked list and the number of comparison
/// operations performed (for resource accounting).
pub fn rank_solutions(ising: &Ising, samples: &[Vec<Spin>]) -> (Vec<RankedSolution>, u64) {
    let mut operations: u64 = 0;
    let mut scored: Vec<(f64, &Vec<Spin>)> = samples
        .iter()
        .map(|s| {
            operations += ising.num_spins() as u64 + ising.num_couplings() as u64;
            (ising.energy(s), s)
        })
        .collect();
    // Rust's sort is a mergesort variant; the paper assumes heapsort.  Both
    // are O(k log k) comparisons, which is what the Stage-3 model charges.
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    operations += (scored.len() as u64).max(1).ilog2() as u64 * scored.len() as u64;
    let mut ranked: Vec<RankedSolution> = Vec::new();
    for (energy, spins) in scored {
        match ranked.last_mut() {
            Some(last) if (last.energy - energy).abs() <= 1e-12 && &last.spins == spins => {
                last.multiplicity += 1;
            }
            _ => ranked.push(RankedSolution {
                energy,
                spins: spins.clone(),
                multiplicity: 1,
            }),
        }
    }
    (ranked, operations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{bits_to_spins, qubo_to_ising};

    #[test]
    fn exact_qubo_finds_known_minimum() {
        // Minimize x0 + x1 - 3 x0 x1: best is x0 = x1 = 1 with value -1.
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, 1.0);
        q.set(0, 1, -1.5); // off-diagonal counted twice -> -3 x0 x1
        let sol = solve_qubo_exact(&q);
        assert_eq!(sol.assignment, vec![true, true]);
        assert!((sol.energy - (-1.0)).abs() < 1e-12);
        assert_eq!(sol.degeneracy, 1);
    }

    #[test]
    fn exact_qubo_counts_degeneracy() {
        // Zero matrix: every assignment is optimal.
        let sol = solve_qubo_exact(&Qubo::new(3));
        assert_eq!(sol.energy, 0.0);
        assert_eq!(sol.degeneracy, 8);
    }

    #[test]
    fn exact_ising_ferromagnet_ground_states() {
        let mut m = Ising::new(3);
        m.set_coupling(0, 1, 1.0);
        m.set_coupling(1, 2, 1.0);
        let (energy, spins, degeneracy) = solve_ising_exact(&m);
        assert!((energy - (-2.0)).abs() < 1e-12);
        assert_eq!(degeneracy, 2); // all-up and all-down
        assert!(spins.iter().all(|&s| s == spins[0]));
    }

    #[test]
    fn exact_solvers_agree_through_conversion() {
        let qubo = Qubo::random(10, 0.5, 31);
        let conv = qubo_to_ising(&qubo);
        let qubo_sol = solve_qubo_exact(&qubo);
        let (ising_energy, ising_spins, _) = solve_ising_exact(&conv.ising);
        assert!(
            (qubo_sol.energy - (ising_energy + conv.offset)).abs() < 1e-9,
            "{} vs {}",
            qubo_sol.energy,
            ising_energy + conv.offset
        );
        // The Ising optimum maps to an optimal QUBO assignment.
        let bits = crate::convert::spins_to_bits(&ising_spins);
        assert!((qubo.energy(&bits) - qubo_sol.energy).abs() < 1e-9);
        let _ = bits_to_spins(&qubo_sol.assignment);
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn exact_solver_rejects_large_instances() {
        solve_qubo_exact(&Qubo::new(30));
    }

    #[test]
    fn rank_solutions_sorts_and_collapses() {
        let mut m = Ising::new(2);
        m.set_field(0, 1.0);
        let samples = vec![vec![-1, 1], vec![1, 1], vec![1, 1], vec![-1, -1]];
        let (ranked, ops) = rank_solutions(&m, &samples);
        assert!(ops > 0);
        // Best energy first.
        assert!(ranked.windows(2).all(|w| w[0].energy <= w[1].energy));
        // The two identical [1, 1] samples collapse with multiplicity 2.
        let best = &ranked[0];
        assert_eq!(best.spins, vec![1, 1]);
        assert_eq!(best.multiplicity, 2);
        let total: usize = ranked.iter().map(|r| r.multiplicity).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn rank_solutions_empty_input() {
        let m = Ising::new(2);
        let (ranked, _) = rank_solutions(&m, &[]);
        assert!(ranked.is_empty());
    }
}
