//! # quantum-anneal — the simulated QPU substrate
//!
//! The paper's stage 2 runs on a D-Wave quantum annealer; this crate provides
//! the closest classical stand-in that exercises the same code path (see the
//! substitution table in DESIGN.md): a seeded, Chimera-agnostic Ising sampler
//! with the hardware's published timing constants.
//!
//! * [`backend`] — the pluggable [`backend::SamplerBackend`] abstraction:
//!   stage 2 as an interchangeable component, with simulated-annealing,
//!   parallel-tempering and exact-enumeration implementations selected by
//!   [`backend::BackendKind`].
//! * [`schedule`] — annealing schedules (default 20 µs hardware duration).
//! * [`sa`] — single-spin-flip simulated annealing over a compiled (CSR)
//!   Ising model; one call = one hardware read.
//! * [`pt`] — parallel tempering, a stronger classical reference sampler.
//! * [`sampler`] — the [`sampler::SimulatedQpu`] front-end: batched,
//!   Rayon-parallel reads aggregated into a [`sampler::SampleSet`] plus a
//!   modeled hardware access time.
//! * [`stats`] — Eq. (6) repetition counts and success-probability
//!   estimation.
//! * [`timing`] — the DW2 programming/readout constants from the paper's
//!   Figs. 6–7.
//!
//! ```
//! use quantum_anneal::prelude::*;
//! use qubo_ising::Ising;
//!
//! let mut model = Ising::new(4);
//! model.set_coupling(0, 1, 1.0);
//! model.set_coupling(2, 3, 1.0);
//! let qpu = SimulatedQpu::with_schedule(AnnealSchedule::fast());
//! let samples = qpu.sample(&model, 8, 42);
//! assert_eq!(samples.num_reads(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod pt;
pub mod sa;
pub mod sampler;
pub mod schedule;
pub mod stats;
pub mod timing;

pub use backend::{
    BackendKind, ExactEnumerationBackend, ParallelTemperingBackend, SampleParams, SamplerBackend,
    SamplerError,
};
pub use sampler::{QpuAccessReport, SampleRecord, SampleSet, SimulatedQpu};
pub use schedule::{AnnealSchedule, ScheduleShape};
pub use stats::{
    achieved_accuracy, estimate_success_probability, percentile, percentile_sorted, required_reads,
    Histogram,
};
pub use timing::QpuTimings;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::backend::{
        BackendKind, ExactEnumerationBackend, ParallelTemperingBackend, SampleParams,
        SamplerBackend, SamplerError,
    };
    pub use crate::pt::{parallel_tempering, PtConfig};
    pub use crate::sampler::{QpuAccessReport, SampleSet, SimulatedQpu};
    pub use crate::schedule::{AnnealSchedule, ScheduleShape};
    pub use crate::stats::{
        achieved_accuracy, estimate_success_probability, percentile, percentile_sorted,
        required_reads, Histogram,
    };
    pub use crate::timing::QpuTimings;
}

#[cfg(test)]
mod proptests {
    use crate::stats::{achieved_accuracy, required_reads};
    use proptest::prelude::*;

    proptest! {
        /// Eq. (6) always returns enough reads to meet the requested accuracy
        /// and never one fewer than necessary.
        #[test]
        fn required_reads_meets_accuracy(pa in 0.01f64..0.999_999, ps in 0.01f64..0.999_999) {
            let reads = required_reads(pa, ps);
            prop_assert!(reads >= 1);
            prop_assert!(achieved_accuracy(reads, ps) >= pa - 1e-12);
            if reads > 1 {
                prop_assert!(achieved_accuracy(reads - 1, ps) < pa + 1e-12);
            }
        }

        /// Monotonicity: more accuracy or less per-read success never lowers
        /// the repetition count.
        #[test]
        fn required_reads_monotone(pa in 0.1f64..0.99, ps in 0.1f64..0.9) {
            let base = required_reads(pa, ps);
            prop_assert!(required_reads((pa + 0.009).min(0.9999), ps) >= base);
            prop_assert!(required_reads(pa, (ps - 0.05).max(0.01)) >= base);
        }

        /// A simulated-annealing read on a coupling-free model aligns every
        /// spin with its bias when the final temperature is low.
        #[test]
        fn field_only_models_align_with_bias(seed in 0u64..200, n in 1usize..20) {
            use crate::sa::{anneal_once, CompiledIsing};
            use crate::schedule::AnnealSchedule;
            use qubo_ising::Ising;
            let mut model = Ising::new(n);
            for i in 0..n {
                model.set_field(i, if i % 2 == 0 { 1.0 } else { -1.0 });
            }
            let read = anneal_once(&CompiledIsing::new(&model), &AnnealSchedule::default(), seed);
            for i in 0..n {
                let expected: i8 = if i % 2 == 0 { 1 } else { -1 };
                prop_assert_eq!(read.spins[i], expected);
            }
        }
    }
}
