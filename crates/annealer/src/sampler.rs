//! The simulated QPU front-end: batched sampling with hardware-style timing.
//!
//! A [`SimulatedQpu`] plays the role of the D-Wave processor in the
//! split-execution pipeline: it accepts a (hardware-embeddable) Ising
//! program, performs `num_reads` statistically independent anneals, and
//! returns an aggregated [`SampleSet`] plus the QPU-access time the paper's
//! timing constants assign to that work.  Reads are embarrassingly parallel
//! and are distributed over a Rayon thread pool.

use crate::sa::{anneal_once, CompiledIsing};
use crate::schedule::AnnealSchedule;
use crate::timing::QpuTimings;
use qubo_ising::{Ising, Spin};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One distinct configuration observed in the readout ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// The spin configuration.
    pub spins: Vec<Spin>,
    /// Its Ising energy.
    pub energy: f64,
    /// How many reads returned this configuration.
    pub occurrences: usize,
}

/// An aggregated set of readout results, sorted by energy (ascending).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleSet {
    /// Distinct configurations with multiplicities, best energy first.
    pub records: Vec<SampleRecord>,
}

impl SampleSet {
    /// Aggregate raw reads (spins + energy) into a sorted, deduplicated set.
    pub fn from_reads(reads: Vec<(Vec<Spin>, f64)>) -> Self {
        let mut sorted = reads;
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut records: Vec<SampleRecord> = Vec::new();
        for (spins, energy) in sorted {
            match records.last_mut() {
                Some(last) if last.spins == spins => last.occurrences += 1,
                _ => records.push(SampleRecord {
                    spins,
                    energy,
                    occurrences: 1,
                }),
            }
        }
        Self { records }
    }

    /// Total number of reads aggregated.
    pub fn num_reads(&self) -> usize {
        self.records.iter().map(|r| r.occurrences).sum()
    }

    /// The lowest observed energy, if any reads were taken.
    pub fn best_energy(&self) -> Option<f64> {
        self.records.first().map(|r| r.energy)
    }

    /// The lowest-energy configuration, if any.
    pub fn best(&self) -> Option<&SampleRecord> {
        self.records.first()
    }

    /// All sampled energies, expanded to one entry per read.
    pub fn energies(&self) -> Vec<f64> {
        self.records
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.energy, r.occurrences))
            .collect()
    }
}

/// Timing attributed to one QPU access (programming + sampling + readout).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpuAccessReport {
    /// Number of reads performed.
    pub reads: usize,
    /// Modeled hardware access time in seconds (per the paper's constants).
    pub modeled_seconds: f64,
    /// Wall-clock seconds the simulation itself took.
    pub simulation_seconds: f64,
    /// Total single-spin updates performed by the simulator.
    pub updates: u64,
}

/// The classical simulated-annealing QPU used throughout this reproduction.
#[derive(Debug, Clone)]
pub struct SimulatedQpu {
    /// Annealing schedule applied to every read.
    pub schedule: AnnealSchedule,
    /// Hardware timing constants used for modeled access times.
    pub timings: QpuTimings,
    /// Whether to distribute reads across the Rayon thread pool.
    pub parallel: bool,
}

impl Default for SimulatedQpu {
    fn default() -> Self {
        Self {
            schedule: AnnealSchedule::default(),
            timings: QpuTimings::default(),
            parallel: true,
        }
    }
}

impl SimulatedQpu {
    /// A QPU with a specific schedule.
    pub fn with_schedule(schedule: AnnealSchedule) -> Self {
        Self {
            schedule,
            ..Self::default()
        }
    }

    /// A copy of this QPU with both schedule temperatures multiplied by
    /// `scale` — used to match a unit-scale schedule to the actual magnitude
    /// of an embedded program's parameters.
    pub fn with_temperature_scale(&self, scale: f64) -> Self {
        let mut scaled = self.clone();
        scaled.schedule.initial_temperature *= scale;
        scaled.schedule.final_temperature *= scale;
        scaled
    }

    /// Sample and also report modeled hardware access time and simulation
    /// cost.
    pub fn sample_with_report(
        &self,
        model: &Ising,
        num_reads: usize,
        seed: u64,
    ) -> (SampleSet, QpuAccessReport) {
        // sx-lint: allow(D001) -- times a real annealing run (host wall clock); results stay seed-deterministic
        let start = std::time::Instant::now();
        let compiled = CompiledIsing::new(model);
        let run_read = |i: usize| {
            let read = anneal_once(&compiled, &self.schedule, seed.wrapping_add(i as u64));
            (read.spins, read.energy, read.updates)
        };
        let raw: Vec<(Vec<Spin>, f64, u64)> = if self.parallel {
            (0..num_reads).into_par_iter().map(run_read).collect()
        } else {
            (0..num_reads).map(run_read).collect()
        };
        let updates = raw.iter().map(|r| r.2).sum();
        let set = SampleSet::from_reads(raw.into_iter().map(|(s, e, _)| (s, e)).collect());
        let report = QpuAccessReport {
            reads: num_reads,
            modeled_seconds: self.timings.total_access_seconds(num_reads),
            simulation_seconds: start.elapsed().as_secs_f64(),
            updates,
        };
        (set, report)
    }
}

impl SimulatedQpu {
    /// Draw `num_reads` independent samples; deterministic in `seed`.
    ///
    /// (Inherent rather than part of [`crate::backend::SamplerBackend`] so
    /// the short 3-argument form stays unambiguous at call sites that import
    /// both; the backend trait's `sample` takes a
    /// [`crate::backend::SampleParams`].)
    pub fn sample(&self, model: &Ising, num_reads: usize, seed: u64) -> SampleSet {
        self.sample_with_report(model, num_reads, seed).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use qubo_ising::solve_ising_exact;

    fn small_model(seed: u64) -> Ising {
        Ising::random_on_graph(&generators::gnp(12, 0.4, seed), seed + 1)
    }

    #[test]
    fn sample_set_aggregation() {
        let reads = vec![
            (vec![1, 1], -2.0),
            (vec![-1, -1], -2.0),
            (vec![1, 1], -2.0),
            (vec![1, -1], 2.0),
        ];
        let set = SampleSet::from_reads(reads);
        assert_eq!(set.num_reads(), 4);
        assert_eq!(set.records.len(), 3);
        assert_eq!(set.best_energy(), Some(-2.0));
        // Ties at the best energy are ordered by spin vector; the duplicated
        // [1, 1] read is collapsed into a single record with multiplicity 2.
        assert_eq!(set.best().unwrap().spins, vec![-1, -1]);
        let duplicated = set.records.iter().find(|r| r.spins == vec![1, 1]).unwrap();
        assert_eq!(duplicated.occurrences, 2);
        assert_eq!(set.energies().len(), 4);
        // Energies are non-decreasing.
        let energies = set.energies();
        assert!(energies.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_sample_set() {
        let set = SampleSet::from_reads(vec![]);
        assert_eq!(set.num_reads(), 0);
        assert!(set.best_energy().is_none());
        assert!(set.energies().is_empty());
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let model = small_model(5);
        let qpu = SimulatedQpu {
            parallel: false,
            schedule: AnnealSchedule::fast(),
            ..SimulatedQpu::default()
        };
        let a = qpu.sample(&model, 16, 3);
        let b = qpu.sample(&model, 16, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_serial_sampling_agree() {
        let model = small_model(6);
        let serial = SimulatedQpu {
            parallel: false,
            schedule: AnnealSchedule::fast(),
            ..SimulatedQpu::default()
        };
        let parallel = SimulatedQpu {
            parallel: true,
            schedule: AnnealSchedule::fast(),
            ..SimulatedQpu::default()
        };
        assert_eq!(serial.sample(&model, 24, 9), parallel.sample(&model, 24, 9));
    }

    #[test]
    fn enough_reads_reach_the_exact_optimum() {
        let model = small_model(11);
        let (exact, _, _) = solve_ising_exact(&model);
        let qpu = SimulatedQpu::with_schedule(AnnealSchedule::thorough());
        let set = qpu.sample(&model, 32, 1);
        assert!(set.best_energy().unwrap() <= exact + 1e-9);
    }

    #[test]
    fn report_contains_hardware_and_simulation_costs() {
        let model = small_model(2);
        let qpu = SimulatedQpu::with_schedule(AnnealSchedule::fast());
        let (set, report) = qpu.sample_with_report(&model, 10, 4);
        assert_eq!(set.num_reads(), 10);
        assert_eq!(report.reads, 10);
        assert!(report.modeled_seconds > qpu.timings.processor_initialize_seconds());
        assert!(report.simulation_seconds >= 0.0);
        assert_eq!(report.updates, 10 * 12 * qpu.schedule.sweeps as u64);
    }

    #[test]
    fn zero_reads_produce_empty_set() {
        let model = small_model(3);
        let qpu = SimulatedQpu::default();
        let (set, report) = qpu.sample_with_report(&model, 0, 0);
        assert_eq!(set.num_reads(), 0);
        assert_eq!(report.reads, 0);
    }
}
