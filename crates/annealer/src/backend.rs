//! Pluggable sampler backends — the interchangeable stage 2 of the paper's
//! split-execution pipeline.
//!
//! The paper frames the QPU as one replaceable component of a three-stage
//! system; this module makes that concrete: a [`SamplerBackend`] is anything
//! that can turn an Ising program plus [`SampleParams`] into a ranked
//! [`SampleSet`] and report the hardware time the paper's constants would
//! charge for that access.  Three implementations ship:
//!
//! * [`SimulatedQpu`] — the default simulated-annealing QPU (one read = one
//!   hardware anneal),
//! * [`ParallelTemperingBackend`] — a stronger classical sampler (one read =
//!   one replica-exchange run), the "better software solver" reference point
//!   of the ablation studies,
//! * [`ExactEnumerationBackend`] — brute-force ground-state enumeration for
//!   small programs, the oracle the parity tests compare against.
//!
//! [`BackendKind`] names the built-in backends, parses from CLI/env strings
//! (`FromStr`/`Display`) and builds boxed instances, so binaries can select
//! stage 2 per job without code changes.

use crate::pt::{parallel_tempering, PtConfig};
use crate::sampler::{QpuAccessReport, SampleSet, SimulatedQpu};
use crate::schedule::AnnealSchedule;
use crate::timing::QpuTimings;
use qubo_ising::{solve_ising_exact, Ising, Spin};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Parameters of one batched sampling request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleParams {
    /// Number of statistically independent reads to draw (Eq. 6 repetitions).
    pub num_reads: usize,
    /// Base seed; read `i` derives its stream from `seed + i`, so results
    /// are deterministic and independent of read-level parallelism.
    pub seed: u64,
    /// Characteristic magnitude of the programmed parameters.  Backends with
    /// unit-scale temperature schedules multiply them by this factor so the
    /// dynamics explore rather than quench (embedded programs deliberately
    /// make chain couplings the largest parameters).
    pub energy_scale: f64,
}

impl SampleParams {
    /// Parameters for `num_reads` reads at unit energy scale.
    pub fn new(num_reads: usize, seed: u64) -> Self {
        Self {
            num_reads,
            seed,
            energy_scale: 1.0,
        }
    }

    /// Builder-style energy-scale override (clamped below at 1 so unit-scale
    /// problems keep their schedules).
    pub fn with_energy_scale(mut self, scale: f64) -> Self {
        self.energy_scale = scale.max(1.0);
        self
    }
}

/// Errors a sampler backend can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerError {
    /// The program exceeds the backend's capacity (e.g. exact enumeration
    /// past its spin cap).
    TooLarge {
        /// Spins in the rejected program.
        spins: usize,
        /// The backend's capacity.
        max_spins: usize,
    },
    /// The request is outside what the backend supports.
    Unsupported(String),
}

impl fmt::Display for SamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerError::TooLarge { spins, max_spins } => write!(
                f,
                "program of {spins} spins exceeds the backend capacity of {max_spins}"
            ),
            SamplerError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
        }
    }
}

impl std::error::Error for SamplerError {}

/// Anything that can serve as stage 2 of the split-execution pipeline.
///
/// Implementations must be deterministic in `params.seed` and safe to share
/// across threads (`Send + Sync`), since batch submission fans jobs out over
/// a thread pool against one shared backend instance.
pub trait SamplerBackend: fmt::Debug + Send + Sync {
    /// Stable, human-readable backend name (also the `Display` form of the
    /// corresponding [`BackendKind`] for built-ins).
    fn name(&self) -> &'static str;

    /// Draw `params.num_reads` reads from `ising`, aggregated best-first.
    fn sample(&self, ising: &Ising, params: &SampleParams) -> Result<SampleSet, SamplerError>;

    /// The hardware timing constants this backend models.
    fn timings(&self) -> &QpuTimings;

    /// Timing hook: modeled QPU-access seconds (programming + anneals +
    /// readout) for a request of `reads` reads, per the paper's constants.
    fn modeled_access_seconds(&self, reads: usize) -> f64 {
        self.timings().total_access_seconds(reads)
    }

    /// Sample and report both the modeled hardware access time and the
    /// wall-clock simulation cost.  The default implementation wraps
    /// [`SamplerBackend::sample`] with a timer and reports zero spin-update
    /// work; backends that count updates override it.
    fn sample_with_report(
        &self,
        ising: &Ising,
        params: &SampleParams,
    ) -> Result<(SampleSet, QpuAccessReport), SamplerError> {
        // sx-lint: allow(D001) -- times a real sampler execution (host wall clock), not simulated virtual time
        let start = std::time::Instant::now();
        let set = self.sample(ising, params)?;
        let report = QpuAccessReport {
            reads: params.num_reads,
            modeled_seconds: self.modeled_access_seconds(params.num_reads),
            simulation_seconds: start.elapsed().as_secs_f64(),
            updates: 0,
        };
        Ok((set, report))
    }
}

impl SamplerBackend for SimulatedQpu {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn sample(&self, ising: &Ising, params: &SampleParams) -> Result<SampleSet, SamplerError> {
        SamplerBackend::sample_with_report(self, ising, params).map(|(set, _)| set)
    }

    fn timings(&self) -> &QpuTimings {
        &self.timings
    }

    fn sample_with_report(
        &self,
        ising: &Ising,
        params: &SampleParams,
    ) -> Result<(SampleSet, QpuAccessReport), SamplerError> {
        let scaled = self.with_temperature_scale(params.energy_scale.max(1.0));
        Ok(SimulatedQpu::sample_with_report(
            &scaled,
            ising,
            params.num_reads,
            params.seed,
        ))
    }
}

/// Parallel tempering as a stage-2 backend: each read is one independent
/// replica-exchange run seeded from `seed + read_index`, reporting the best
/// configuration that run visited.
#[derive(Debug, Clone)]
pub struct ParallelTemperingBackend {
    /// Replica-exchange configuration (temperatures are in units of the
    /// problem's energy scale and rescaled per request).
    pub config: PtConfig,
    /// Hardware timing constants used for modeled access times.
    pub timings: QpuTimings,
    /// Whether to distribute reads across the thread pool.
    pub parallel: bool,
}

impl Default for ParallelTemperingBackend {
    fn default() -> Self {
        Self {
            config: PtConfig::default(),
            timings: QpuTimings::default(),
            parallel: true,
        }
    }
}

impl ParallelTemperingBackend {
    /// A backend with a specific replica-exchange configuration.
    pub fn with_config(config: PtConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }
}

impl SamplerBackend for ParallelTemperingBackend {
    fn name(&self) -> &'static str {
        "parallel-tempering"
    }

    fn timings(&self) -> &QpuTimings {
        &self.timings
    }

    fn sample(&self, ising: &Ising, params: &SampleParams) -> Result<SampleSet, SamplerError> {
        self.sample_with_report(ising, params).map(|(set, _)| set)
    }

    fn sample_with_report(
        &self,
        ising: &Ising,
        params: &SampleParams,
    ) -> Result<(SampleSet, QpuAccessReport), SamplerError> {
        // sx-lint: allow(D001) -- times a real sampler execution (host wall clock), not simulated virtual time
        let start = std::time::Instant::now();
        let scale = params.energy_scale.max(1.0);
        let mut config = self.config;
        config.min_temperature *= scale;
        config.max_temperature *= scale;
        let run_read = |i: usize| {
            let result = parallel_tempering(ising, &config, params.seed.wrapping_add(i as u64));
            (result.best_spins, result.best_energy, result.updates)
        };
        let raw: Vec<(Vec<Spin>, f64, u64)> = if self.parallel {
            (0..params.num_reads)
                .into_par_iter()
                .map(run_read)
                .collect()
        } else {
            (0..params.num_reads).map(run_read).collect()
        };
        let updates = raw.iter().map(|r| r.2).sum();
        let set = SampleSet::from_reads(raw.into_iter().map(|(s, e, _)| (s, e)).collect());
        let report = QpuAccessReport {
            reads: params.num_reads,
            modeled_seconds: self.modeled_access_seconds(params.num_reads),
            simulation_seconds: start.elapsed().as_secs_f64(),
            updates,
        };
        Ok((set, report))
    }
}

/// Brute-force ground-state enumeration as a stage-2 backend.
///
/// Every read "observes" the true optimum, so the returned ensemble is a
/// single record with multiplicity `num_reads`.  Embedded programs are
/// expressed over the whole hardware register, so enumeration is restricted
/// to the *active* spins — those carrying a field or touched by a coupling;
/// inactive spins contribute no energy and are reported as +1.  Rejects
/// programs whose active size exceeds
/// [`ExactEnumerationBackend::max_spins`] (the 2ⁿ walk is exponential); the
/// seed is ignored — the backend is an oracle, not a sampler.
#[derive(Debug, Clone)]
pub struct ExactEnumerationBackend {
    /// Largest *active* program size accepted (default 24 ≈ 16M states).
    pub max_spins: usize,
    /// Hardware timing constants used for modeled access times.
    pub timings: QpuTimings,
}

impl Default for ExactEnumerationBackend {
    fn default() -> Self {
        Self {
            max_spins: 24,
            timings: QpuTimings::default(),
        }
    }
}

impl ExactEnumerationBackend {
    /// A backend accepting programs of up to `max_spins` spins.
    pub fn with_max_spins(max_spins: usize) -> Self {
        Self {
            max_spins,
            ..Self::default()
        }
    }
}

impl SamplerBackend for ExactEnumerationBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn timings(&self) -> &QpuTimings {
        &self.timings
    }

    fn sample(&self, ising: &Ising, params: &SampleParams) -> Result<SampleSet, SamplerError> {
        let n = ising.num_spins();
        // Restrict enumeration to spins that can affect the energy.
        let mut active = vec![false; n];
        for (i, h) in ising.fields().enumerate() {
            if h != 0.0 {
                active[i] = true;
            }
        }
        for ((u, v), j) in ising.couplings() {
            if j != 0.0 {
                active[u] = true;
                active[v] = true;
            }
        }
        let index: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if index.len() > self.max_spins {
            return Err(SamplerError::TooLarge {
                spins: index.len(),
                max_spins: self.max_spins,
            });
        }
        if params.num_reads == 0 {
            return Ok(SampleSet::default());
        }
        let mut position = vec![usize::MAX; n];
        for (k, &i) in index.iter().enumerate() {
            position[i] = k;
        }
        let mut compact = Ising::new(index.len());
        for &i in &index {
            compact.set_field(position[i], ising.field(i));
        }
        for ((u, v), j) in ising.couplings() {
            if j != 0.0 {
                compact.set_coupling(position[u], position[v], j);
            }
        }
        let (energy, compact_ground, _evaluated) = solve_ising_exact(&compact);
        let mut ground: Vec<Spin> = vec![1; n];
        for &i in &index {
            ground[i] = compact_ground[position[i]];
        }
        let reads = std::iter::repeat_n((ground, energy), params.num_reads).collect();
        Ok(SampleSet::from_reads(reads))
    }
}

/// Names for the built-in backends, for configs, CLIs and env vars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// [`SimulatedQpu`] — simulated annealing (the default QPU stand-in).
    #[default]
    SimulatedAnnealing,
    /// [`ParallelTemperingBackend`] — replica exchange.
    ParallelTempering,
    /// [`ExactEnumerationBackend`] — brute force for small programs.
    Exact,
}

impl BackendKind {
    /// All built-in kinds.
    pub fn all() -> [BackendKind; 3] {
        [
            BackendKind::SimulatedAnnealing,
            BackendKind::ParallelTempering,
            BackendKind::Exact,
        ]
    }

    /// Build this backend with default settings.
    pub fn build(&self) -> Arc<dyn SamplerBackend> {
        self.build_with_schedule(AnnealSchedule::default())
    }

    /// Build this backend; the schedule parameterizes the simulated-annealing
    /// kind (the others have their own knobs and ignore it).
    pub fn build_with_schedule(&self, schedule: AnnealSchedule) -> Arc<dyn SamplerBackend> {
        match self {
            BackendKind::SimulatedAnnealing => Arc::new(SimulatedQpu::with_schedule(schedule)),
            BackendKind::ParallelTempering => Arc::new(ParallelTemperingBackend::default()),
            BackendKind::Exact => Arc::new(ExactEnumerationBackend::default()),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BackendKind::SimulatedAnnealing => "simulated-annealing",
            BackendKind::ParallelTempering => "parallel-tempering",
            BackendKind::Exact => "exact",
        };
        f.write_str(name)
    }
}

/// Error returned when a backend name does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown sampler backend '{}' (expected one of: sa, pt, exact)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sa" | "simulated-annealing" | "simulated_annealing" | "anneal" => {
                Ok(BackendKind::SimulatedAnnealing)
            }
            "pt" | "parallel-tempering" | "parallel_tempering" | "tempering" => {
                Ok(BackendKind::ParallelTempering)
            }
            "exact" | "exact-enumeration" | "exact_enumeration" | "brute-force" => {
                Ok(BackendKind::Exact)
            }
            _ => Err(ParseBackendError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    fn small_model(seed: u64) -> Ising {
        Ising::random_on_graph(&generators::gnp(10, 0.4, seed), seed + 1)
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in BackendKind::all() {
            let parsed: BackendKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "sa".parse::<BackendKind>().unwrap(),
            BackendKind::SimulatedAnnealing
        );
        assert_eq!(
            "PT".parse::<BackendKind>().unwrap(),
            BackendKind::ParallelTempering
        );
        assert_eq!("Exact".parse::<BackendKind>().unwrap(), BackendKind::Exact);
        let err = "quantum".parse::<BackendKind>().unwrap_err();
        assert!(err.to_string().contains("quantum"));
    }

    #[test]
    fn built_backends_report_their_kind_names() {
        for kind in BackendKind::all() {
            let backend = kind.build();
            assert_eq!(backend.name(), kind.to_string());
        }
    }

    #[test]
    fn all_backends_agree_on_a_small_ground_state() {
        let model = small_model(4);
        let (exact_energy, _, _) = solve_ising_exact(&model);
        let params = SampleParams::new(16, 7);
        for kind in BackendKind::all() {
            let backend = kind.build();
            let set = backend.sample(&model, &params).unwrap();
            assert_eq!(set.num_reads(), 16, "{kind}");
            assert!(
                set.best_energy().unwrap() <= exact_energy + 1e-9,
                "{kind}: best {} vs exact {exact_energy}",
                set.best_energy().unwrap()
            );
        }
    }

    #[test]
    fn backends_are_deterministic_in_seed() {
        let model = small_model(9);
        let params = SampleParams::new(8, 3);
        for kind in BackendKind::all() {
            let backend = kind.build();
            let a = backend.sample(&model, &params).unwrap();
            let b = backend.sample(&model, &params).unwrap();
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn exact_backend_rejects_large_programs() {
        let backend = ExactEnumerationBackend::with_max_spins(8);
        let model = small_model(1); // 10 spins > 8
        let err = backend
            .sample(&model, &SampleParams::new(1, 0))
            .unwrap_err();
        assert_eq!(
            err,
            SamplerError::TooLarge {
                spins: 10,
                max_spins: 8
            }
        );
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn exact_backend_collapses_reads_into_one_record() {
        let backend = ExactEnumerationBackend::default();
        let model = small_model(5);
        let set = backend.sample(&model, &SampleParams::new(32, 0)).unwrap();
        assert_eq!(set.records.len(), 1);
        assert_eq!(set.num_reads(), 32);
        let empty = backend.sample(&model, &SampleParams::new(0, 0)).unwrap();
        assert_eq!(empty.num_reads(), 0);
    }

    #[test]
    fn reports_carry_modeled_and_simulated_time() {
        let model = small_model(6);
        let params = SampleParams::new(4, 11);
        for kind in BackendKind::all() {
            let backend = kind.build();
            let (set, report) = backend.sample_with_report(&model, &params).unwrap();
            assert_eq!(set.num_reads(), 4, "{kind}");
            assert_eq!(report.reads, 4);
            assert!(report.modeled_seconds > 0.0);
            assert!(report.simulation_seconds >= 0.0);
            assert!((report.modeled_seconds - backend.modeled_access_seconds(4)).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_scale_is_clamped_and_applied() {
        // A strongly coupled model quenches under a unit-scale schedule; the
        // energy-scale hint restores exploration.  Behavioral check: both
        // scales still sample deterministically and find the ground state on
        // a tiny ferromagnet.
        let mut model = Ising::new(4);
        for i in 0..3 {
            model.set_coupling(i, i + 1, -50.0);
        }
        let (exact_energy, _, _) = solve_ising_exact(&model);
        let backend = BackendKind::SimulatedAnnealing.build();
        let params = SampleParams::new(8, 2).with_energy_scale(50.0);
        let set = backend.sample(&model, &params).unwrap();
        assert!(set.best_energy().unwrap() <= exact_energy + 1e-9);
        // with_energy_scale clamps below at 1.
        assert_eq!(
            SampleParams::new(1, 0).with_energy_scale(0.01).energy_scale,
            1.0
        );
    }

    #[test]
    fn parallel_and_serial_pt_reads_agree() {
        let model = small_model(8);
        let serial = ParallelTemperingBackend {
            parallel: false,
            ..ParallelTemperingBackend::default()
        };
        let parallel = ParallelTemperingBackend::default();
        let params = SampleParams::new(6, 13);
        assert_eq!(
            serial.sample(&model, &params).unwrap(),
            parallel.sample(&model, &params).unwrap()
        );
    }
}
