//! Annealing schedules.
//!
//! The hardware exposes a limited family of annealing waveforms (Sec. 2.2:
//! "Limitations on the hardware control system do not allow for arbitrary
//! waveforms and duration but restrict these options to pre-defined
//! ranges").  The simulated QPU mirrors that: a schedule is a monotone
//! temperature ramp described by a small set of parameters, with the default
//! matching the D-Wave default 20 µs anneal.

use serde::{Deserialize, Serialize};

/// Default hardware anneal duration in microseconds (the D-Wave default used
/// by the paper's Fig. 5 QuOps model).
pub const DEFAULT_ANNEAL_MICROSECONDS: f64 = 20.0;

/// Allowed range of anneal durations in microseconds (pre-defined hardware
/// range).
pub const ANNEAL_RANGE_MICROSECONDS: (f64, f64) = (5.0, 2000.0);

/// How the effective temperature interpolates between its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScheduleShape {
    /// Geometric (exponential) interpolation — the classic SA cooling law.
    #[default]
    Geometric,
    /// Linear interpolation in temperature.
    Linear,
}

/// An annealing schedule for the simulated QPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealSchedule {
    /// Starting (hot) temperature in units of the largest problem energy
    /// scale.
    pub initial_temperature: f64,
    /// Final (cold) temperature.
    pub final_temperature: f64,
    /// Number of Monte-Carlo sweeps performed over the register.
    pub sweeps: usize,
    /// Interpolation shape.
    pub shape: ScheduleShape,
    /// Nominal hardware duration this schedule represents, in microseconds
    /// (used by the timing model, not by the dynamics).
    pub anneal_microseconds: f64,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        Self {
            initial_temperature: 10.0,
            final_temperature: 0.05,
            sweeps: 256,
            shape: ScheduleShape::Geometric,
            anneal_microseconds: DEFAULT_ANNEAL_MICROSECONDS,
        }
    }
}

impl AnnealSchedule {
    /// A short, low-quality schedule useful in tests.
    pub fn fast() -> Self {
        Self {
            sweeps: 32,
            ..Self::default()
        }
    }

    /// A longer schedule with more sweeps (higher per-read success
    /// probability, higher simulation cost).
    pub fn thorough() -> Self {
        Self {
            sweeps: 2048,
            ..Self::default()
        }
    }

    /// Set the nominal hardware duration, clamped to the hardware's allowed
    /// range.
    pub fn with_anneal_microseconds(mut self, us: f64) -> Self {
        self.anneal_microseconds =
            us.clamp(ANNEAL_RANGE_MICROSECONDS.0, ANNEAL_RANGE_MICROSECONDS.1);
        self
    }

    /// Set the number of sweeps.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// Temperature at sweep `step` (0-based).  Monotonically non-increasing.
    pub fn temperature(&self, step: usize) -> f64 {
        if self.sweeps <= 1 {
            return self.final_temperature;
        }
        let t = step.min(self.sweeps - 1) as f64 / (self.sweeps - 1) as f64;
        match self.shape {
            ScheduleShape::Geometric => {
                let ratio = self.final_temperature / self.initial_temperature;
                self.initial_temperature * ratio.powf(t)
            }
            ScheduleShape::Linear => {
                self.initial_temperature + (self.final_temperature - self.initial_temperature) * t
            }
        }
    }

    /// The full temperature trajectory.
    pub fn temperatures(&self) -> Vec<f64> {
        (0..self.sweeps).map(|s| self.temperature(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_hardware_constant() {
        let s = AnnealSchedule::default();
        assert_eq!(s.anneal_microseconds, DEFAULT_ANNEAL_MICROSECONDS);
        assert!(s.sweeps > 0);
    }

    #[test]
    fn temperature_endpoints() {
        let s = AnnealSchedule::default();
        assert!((s.temperature(0) - s.initial_temperature).abs() < 1e-12);
        assert!((s.temperature(s.sweeps - 1) - s.final_temperature).abs() < 1e-9);
        // Steps beyond the end stay at the final temperature.
        assert!((s.temperature(s.sweeps + 100) - s.final_temperature).abs() < 1e-9);
    }

    #[test]
    fn geometric_schedule_is_monotone_decreasing() {
        let s = AnnealSchedule::default();
        let temps = s.temperatures();
        assert!(temps.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn linear_schedule_is_monotone_decreasing() {
        let s = AnnealSchedule {
            shape: ScheduleShape::Linear,
            ..AnnealSchedule::default()
        };
        let temps = s.temperatures();
        assert!(temps.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // Midpoint of a linear ramp is the arithmetic mean of the endpoints.
        let mid = s.temperature((s.sweeps - 1) / 2);
        let mean = (s.initial_temperature + s.final_temperature) / 2.0;
        assert!((mid - mean).abs() < 0.1);
    }

    #[test]
    fn anneal_duration_is_clamped_to_hardware_range() {
        let s = AnnealSchedule::default().with_anneal_microseconds(1.0);
        assert_eq!(s.anneal_microseconds, ANNEAL_RANGE_MICROSECONDS.0);
        let s = AnnealSchedule::default().with_anneal_microseconds(1e9);
        assert_eq!(s.anneal_microseconds, ANNEAL_RANGE_MICROSECONDS.1);
        let s = AnnealSchedule::default().with_anneal_microseconds(100.0);
        assert_eq!(s.anneal_microseconds, 100.0);
    }

    #[test]
    fn single_sweep_schedule_is_cold() {
        let s = AnnealSchedule::default().with_sweeps(1);
        assert_eq!(s.temperature(0), s.final_temperature);
        assert_eq!(s.temperatures().len(), 1);
    }

    #[test]
    fn with_sweeps_enforces_minimum() {
        assert_eq!(AnnealSchedule::default().with_sweeps(0).sweeps, 1);
    }

    #[test]
    fn fast_and_thorough_presets_differ_in_sweeps() {
        assert!(AnnealSchedule::thorough().sweeps > AnnealSchedule::fast().sweeps);
    }
}
