//! Sampling statistics: the paper's Eq. (6), success-probability
//! estimation, and the small order-statistics helpers (percentiles,
//! histograms) shared by the benchmark and cluster-simulation metrics.
//!
//! The QPU is "effectively a probabilistic processor" (Sec. 3.2): a single
//! read lands in the ground state with some characteristic probability
//! `p_s`, so the number of repetitions needed to see the ground state at
//! least once with confidence `p_a` is
//!
//! ```text
//! s ≥ log(1 − p_a) / log(1 − p_s)          (Eq. 6)
//! ```

use serde::{Deserialize, Serialize};

/// Compute the repetition count of Eq. (6): the minimum number of
/// statistically independent reads needed so that the probability of having
/// observed the ground state at least once reaches `accuracy`, given a
/// per-read success probability `success`.
///
/// Edge cases follow the obvious limits: a certain per-read success needs one
/// read; an impossible per-read success (or an accuracy of 1.0) cannot be
/// satisfied and saturates to `usize::MAX`; a non-positive accuracy needs no
/// reads beyond the one always performed.
pub fn required_reads(accuracy: f64, success: f64) -> usize {
    if !(0.0..=1.0).contains(&accuracy) || !(0.0..=1.0).contains(&success) {
        // Out-of-range inputs are clamped to the nearest meaningful value.
        return required_reads(accuracy.clamp(0.0, 1.0), success.clamp(0.0, 1.0));
    }
    if accuracy <= 0.0 {
        return 1;
    }
    if success >= 1.0 {
        return 1;
    }
    if success <= 0.0 || accuracy >= 1.0 {
        return usize::MAX;
    }
    let s = (1.0 - accuracy).ln() / (1.0 - success).ln();
    (s.ceil() as usize).max(1)
}

/// The probability of having observed the ground state at least once after
/// `reads` independent reads with per-read success probability `success`.
pub fn achieved_accuracy(reads: usize, success: f64) -> f64 {
    let success = success.clamp(0.0, 1.0);
    1.0 - (1.0 - success).powi(reads.min(i32::MAX as usize) as i32)
}

/// Estimate of the per-read success probability from an observed ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessEstimate {
    /// Fraction of reads that reached the reference energy.
    pub p_success: f64,
    /// Number of reads that reached the reference energy.
    pub hits: usize,
    /// Total reads in the ensemble.
    pub reads: usize,
}

/// Estimate `p_s` by counting how many sampled energies reach `ground_energy`
/// within `tolerance`.
pub fn estimate_success_probability(
    energies: &[f64],
    ground_energy: f64,
    tolerance: f64,
) -> SuccessEstimate {
    let hits = energies
        .iter()
        .filter(|&&e| e <= ground_energy + tolerance)
        .count();
    SuccessEstimate {
        p_success: if energies.is_empty() {
            0.0
        } else {
            hits as f64 / energies.len() as f64
        },
        hits,
        reads: energies.len(),
    }
}

/// The `p`-th percentile of `samples` (linear interpolation between closest
/// ranks, the common "type 7" estimator), or `None` when `samples` is empty.
///
/// `p` is a fraction in `[0, 1]` and is clamped to that range; `0.0` returns
/// the minimum and `1.0` the maximum.  The input need not be sorted — a
/// sorted copy is made internally, so callers with an already-sorted slice
/// should prefer [`percentile_sorted`].
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over a slice the caller has already sorted ascending.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// A fixed-range histogram with uniform bins, for latency and queue-depth
/// distributions.  Values below the range land in the first bin and values
/// above it in the last, so every added sample is counted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the range.
    pub lo: f64,
    /// Exclusive upper edge of the range (values `>= hi` clamp to the last
    /// bin).
    pub hi: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
    /// Total number of samples added.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `lo >= hi` — a degenerate histogram is a
    /// caller bug, not a runtime condition.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is empty: [{lo}, {hi})");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Build a histogram over the full range of `samples` (no-op bins when
    /// the slice is empty).
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if samples.is_empty() {
            (0.0, 1.0)
        } else if lo == hi {
            // Constant data: a unit-wide interval starting at the value.
            (lo, lo + 1.0)
        } else {
            (lo, hi)
        };
        let mut h = Self::new(lo, hi, bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// The index of the bin that `value` falls into (clamped to the range).
    pub fn bin_index(&self, value: f64) -> usize {
        let span = self.hi - self.lo;
        let raw = ((value - self.lo) / span * self.bins.len() as f64).floor();
        (raw.max(0.0) as usize).min(self.bins.len() - 1)
    }

    /// Count one sample.
    pub fn add(&mut self, value: f64) {
        let idx = self.bin_index(value);
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// The `(lower, upper)` edges of bin `idx`.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + idx as f64 * width,
            self.lo + (idx + 1) as f64 * width,
        )
    }

    /// Fraction of all samples in bin `idx` (0 when the histogram is empty).
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[idx] as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_matches_paper_examples() {
        // ps = 0.7, pa = 0.99: ceil(ln(0.01)/ln(0.3)) = 4 reads.
        assert_eq!(required_reads(0.99, 0.7), 4);
        // ps = 0.75, pa = 0.99 (the paper's Stage-3 defaults): 4 reads.
        assert_eq!(required_reads(0.99, 0.75), 4);
        // ps = 0.9999, pa = 0.99 (the Stage-2 listing defaults): 1 read.
        assert_eq!(required_reads(0.99, 0.9999), 1);
    }

    #[test]
    fn eq6_needs_more_reads_for_higher_accuracy() {
        let reads: Vec<usize> = [0.9, 0.99, 0.999, 0.9999, 0.99999]
            .iter()
            .map(|&pa| required_reads(pa, 0.7))
            .collect();
        assert!(reads.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(reads[0], 2);
    }

    #[test]
    fn eq6_needs_more_reads_for_lower_success() {
        let reads: Vec<usize> = [0.9, 0.7, 0.5, 0.3, 0.1, 0.01]
            .iter()
            .map(|&ps| required_reads(0.99, ps))
            .collect();
        assert!(reads.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*reads.last().unwrap(), 459);
    }

    #[test]
    fn eq6_insensitive_above_point_six() {
        // The paper notes the stage-2 curve is approximately the same for all
        // ps > 0.6 because so few reads are needed.
        for ps in [0.6, 0.7, 0.8, 0.9, 0.99] {
            assert!(required_reads(0.99, ps) <= 6);
        }
    }

    #[test]
    fn eq6_edge_cases() {
        assert_eq!(required_reads(0.0, 0.5), 1);
        assert_eq!(required_reads(-1.0, 0.5), 1);
        assert_eq!(required_reads(0.99, 1.0), 1);
        assert_eq!(required_reads(0.99, 1.5), 1);
        assert_eq!(required_reads(0.99, 0.0), usize::MAX);
        assert_eq!(required_reads(1.0, 0.5), usize::MAX);
    }

    #[test]
    fn achieved_accuracy_inverts_required_reads() {
        for &(pa, ps) in &[(0.9, 0.3), (0.99, 0.7), (0.999, 0.5)] {
            let reads = required_reads(pa, ps);
            assert!(achieved_accuracy(reads, ps) >= pa);
            if reads > 1 {
                assert!(achieved_accuracy(reads - 1, ps) < pa);
            }
        }
    }

    #[test]
    fn success_estimation_counts_hits() {
        let energies = [-5.0, -4.9, -5.0, -3.0, -5.0];
        let est = estimate_success_probability(&energies, -5.0, 1e-9);
        assert_eq!(est.hits, 3);
        assert_eq!(est.reads, 5);
        assert!((est.p_success - 0.6).abs() < 1e-12);
    }

    #[test]
    fn success_estimation_empty_ensemble() {
        let est = estimate_success_probability(&[], -1.0, 0.0);
        assert_eq!(est.p_success, 0.0);
        assert_eq!(est.reads, 0);
    }

    #[test]
    fn percentile_of_empty_slice_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[], 0.5), None);
    }

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        // Out-of-range fractions clamp rather than panic.
        assert_eq!(percentile(&xs, -0.5), Some(1.0));
        assert_eq!(percentile(&xs, 2.0), Some(5.0));
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // rank = 0.5 * 3 = 1.5 → halfway between 2.0 and 3.0.
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        // rank = 0.25 * 3 = 0.75 → 1.75.
        assert!((percentile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let shuffled = [9.0, 1.0, 7.0, 3.0, 5.0];
        let sorted = [1.0, 3.0, 5.0, 7.0, 9.0];
        for p in [0.1, 0.5, 0.9, 0.95, 0.99] {
            assert_eq!(percentile(&shuffled, p), percentile_sorted(&sorted, p));
        }
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 0.5), Some(42.0));
        assert_eq!(percentile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, 15.0, -3.0] {
            h.add(x);
        }
        assert_eq!(h.count, 7);
        // -3.0 clamps into bin 0; 10.0 and 15.0 clamp into the last bin.
        assert_eq!(h.bins, vec![3, 1, 0, 0, 3]);
        assert!((h.fraction(0) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_edges_partition_the_range() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 2.5));
        assert_eq!(h.bin_edges(3), (3.5, 4.0));
        assert_eq!(h.bin_index(2.5), 1);
        assert_eq!(h.bin_index(3.999), 3);
    }

    #[test]
    fn histogram_from_samples_covers_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let h = Histogram::from_samples(&xs, 3);
        assert_eq!(h.count, 4);
        assert_eq!(h.bins.iter().sum::<u64>(), 4);
        assert_eq!(h.lo, 1.0);
        assert_eq!(h.hi, 4.0);
    }

    #[test]
    fn histogram_from_degenerate_samples() {
        let empty = Histogram::from_samples(&[], 4);
        assert_eq!(empty.count, 0);
        let constant = Histogram::from_samples(&[2.0, 2.0, 2.0], 4);
        assert_eq!(constant.count, 3);
        assert_eq!(constant.bins.iter().sum::<u64>(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Percentiles are order statistics: for any sample set the summary
        /// points are mutually ordered and bracketed by the extremes,
        /// `min ≤ p50 ≤ p95 ≤ p99 ≤ max`.
        #[test]
        fn percentile_bounds_hold(samples in vec(-1e6f64..1e6, 1..200)) {
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let p50 = percentile(&samples, 0.50).unwrap();
            let p95 = percentile(&samples, 0.95).unwrap();
            let p99 = percentile(&samples, 0.99).unwrap();
            prop_assert!(min <= p50, "min {min} > p50 {p50}");
            prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
            prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
            prop_assert!(p99 <= max, "p99 {p99} > max {max}");
            prop_assert_eq!(percentile(&samples, 0.0).unwrap(), min);
            prop_assert_eq!(percentile(&samples, 1.0).unwrap(), max);
        }

        /// Percentiles are monotone in `p` over a dense grid, not just the
        /// headline points.
        #[test]
        fn percentile_is_monotone_in_p(samples in vec(-1e3f64..1e3, 1..100)) {
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
            for pair in grid.windows(2) {
                let lo = percentile_sorted(&sorted, pair[0]).unwrap();
                let hi = percentile_sorted(&sorted, pair[1]).unwrap();
                prop_assert!(lo <= hi, "percentile({}) = {lo} > percentile({}) = {hi}", pair[0], pair[1]);
            }
        }
    }
}
