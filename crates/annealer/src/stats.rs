//! Sampling statistics: the paper's Eq. (6) and success-probability
//! estimation.
//!
//! The QPU is "effectively a probabilistic processor" (Sec. 3.2): a single
//! read lands in the ground state with some characteristic probability
//! `p_s`, so the number of repetitions needed to see the ground state at
//! least once with confidence `p_a` is
//!
//! ```text
//! s ≥ log(1 − p_a) / log(1 − p_s)          (Eq. 6)
//! ```

use serde::{Deserialize, Serialize};

/// Compute the repetition count of Eq. (6): the minimum number of
/// statistically independent reads needed so that the probability of having
/// observed the ground state at least once reaches `accuracy`, given a
/// per-read success probability `success`.
///
/// Edge cases follow the obvious limits: a certain per-read success needs one
/// read; an impossible per-read success (or an accuracy of 1.0) cannot be
/// satisfied and saturates to `usize::MAX`; a non-positive accuracy needs no
/// reads beyond the one always performed.
pub fn required_reads(accuracy: f64, success: f64) -> usize {
    if !(0.0..=1.0).contains(&accuracy) || !(0.0..=1.0).contains(&success) {
        // Out-of-range inputs are clamped to the nearest meaningful value.
        return required_reads(accuracy.clamp(0.0, 1.0), success.clamp(0.0, 1.0));
    }
    if accuracy <= 0.0 {
        return 1;
    }
    if success >= 1.0 {
        return 1;
    }
    if success <= 0.0 || accuracy >= 1.0 {
        return usize::MAX;
    }
    let s = (1.0 - accuracy).ln() / (1.0 - success).ln();
    (s.ceil() as usize).max(1)
}

/// The probability of having observed the ground state at least once after
/// `reads` independent reads with per-read success probability `success`.
pub fn achieved_accuracy(reads: usize, success: f64) -> f64 {
    let success = success.clamp(0.0, 1.0);
    1.0 - (1.0 - success).powi(reads.min(i32::MAX as usize) as i32)
}

/// Estimate of the per-read success probability from an observed ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessEstimate {
    /// Fraction of reads that reached the reference energy.
    pub p_success: f64,
    /// Number of reads that reached the reference energy.
    pub hits: usize,
    /// Total reads in the ensemble.
    pub reads: usize,
}

/// Estimate `p_s` by counting how many sampled energies reach `ground_energy`
/// within `tolerance`.
pub fn estimate_success_probability(
    energies: &[f64],
    ground_energy: f64,
    tolerance: f64,
) -> SuccessEstimate {
    let hits = energies
        .iter()
        .filter(|&&e| e <= ground_energy + tolerance)
        .count();
    SuccessEstimate {
        p_success: if energies.is_empty() {
            0.0
        } else {
            hits as f64 / energies.len() as f64
        },
        hits,
        reads: energies.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_matches_paper_examples() {
        // ps = 0.7, pa = 0.99: ceil(ln(0.01)/ln(0.3)) = 4 reads.
        assert_eq!(required_reads(0.99, 0.7), 4);
        // ps = 0.75, pa = 0.99 (the paper's Stage-3 defaults): 4 reads.
        assert_eq!(required_reads(0.99, 0.75), 4);
        // ps = 0.9999, pa = 0.99 (the Stage-2 listing defaults): 1 read.
        assert_eq!(required_reads(0.99, 0.9999), 1);
    }

    #[test]
    fn eq6_needs_more_reads_for_higher_accuracy() {
        let reads: Vec<usize> = [0.9, 0.99, 0.999, 0.9999, 0.99999]
            .iter()
            .map(|&pa| required_reads(pa, 0.7))
            .collect();
        assert!(reads.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(reads[0], 2);
    }

    #[test]
    fn eq6_needs_more_reads_for_lower_success() {
        let reads: Vec<usize> = [0.9, 0.7, 0.5, 0.3, 0.1, 0.01]
            .iter()
            .map(|&ps| required_reads(0.99, ps))
            .collect();
        assert!(reads.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*reads.last().unwrap(), 459);
    }

    #[test]
    fn eq6_insensitive_above_point_six() {
        // The paper notes the stage-2 curve is approximately the same for all
        // ps > 0.6 because so few reads are needed.
        for ps in [0.6, 0.7, 0.8, 0.9, 0.99] {
            assert!(required_reads(0.99, ps) <= 6);
        }
    }

    #[test]
    fn eq6_edge_cases() {
        assert_eq!(required_reads(0.0, 0.5), 1);
        assert_eq!(required_reads(-1.0, 0.5), 1);
        assert_eq!(required_reads(0.99, 1.0), 1);
        assert_eq!(required_reads(0.99, 1.5), 1);
        assert_eq!(required_reads(0.99, 0.0), usize::MAX);
        assert_eq!(required_reads(1.0, 0.5), usize::MAX);
    }

    #[test]
    fn achieved_accuracy_inverts_required_reads() {
        for &(pa, ps) in &[(0.9, 0.3), (0.99, 0.7), (0.999, 0.5)] {
            let reads = required_reads(pa, ps);
            assert!(achieved_accuracy(reads, ps) >= pa);
            if reads > 1 {
                assert!(achieved_accuracy(reads - 1, ps) < pa);
            }
        }
    }

    #[test]
    fn success_estimation_counts_hits() {
        let energies = [-5.0, -4.9, -5.0, -3.0, -5.0];
        let est = estimate_success_probability(&energies, -5.0, 1e-9);
        assert_eq!(est.hits, 3);
        assert_eq!(est.reads, 5);
        assert!((est.p_success - 0.6).abs() < 1e-12);
    }

    #[test]
    fn success_estimation_empty_ensemble() {
        let est = estimate_success_probability(&[], -1.0, 0.0);
        assert_eq!(est.p_success, 0.0);
        assert_eq!(est.reads, 0);
    }
}
