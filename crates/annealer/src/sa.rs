//! Single-spin-flip simulated annealing over Ising models.
//!
//! This is the classical sampler standing in for the physical quantum
//! annealer (see DESIGN.md): each *read* starts from a random spin
//! configuration and performs Metropolis sweeps while the temperature follows
//! the [`AnnealSchedule`].  Like the hardware, a single read returns the
//! lowest-energy state it ends in, and the probability of that state being
//! the global optimum (`p_s` in the paper's Eq. 6) depends on the schedule
//! and the problem's energy landscape.
//!
//! The inner loop works on a flattened CSR neighbor structure so that a
//! sweep touches memory contiguously; this is the same layout used by the
//! hardware-graph crate's `chimera_graph::Csr`.

use crate::schedule::AnnealSchedule;
use qubo_ising::{Ising, Spin};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A flattened, sampling-friendly view of an Ising model.
#[derive(Debug, Clone)]
pub struct CompiledIsing {
    /// Per-spin biases.
    pub h: Vec<f64>,
    /// CSR offsets into `neighbors`/`weights`.
    offsets: Vec<u32>,
    /// Neighbor spin indices.
    neighbors: Vec<u32>,
    /// Coupling values aligned with `neighbors`.
    weights: Vec<f64>,
}

impl CompiledIsing {
    /// Flatten an Ising model for fast sweeps.
    pub fn new(model: &Ising) -> Self {
        let n = model.num_spins();
        let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for ((i, j), jij) in model.couplings() {
            adjacency[i].push((j as u32, jij));
            adjacency[j].push((i as u32, jij));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0u32);
        for adj in &adjacency {
            for &(j, w) in adj {
                neighbors.push(j);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        Self {
            h: (0..n).map(|i| model.field(i)).collect(),
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Energy of a configuration under the compiled model.
    pub fn energy(&self, spins: &[Spin]) -> f64 {
        let mut e = 0.0;
        for (i, &hi) in self.h.iter().enumerate() {
            e -= hi * spins[i] as f64;
        }
        for i in 0..self.num_spins() {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            for k in start..end {
                let j = self.neighbors[k] as usize;
                if j > i {
                    e -= self.weights[k] * spins[i] as f64 * spins[j] as f64;
                }
            }
        }
        e
    }

    /// Energy change caused by flipping spin `i`.
    #[inline]
    pub fn flip_delta(&self, spins: &[Spin], i: usize) -> f64 {
        let mut local = self.h[i];
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        for k in start..end {
            local += self.weights[k] * spins[self.neighbors[k] as usize] as f64;
        }
        2.0 * spins[i] as f64 * local
    }
}

/// Outcome of one annealing read.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealRead {
    /// Final spin configuration.
    pub spins: Vec<Spin>,
    /// Energy of the final configuration.
    pub energy: f64,
    /// Number of single-spin updates attempted.
    pub updates: u64,
}

/// Perform one simulated-annealing read of the compiled model.
///
/// Deterministic in `seed`.  The returned configuration is the final state of
/// the anneal (not the best state visited), mirroring hardware readout.
pub fn anneal_once(model: &CompiledIsing, schedule: &AnnealSchedule, seed: u64) -> AnnealRead {
    let n = model.num_spins();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut spins: Vec<Spin> = (0..n)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect();
    let mut updates: u64 = 0;
    if n == 0 {
        return AnnealRead {
            spins,
            energy: 0.0,
            updates,
        };
    }
    for step in 0..schedule.sweeps {
        let temperature = schedule.temperature(step).max(1e-12);
        for i in 0..n {
            let delta = model.flip_delta(&spins, i);
            updates += 1;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp() {
                spins[i] = -spins[i];
            }
        }
    }
    let energy = model.energy(&spins);
    AnnealRead {
        spins,
        energy,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use qubo_ising::solve_ising_exact;

    fn compiled_random(n: usize, seed: u64) -> (Ising, CompiledIsing) {
        let g = generators::gnp(n, 0.4, seed);
        let model = Ising::random_on_graph(&g, seed + 1);
        let compiled = CompiledIsing::new(&model);
        (model, compiled)
    }

    #[test]
    fn compiled_energy_matches_model_energy() {
        let (model, compiled) = compiled_random(15, 3);
        for seed in 0..10 {
            let spins = Ising::random_spins(15, seed);
            assert!((model.energy(&spins) - compiled.energy(&spins)).abs() < 1e-9);
        }
    }

    #[test]
    fn compiled_flip_delta_matches_energy_difference() {
        let (_, compiled) = compiled_random(12, 9);
        let spins = Ising::random_spins(12, 4);
        for i in 0..12 {
            let mut flipped = spins.clone();
            flipped[i] = -flipped[i];
            let expected = compiled.energy(&flipped) - compiled.energy(&spins);
            assert!((compiled.flip_delta(&spins, i) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn anneal_is_deterministic_in_seed() {
        let (_, compiled) = compiled_random(20, 5);
        let schedule = AnnealSchedule::fast();
        let a = anneal_once(&compiled, &schedule, 7);
        let b = anneal_once(&compiled, &schedule, 7);
        let c = anneal_once(&compiled, &schedule, 8);
        assert_eq!(a, b);
        assert!(a.spins != c.spins || a.energy == c.energy);
    }

    #[test]
    fn anneal_finds_ferromagnetic_ground_state() {
        // Strongly coupled ferromagnetic chain: the ground state is all-up or
        // all-down and simulated annealing should find it essentially always.
        let mut model = Ising::new(16);
        for i in 0..15 {
            model.set_coupling(i, i + 1, 2.0);
        }
        let compiled = CompiledIsing::new(&model);
        let read = anneal_once(&compiled, &AnnealSchedule::default(), 3);
        let aligned = read.spins.iter().all(|&s| s == read.spins[0]);
        assert!(aligned, "spins {:?}", read.spins);
        assert!((read.energy - (-30.0)).abs() < 1e-9);
    }

    #[test]
    fn anneal_reaches_exact_ground_state_on_small_instances() {
        let (model, compiled) = compiled_random(12, 21);
        let (exact_energy, _, _) = solve_ising_exact(&model);
        // With several reads at a thorough schedule at least one read should
        // hit the exact optimum for a 12-spin instance.
        let best = (0..8)
            .map(|s| anneal_once(&compiled, &AnnealSchedule::thorough(), s).energy)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= exact_energy + 1e-9,
            "best sampled {best} vs exact {exact_energy}"
        );
    }

    #[test]
    fn update_count_matches_schedule() {
        let (_, compiled) = compiled_random(10, 2);
        let schedule = AnnealSchedule::default().with_sweeps(50);
        let read = anneal_once(&compiled, &schedule, 1);
        assert_eq!(read.updates, 50 * 10);
    }

    #[test]
    fn empty_model_anneals_trivially() {
        let compiled = CompiledIsing::new(&Ising::new(0));
        let read = anneal_once(&compiled, &AnnealSchedule::fast(), 0);
        assert_eq!(read.energy, 0.0);
        assert!(read.spins.is_empty());
    }
}
