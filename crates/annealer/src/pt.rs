//! Parallel tempering (replica exchange) sampler.
//!
//! A stronger classical heuristic than plain simulated annealing: several
//! replicas run Metropolis sweeps at fixed temperatures and periodically
//! exchange configurations.  It is used by the ablation benchmarks as the
//! "better classical post-processing / software solver" reference point when
//! studying how the characteristic success probability `p_s` feeds Eq. (6) —
//! a better sampler raises `p_s`, but as the paper observes, stage 2 is so
//! cheap that this barely moves the end-to-end time.

use crate::sa::CompiledIsing;
use qubo_ising::{Ising, Spin};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the parallel-tempering sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtConfig {
    /// Number of temperature replicas.
    pub replicas: usize,
    /// Lowest replica temperature.
    pub min_temperature: f64,
    /// Highest replica temperature.
    pub max_temperature: f64,
    /// Metropolis sweeps between exchange attempts.
    pub sweeps_per_exchange: usize,
    /// Number of exchange rounds.
    pub rounds: usize,
}

impl Default for PtConfig {
    fn default() -> Self {
        Self {
            replicas: 8,
            min_temperature: 0.05,
            max_temperature: 10.0,
            sweeps_per_exchange: 8,
            rounds: 32,
        }
    }
}

impl PtConfig {
    /// Geometric ladder of replica temperatures from `max` down to `min`.
    pub fn temperatures(&self) -> Vec<f64> {
        let k = self.replicas.max(2);
        (0..k)
            .map(|i| {
                let t = i as f64 / (k - 1) as f64;
                self.max_temperature * (self.min_temperature / self.max_temperature).powf(t)
            })
            .collect()
    }
}

/// Result of a parallel-tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct PtResult {
    /// Best configuration found across all replicas and rounds.
    pub best_spins: Vec<Spin>,
    /// Energy of the best configuration.
    pub best_energy: f64,
    /// Number of accepted replica exchanges.
    pub exchanges_accepted: u64,
    /// Total single-spin updates attempted.
    pub updates: u64,
}

/// Run parallel tempering on an Ising model.  Deterministic in `seed`.
pub fn parallel_tempering(model: &Ising, config: &PtConfig, seed: u64) -> PtResult {
    let compiled = CompiledIsing::new(model);
    let n = compiled.num_spins();
    let temps = config.temperatures();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut replicas: Vec<Vec<Spin>> = (0..temps.len())
        .map(|_| {
            (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect()
        })
        .collect();
    let mut energies: Vec<f64> = replicas.iter().map(|r| compiled.energy(r)).collect();

    let mut best_energy = energies
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(f64::INFINITY);
    let mut best_spins = replicas.first().cloned().unwrap_or_default();
    if let Some(idx) = energies
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
    {
        best_spins = replicas[idx].clone();
    }

    let mut exchanges_accepted = 0u64;
    let mut updates = 0u64;

    for _round in 0..config.rounds {
        // Metropolis sweeps within each replica.
        for (r, spins) in replicas.iter_mut().enumerate() {
            let temperature = temps[r].max(1e-12);
            for _ in 0..config.sweeps_per_exchange {
                for i in 0..n {
                    let delta = compiled.flip_delta(spins, i);
                    updates += 1;
                    if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp() {
                        spins[i] = -spins[i];
                        energies[r] += delta;
                    }
                }
            }
            if energies[r] < best_energy {
                best_energy = energies[r];
                best_spins = spins.clone();
            }
        }
        // Exchange attempts between adjacent replicas.
        for r in 0..temps.len().saturating_sub(1) {
            let beta_low = 1.0 / temps[r].max(1e-12);
            let beta_high = 1.0 / temps[r + 1].max(1e-12);
            let delta = (beta_high - beta_low) * (energies[r] - energies[r + 1]);
            if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                replicas.swap(r, r + 1);
                energies.swap(r, r + 1);
                exchanges_accepted += 1;
            }
        }
    }

    // Guard for the degenerate zero-spin case.
    if n == 0 {
        best_energy = 0.0;
        best_spins = Vec::new();
    }

    PtResult {
        best_spins,
        best_energy,
        exchanges_accepted,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use qubo_ising::solve_ising_exact;

    #[test]
    fn temperature_ladder_is_decreasing_and_bounded() {
        let config = PtConfig::default();
        let temps = config.temperatures();
        assert_eq!(temps.len(), config.replicas);
        assert!(temps.windows(2).all(|w| w[1] < w[0]));
        assert!((temps[0] - config.max_temperature).abs() < 1e-9);
        assert!((temps.last().unwrap() - config.min_temperature).abs() < 1e-9);
    }

    #[test]
    fn finds_exact_ground_state_on_small_instances() {
        let g = generators::gnp(14, 0.4, 8);
        let model = Ising::random_on_graph(&g, 9);
        let (exact, _, _) = solve_ising_exact(&model);
        let result = parallel_tempering(&model, &PtConfig::default(), 3);
        assert!(
            result.best_energy <= exact + 1e-9,
            "PT best {} vs exact {exact}",
            result.best_energy
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::cycle(10);
        let model = Ising::random_on_graph(&g, 1);
        let a = parallel_tempering(&model, &PtConfig::default(), 5);
        let b = parallel_tempering(&model, &PtConfig::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn exchanges_happen() {
        let g = generators::grid(3, 3);
        let model = Ising::random_on_graph(&g, 2);
        let result = parallel_tempering(&model, &PtConfig::default(), 11);
        assert!(result.exchanges_accepted > 0);
        assert!(result.updates > 0);
    }

    #[test]
    fn reported_best_energy_matches_configuration() {
        let g = generators::gnp(10, 0.5, 3);
        let model = Ising::random_on_graph(&g, 4);
        let result = parallel_tempering(&model, &PtConfig::default(), 7);
        assert!((model.energy(&result.best_spins) - result.best_energy).abs() < 1e-6);
    }

    #[test]
    fn empty_model_is_handled() {
        let result = parallel_tempering(&Ising::new(0), &PtConfig::default(), 1);
        assert_eq!(result.best_energy, 0.0);
        assert!(result.best_spins.is_empty());
    }
}
