//! QPU access-time model.
//!
//! The paper's Stage-1 and Stage-2 listings (Figs. 6–7) embed measured
//! hardware constants for the second-generation D-Wave Two ("Vesuvius")
//! processor: programming/initialization of the electronic control system and
//! programmable magnetic memory (PMM), per-read anneal, readout and
//! thermalization times.  This module reproduces those constants and exposes
//! the arithmetic that converts "k reads of an n-qubit program" into seconds,
//! which is what the Stage-2 machine walk and the simulated QPU both use.

use serde::{Deserialize, Serialize};

/// Programming and per-read timing constants, in microseconds.
///
/// Field names follow the parameter names used in the paper's Fig. 6 and
/// Fig. 7 listings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpuTimings {
    /// `StateCon`: electronic control-state construction.
    pub state_construction_us: f64,
    /// `PMMSW`: programmable-magnetic-memory software step.
    pub pmm_software_us: f64,
    /// `PMMElec`: PMM electronics step.
    pub pmm_electronics_us: f64,
    /// `PMMChip`: PMM chip programming.
    pub pmm_chip_us: f64,
    /// `PMMTherm`: post-programming thermalization.
    pub pmm_thermalization_us: f64,
    /// `SWRun`: software run overhead.
    pub software_run_us: f64,
    /// `ElecRun`: electronics run overhead.
    pub electronics_run_us: f64,
    /// Anneal duration per read (the `QuOps` rate; 20 µs by default).
    pub anneal_us: f64,
    /// `AnnealReadResults`: readout time per call.
    pub readout_us: f64,
    /// `AnnealThermalization`: thermalization per call.
    pub thermalization_us: f64,
}

impl Default for QpuTimings {
    fn default() -> Self {
        Self::dw2_vesuvius()
    }
}

impl QpuTimings {
    /// The DW2 "Vesuvius" constants exactly as published in Fig. 6/Fig. 7.
    pub fn dw2_vesuvius() -> Self {
        Self {
            state_construction_us: 252_162.0,
            pmm_software_us: 33_095.0,
            pmm_electronics_us: 0.0,
            pmm_chip_us: 11_264.0,
            pmm_thermalization_us: 10_000.0,
            software_run_us: 4_000.0,
            electronics_run_us: 9_052.0,
            anneal_us: 20.0,
            readout_us: 320.0,
            thermalization_us: 5.0,
        }
    }

    /// The paper assumes the DW2X constants "are nearly the same" as the DW2;
    /// this constructor makes that assumption explicit.
    pub fn dw2x() -> Self {
        Self::dw2_vesuvius()
    }

    /// Total one-time processor-initialization cost (`ProcessorInitialize` in
    /// Fig. 6), in seconds.
    pub fn processor_initialize_seconds(&self) -> f64 {
        (self.state_construction_us
            + self.pmm_software_us
            + self.pmm_electronics_us
            + self.pmm_chip_us
            + self.pmm_thermalization_us
            + self.software_run_us
            + self.electronics_run_us)
            * 1e-6
    }

    /// Pure annealing time for `reads` samples, in seconds (the Stage-2
    /// `QuOps` term).
    pub fn anneal_seconds(&self, reads: usize) -> f64 {
        reads as f64 * self.anneal_us * 1e-6
    }

    /// Per-call readout plus thermalization cost, in seconds (the Stage-2
    /// constant blocks).
    pub fn readout_seconds(&self) -> f64 {
        (self.readout_us + self.thermalization_us) * 1e-6
    }

    /// Total QPU-access time for one programming cycle followed by `reads`
    /// samples: initialization + anneals + readout/thermalization.
    pub fn total_access_seconds(&self, reads: usize) -> f64 {
        self.processor_initialize_seconds() + self.anneal_seconds(reads) + self.readout_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_initialize_matches_paper_sum() {
        let t = QpuTimings::dw2_vesuvius();
        let expected_us = 252_162.0 + 33_095.0 + 0.0 + 11_264.0 + 10_000.0 + 4_000.0 + 9_052.0;
        assert!((t.processor_initialize_seconds() - expected_us * 1e-6).abs() < 1e-12);
        // ~0.32 seconds of fixed programming cost.
        assert!((t.processor_initialize_seconds() - 0.319_573).abs() < 1e-6);
    }

    #[test]
    fn anneal_time_is_twenty_microseconds_per_read() {
        let t = QpuTimings::default();
        assert!((t.anneal_seconds(1) - 20e-6).abs() < 1e-12);
        assert!((t.anneal_seconds(1000) - 0.02).abs() < 1e-12);
        assert_eq!(t.anneal_seconds(0), 0.0);
    }

    #[test]
    fn readout_constants_match_stage2_listing() {
        let t = QpuTimings::default();
        assert!((t.readout_seconds() - 325e-6).abs() < 1e-12);
    }

    #[test]
    fn total_access_is_dominated_by_programming() {
        // Even thousands of reads cost less than the fixed programming time,
        // which is the paper's central observation about stage 2 being cheap
        // relative to the (even larger) stage-1 embedding cost.
        let t = QpuTimings::default();
        let total = t.total_access_seconds(1000);
        assert!(t.processor_initialize_seconds() / total > 0.9);
    }

    #[test]
    fn dw2x_assumption_matches_dw2() {
        assert_eq!(QpuTimings::dw2x(), QpuTimings::dw2_vesuvius());
    }
}
