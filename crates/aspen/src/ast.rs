//! Abstract syntax tree for parsed ASPEN-like model documents.
//!
//! A single source file (a *document*) may declare hardware components
//! (`machine`, `node`, `socket`, `core`, `memory`, `link`) and application
//! models (`model`).  The parser produces these untyped declarations; the
//! [`crate::machine`] and [`crate::application`] modules resolve them into
//! executable model objects.

use crate::expr::Expr;

/// A parsed source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// `include path/to/file.aspen` directives (recorded, not resolved —
    /// the built-in component library plays the role of the include tree).
    pub includes: Vec<String>,
    /// `machine` declarations.
    pub machines: Vec<MachineDecl>,
    /// `node` declarations.
    pub nodes: Vec<NodeDecl>,
    /// `socket` declarations.
    pub sockets: Vec<SocketDecl>,
    /// `core` declarations.
    pub cores: Vec<CoreDecl>,
    /// `memory` declarations.
    pub memories: Vec<MemoryDecl>,
    /// `link` declarations.
    pub links: Vec<LinkDecl>,
    /// Application `model` declarations.
    pub models: Vec<ModelDecl>,
}

impl Document {
    /// Find an application model by name.
    pub fn model(&self, name: &str) -> Option<&ModelDecl> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Find a socket declaration by name.
    pub fn socket(&self, name: &str) -> Option<&SocketDecl> {
        self.sockets.iter().find(|s| s.name == name)
    }

    /// Find a core declaration by name.
    pub fn core(&self, name: &str) -> Option<&CoreDecl> {
        self.cores.iter().find(|c| c.name == name)
    }

    /// Total number of top-level declarations of any kind.
    pub fn declaration_count(&self) -> usize {
        self.machines.len()
            + self.nodes.len()
            + self.sockets.len()
            + self.cores.len()
            + self.memories.len()
            + self.links.len()
            + self.models.len()
    }
}

/// A counted reference to a sub-component, e.g. `[1] SIMPLE nodes` or
/// `[2] intel_xeon_e5_2680 sockets`.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRef {
    /// Multiplicity expression (the bracketed count).
    pub count: Expr,
    /// Referenced component name.
    pub name: String,
    /// Role keyword following the name (`nodes`, `sockets`, `cores`, ...).
    pub role: String,
}

/// `machine Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDecl {
    /// Machine name.
    pub name: String,
    /// Contained components (typically nodes).
    pub contains: Vec<ComponentRef>,
    /// Named numeric properties.
    pub properties: Vec<PropertyDecl>,
}

/// `node Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecl {
    /// Node name.
    pub name: String,
    /// Contained components (typically sockets).
    pub contains: Vec<ComponentRef>,
    /// Named numeric properties.
    pub properties: Vec<PropertyDecl>,
}

/// `socket Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct SocketDecl {
    /// Socket name.
    pub name: String,
    /// Contained components (typically cores).
    pub contains: Vec<ComponentRef>,
    /// Attached memory component name (`gddr5 memory`).
    pub memory: Option<String>,
    /// Attached interconnect name (`linked with pcie`).
    pub link: Option<String>,
    /// Resource-to-time mappings declared directly on the socket.
    pub resources: Vec<ResourceDef>,
    /// Named numeric properties.
    pub properties: Vec<PropertyDecl>,
}

/// `core Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDecl {
    /// Core name.
    pub name: String,
    /// Resource-to-time mappings (e.g. `resource flops(n) [n / peak]`).
    pub resources: Vec<ResourceDef>,
    /// Named numeric properties.
    pub properties: Vec<PropertyDecl>,
}

/// `memory Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryDecl {
    /// Memory component name.
    pub name: String,
    /// Resource-to-time mappings (e.g. `resource loads(n) [n / bandwidth]`).
    pub resources: Vec<ResourceDef>,
    /// Named numeric properties (capacity, bandwidth, latency, ...).
    pub properties: Vec<PropertyDecl>,
}

/// `link Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDecl {
    /// Link name (e.g. `pcie`).
    pub name: String,
    /// Resource-to-time mappings (e.g. `resource intracomm(n) [n / bandwidth]`).
    pub resources: Vec<ResourceDef>,
    /// Named numeric properties.
    pub properties: Vec<PropertyDecl>,
}

/// A named numeric property such as `property capacity [6 * 1024]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDecl {
    /// Property name.
    pub name: String,
    /// Property value.
    pub value: Expr,
}

/// A resource-to-time mapping declared on a hardware component:
/// `resource QuOps(number) [number * 20/1000000]`.
///
/// The mapping expression may reference the formal argument (`number`), any
/// property of the component, and global parameters; its value is interpreted
/// as seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDef {
    /// Resource name (`flops`, `loads`, `QuOps`, ...).
    pub name: String,
    /// Formal argument name, usually `number`.
    pub arg: String,
    /// Expression mapping a quantity of the resource to seconds.
    pub mapping: Expr,
    /// Trait adjustments: `with simd [base / 8]` style modifiers.  Each trait
    /// provides a replacement mapping expression applied when an application
    /// clause requests that trait.
    pub traits: Vec<TraitDef>,
}

/// A trait modifier attached to a [`ResourceDef`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraitDef {
    /// Trait name (`sp`, `dp`, `simd`, `fmad`, `copyout`, ...).
    pub name: String,
    /// Multiplier applied to the base mapping when the trait is present.
    /// A value of 0.5 means "twice as fast as the base rate".
    pub multiplier: Expr,
}

/// `model Name { param ... data ... kernel ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDecl {
    /// Model name (e.g. `Stage1`).
    pub name: String,
    /// Parameter declarations in source order (later ones may reference
    /// earlier ones).
    pub params: Vec<ParamDecl>,
    /// Data-structure declarations.
    pub data: Vec<DataDecl>,
    /// Kernel declarations.
    pub kernels: Vec<KernelDecl>,
}

impl ModelDecl {
    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelDecl> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// `param Name = expr`
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Defining expression (may reference previously declared parameters).
    pub value: Expr,
}

/// `data Name as Array(rows, element_bytes)`
#[derive(Debug, Clone, PartialEq)]
pub struct DataDecl {
    /// Data-structure name.
    pub name: String,
    /// Layout constructor name (`Array`, `Matrix`, ...).
    pub layout: String,
    /// Layout arguments; for `Array(n, s)` the total size in bytes is `n * s`.
    pub dims: Vec<Expr>,
}

/// `kernel Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDecl {
    /// Kernel name.
    pub name: String,
    /// Body statements executed in order.
    pub statements: Vec<KernelStmt>,
}

/// A statement inside a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelStmt {
    /// An `execute [n] { ... }` block.
    Execute(ExecuteBlock),
    /// A call to another kernel by name.
    Call(String),
    /// `iterate [n] { ... }` — repeat the body sequentially `n` times.
    Iterate {
        /// Repetition count.
        count: Expr,
        /// Statements repeated each iteration.
        body: Vec<KernelStmt>,
    },
    /// `map [n] { ... }` — execute the body `n` times, assumed perfectly
    /// parallel across the containing machine's parallel resources.
    Map {
        /// Parallel width.
        count: Expr,
        /// Statements executed by each parallel instance.
        body: Vec<KernelStmt>,
    },
}

/// `execute label? [count] { clauses }`
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteBlock {
    /// Optional label (`execute embed [1]`).
    pub label: Option<String>,
    /// Number of times this block executes.
    pub count: Expr,
    /// Resource demands of one execution of the block.
    pub clauses: Vec<ResourceClause>,
}

/// A resource demand inside an execute block, e.g.
/// `flops [EmbeddingOps] as sp, simd` or `loads [Results] of size [4*Length]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceClause {
    /// Resource name (`flops`, `loads`, `stores`, `intracomm`, `messages`,
    /// `microseconds`, `QuOps`, or any custom resource).
    pub resource: String,
    /// Quantity expression (the first bracketed expression).
    pub quantity: Expr,
    /// Optional `of size [expr]` multiplier (bytes per element for memory
    /// traffic clauses).
    pub size: Option<Expr>,
    /// Trait names following `as`.
    pub traits: Vec<String>,
    /// Data target following `to`/`from` (recorded for traceability).
    pub target: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sample_model() -> ModelDecl {
        ModelDecl {
            name: "Stage1".into(),
            params: vec![ParamDecl {
                name: "LPS".into(),
                value: Expr::number(0.0),
            }],
            data: vec![],
            kernels: vec![
                KernelDecl {
                    name: "main".into(),
                    statements: vec![KernelStmt::Call("EmbedData".into())],
                },
                KernelDecl {
                    name: "EmbedData".into(),
                    statements: vec![],
                },
            ],
        }
    }

    #[test]
    fn model_kernel_lookup() {
        let m = sample_model();
        assert!(m.kernel("main").is_some());
        assert!(m.kernel("EmbedData").is_some());
        assert!(m.kernel("nope").is_none());
    }

    #[test]
    fn document_lookups() {
        let mut doc = Document::default();
        doc.models.push(sample_model());
        doc.cores.push(CoreDecl {
            name: "Vesuvius20".into(),
            resources: vec![],
            properties: vec![],
        });
        assert!(doc.model("Stage1").is_some());
        assert!(doc.core("Vesuvius20").is_some());
        assert!(doc.socket("none").is_none());
        assert_eq!(doc.declaration_count(), 2);
    }
}
