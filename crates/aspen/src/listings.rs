//! The ASPEN model listings published in the paper (Figs. 5-8), reproduced as
//! string constants so they can be parsed, evaluated and tested verbatim.
//!
//! Two small, purely syntactic adaptations are applied relative to the typeset
//! figures:
//!
//! * the Unicode modifier caret printed by the paper's PDF is written as the
//!   ASCII `^` operator, and
//! * the machine listing in Fig. 5 references the socket as
//!   `DwaveVesuvius20` / core `Vesuvius20` consistently (the typeset figure
//!   mixes `DwaveVesuvius`/`Vesuvius`/`Vesuvius20` due to column truncation).
//!
//! The numeric content (hardware constants, expressions and structure) is
//! identical to the publication.

/// Fig. 5 — ASPEN machine model for the CPU+GPU+QPU node and the D-Wave
/// Vesuvius hardware socket.
pub const MACHINE_LISTING: &str = r#"
include memory/ddr3_1066.aspen
include sockets/intel_xeon_e5_2680.aspen
include sockets/nvidia_m2090.aspen
include sockets/dwave_vesuvius_20.aspen

machine SimpleNode
{
    [1] SIMPLE nodes
}

node SIMPLE
{
    [1] intel_xeon_e5_2680 sockets
    [1] nvidia_m2090 sockets
    [1] DwaveVesuvius20 sockets
}

socket DwaveVesuvius20 {
    [1] Vesuvius20 cores
    gddr5 memory
    linked with pcie
}

core Vesuvius20 {
    resource QuOps(number) [number * 20/1000000]
}
"#;

/// Fig. 6 — Stage 1 of the split-execution application: generation and
/// embedding of a logical Ising Hamiltonian into the D-Wave processor.
pub const STAGE1_LISTING: &str = r#"
model Stage1
{
    param LPS = 0 // Input Parameter
    param Ising = LPS^2
    param NH = LPS
    param EH = NH*(NH-1) / 2
    param M = 12
    param N = 12
    param NG = 8*M*N
    param EG = 4*(2*M*N - M - N) + 16*M*N
    param EmbeddingOps = (EG+NG*log(NG))*(2*EH)*NH*NG
    param ParameterSetting = LPS^3

    // Hardware constants for DW2 in microseconds
    param StateCon = 252162
    param PMMSW = 33095
    param PMMElec = 0
    param PMMChip = 11264
    param PMMTherm = 10000
    param SWRun = 4000
    param ElecRun = 9052
    param ProcessorInitialize = StateCon+PMMSW+PMMElec+PMMChip+PMMTherm+SWRun+ElecRun

    data Input as Array((NH*NH), 4)
    data Output as Array((NG*NG), 4)

    kernel InitializeData {
        execute [1] {
            flops [Ising] as sp, fmad, simd
            stores [NH*4] to Input
        }
        execute [1] {
            flops [ParameterSetting] as sp, fmad, simd
        }
    }

    kernel EmbedData {
        execute embed [1] {
            loads [EH*4] from Input
            flops [EmbeddingOps] as sp, simd
            stores [EG*4] to Output
            intracomm [EG*4] as copyout
        }
    }

    kernel InitializeProcessor {
        execute [1] {microseconds [ProcessorInitialize]}
    }

    kernel main
    {
        InitializeData
        EmbedData
        InitializeProcessor
    }
}
"#;

/// Fig. 7 — Stage 2 of the split-execution application: the D-Wave processor
/// as a statistical-sampling optimization solver.
pub const STAGE2_LISTING: &str = r#"
model Stage2
{
    param Success = 0.9999
    param Accuracy = 0 // Input parameter
    param AnnealReadResults = 320
    param AnnealThermalization = 5

    kernel Stage2Processing
    {
        execute mainblock2[1]
        {
            // Number of QPU calls
            QuOps [ceil(log(1-(Accuracy/100))/log(1-Success))]
        }
        execute mainblock3[1]
        {
            // Readout time
            microseconds [AnnealReadResults]
        }
        execute mainblock4[1] {
            // Initialization time
            microseconds [AnnealThermalization]
        }
    }

    kernel main {
        Stage2Processing
    }
}
"#;

/// Fig. 8 — Stage 3 of the split-execution application: parsing and sorting
/// the readout results to recover the optimization result.
pub const STAGE3_LISTING: &str = r#"
model Stage3
{
    param LPS = 0
    param Success = 0.75
    param Accuracy = 0.99
    param Results = ceil(log(1-(Accuracy))/log(1-Success))
    param Length = LPS
    param SortOps = log(Results) * Results

    data R as Array(Results, LPS)

    kernel FindSolution {
        execute sort [1] {
            loads [Results] of size [4*Length]
            flops [SortOps] as sp
            stores [Results] to R
        }
    }

    kernel main {
        FindSolution
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_document, parse_model};

    #[test]
    fn machine_listing_parses() {
        let doc = parse_document(MACHINE_LISTING).unwrap();
        assert_eq!(doc.includes.len(), 4);
        assert_eq!(doc.machines.len(), 1);
        assert_eq!(doc.nodes.len(), 1);
        assert_eq!(doc.sockets.len(), 1);
        assert_eq!(doc.cores.len(), 1);
        assert_eq!(doc.cores[0].resources[0].name, "QuOps");
    }

    #[test]
    fn stage_listings_parse() {
        assert_eq!(parse_model(STAGE1_LISTING).unwrap().name, "Stage1");
        assert_eq!(parse_model(STAGE2_LISTING).unwrap().name, "Stage2");
        assert_eq!(parse_model(STAGE3_LISTING).unwrap().name, "Stage3");
    }

    #[test]
    fn stage1_has_paper_hardware_constants() {
        let model = parse_model(STAGE1_LISTING).unwrap();
        let names: Vec<&str> = model.params.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "StateCon", "PMMSW", "PMMElec", "PMMChip", "PMMTherm", "SWRun", "ElecRun",
        ] {
            assert!(names.contains(&expected), "missing param {expected}");
        }
    }
}
