//! Resolved machine models.
//!
//! A [`MachineModel`] maps abstract resource demands (floating-point
//! operations, bytes loaded or stored, bytes moved across an interconnect,
//! quantum operations, raw time) to wall-clock seconds.  Machine models can be
//! built programmatically with [`MachineBuilder`], taken from the built-in
//! library in [`crate::builtin`], or resolved from a parsed ASPEN document.

use crate::ast::{Document, ResourceDef};
use crate::error::{AspenError, Result};
use crate::expr::{Expr, ParamEnv};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a quantity of a resource is converted into seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum RateKind {
    /// `seconds = latency + quantity * seconds_per_unit * trait_multipliers`.
    Linear {
        /// Seconds consumed by one unit of the resource at the base rate.
        seconds_per_unit: f64,
        /// Fixed start-up latency charged once per execute block (seconds).
        latency: f64,
    },
    /// `seconds = mapping(quantity)`, where the mapping expression references
    /// the formal argument by name (used for custom resources such as the
    /// D-Wave `QuOps` declaration in the paper's Fig. 5).
    Mapping {
        /// Formal argument name bound to the demanded quantity.
        arg: String,
        /// Mapping expression producing seconds.
        expr: Expr,
    },
}

/// The conversion rule for a single named resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRate {
    /// Resource name (`flops`, `loads`, `stores`, `intracomm`, `QuOps`, ...).
    pub name: String,
    /// Conversion rule.
    pub kind: RateKind,
    /// Multipliers applied to the per-unit cost when the application clause
    /// carries the matching trait (e.g. `simd` → 0.125).  Multipliers for
    /// traits not requested are not applied; requested traits without an
    /// entry are ignored.
    pub trait_multipliers: BTreeMap<String, f64>,
    /// Name of the hardware component that provides this rate (for reports).
    pub provider: String,
}

impl ResourceRate {
    /// A resource whose base throughput is `units_per_second`.
    pub fn per_second(name: impl Into<String>, units_per_second: f64) -> Self {
        Self {
            name: name.into(),
            kind: RateKind::Linear {
                seconds_per_unit: 1.0 / units_per_second,
                latency: 0.0,
            },
            trait_multipliers: BTreeMap::new(),
            provider: String::new(),
        }
    }

    /// A resource that costs `seconds_per_unit` seconds per unit.
    pub fn seconds_per_unit(name: impl Into<String>, seconds_per_unit: f64) -> Self {
        Self {
            name: name.into(),
            kind: RateKind::Linear {
                seconds_per_unit,
                latency: 0.0,
            },
            trait_multipliers: BTreeMap::new(),
            provider: String::new(),
        }
    }

    /// A resource defined by an arbitrary mapping expression, as produced by
    /// `resource Name(arg) [expr]` declarations.
    pub fn from_mapping(name: impl Into<String>, arg: impl Into<String>, expr: Expr) -> Self {
        Self {
            name: name.into(),
            kind: RateKind::Mapping {
                arg: arg.into(),
                expr,
            },
            trait_multipliers: BTreeMap::new(),
            provider: String::new(),
        }
    }

    /// Attach a fixed per-block latency (only meaningful for linear rates).
    pub fn with_latency(mut self, latency: f64) -> Self {
        if let RateKind::Linear {
            latency: ref mut l, ..
        } = self.kind
        {
            *l = latency;
        }
        self
    }

    /// Attach a trait multiplier.
    pub fn with_trait(mut self, name: impl Into<String>, multiplier: f64) -> Self {
        self.trait_multipliers.insert(name.into(), multiplier);
        self
    }

    /// Record the providing component name.
    pub fn with_provider(mut self, provider: impl Into<String>) -> Self {
        self.provider = provider.into();
        self
    }

    /// Convert a quantity of this resource (with the given traits requested)
    /// into seconds.
    pub fn seconds_for(&self, quantity: f64, traits: &[String]) -> Result<f64> {
        match &self.kind {
            RateKind::Linear {
                seconds_per_unit,
                latency,
            } => {
                let mut per_unit = *seconds_per_unit;
                for t in traits {
                    if let Some(m) = self.trait_multipliers.get(t) {
                        per_unit *= m;
                    }
                }
                let time = latency + quantity * per_unit;
                if time.is_finite() {
                    Ok(time)
                } else {
                    Err(AspenError::NonFinite {
                        context: format!("resource `{}` with quantity {quantity}", self.name),
                    })
                }
            }
            RateKind::Mapping { arg, expr } => {
                let env = ParamEnv::new().with(arg.clone(), quantity);
                let mut time = expr.eval(&env)?;
                for t in traits {
                    if let Some(m) = self.trait_multipliers.get(t) {
                        time *= m;
                    }
                }
                Ok(time)
            }
        }
    }

    /// Effective sustained rate in units/second for reporting (evaluated at a
    /// quantity of one unit, without traits).
    pub fn nominal_units_per_second(&self) -> f64 {
        match &self.kind {
            RateKind::Linear {
                seconds_per_unit, ..
            } => 1.0 / seconds_per_unit,
            RateKind::Mapping { arg, expr } => {
                let env = ParamEnv::new().with(arg.clone(), 1.0);
                match expr.eval(&env) {
                    Ok(seconds) if seconds > 0.0 => 1.0 / seconds,
                    _ => f64::NAN,
                }
            }
        }
    }
}

/// Description of a hardware component recorded for reporting purposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentInfo {
    /// Component name (e.g. `intel_xeon_e5_2680`).
    pub name: String,
    /// Component kind keyword (`socket`, `core`, `memory`, `link`).
    pub kind: String,
    /// Multiplicity within its parent.
    pub count: f64,
    /// Resources this component provides.
    pub provides: Vec<String>,
}

/// A fully resolved machine model: a set of resource rates plus descriptive
/// metadata about the components that provide them.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Machine name.
    pub name: String,
    rates: BTreeMap<String, ResourceRate>,
    /// Numeric properties (qubit counts, clock rates, ...).
    pub properties: BTreeMap<String, f64>,
    /// Components recorded during resolution, in declaration order.
    pub components: Vec<ComponentInfo>,
}

impl MachineModel {
    /// Create an empty machine model with the standard time pseudo-resources
    /// (`seconds`, `milliseconds`, `microseconds`, `nanoseconds`) installed.
    pub fn new(name: impl Into<String>) -> Self {
        let mut model = Self {
            name: name.into(),
            rates: BTreeMap::new(),
            properties: BTreeMap::new(),
            components: Vec::new(),
        };
        model.set_rate(ResourceRate::seconds_per_unit("seconds", 1.0).with_provider("time"));
        model.set_rate(ResourceRate::seconds_per_unit("milliseconds", 1e-3).with_provider("time"));
        model.set_rate(ResourceRate::seconds_per_unit("microseconds", 1e-6).with_provider("time"));
        model.set_rate(ResourceRate::seconds_per_unit("nanoseconds", 1e-9).with_provider("time"));
        model
    }

    /// Install (or replace) a resource rate.
    pub fn set_rate(&mut self, rate: ResourceRate) {
        self.rates.insert(rate.name.clone(), rate);
    }

    /// Install a resource rate only if no provider exists yet.
    ///
    /// Resolution of hierarchical machine descriptions uses this so that the
    /// first declared provider of a resource (the host CPU in the paper's
    /// `SIMPLE` node) services that resource for the whole machine.
    pub fn set_rate_if_absent(&mut self, rate: ResourceRate) {
        self.rates.entry(rate.name.clone()).or_insert(rate);
    }

    /// Look up a resource rate.
    pub fn rate(&self, resource: &str) -> Option<&ResourceRate> {
        self.rates.get(resource)
    }

    /// Whether the machine can service a resource.
    pub fn supports(&self, resource: &str) -> bool {
        self.rates.contains_key(resource)
    }

    /// Convert a resource demand into seconds.
    pub fn seconds_for(&self, resource: &str, quantity: f64, traits: &[String]) -> Result<f64> {
        let rate = self
            .rates
            .get(resource)
            .ok_or_else(|| AspenError::UnsupportedResource {
                resource: resource.to_string(),
            })?;
        rate.seconds_for(quantity, traits)
    }

    /// Iterate over all resource rates in name order.
    pub fn rates(&self) -> impl Iterator<Item = &ResourceRate> {
        self.rates.values()
    }

    /// Set a named numeric property.
    pub fn set_property(&mut self, name: impl Into<String>, value: f64) {
        self.properties.insert(name.into(), value);
    }

    /// Read a named numeric property.
    pub fn property(&self, name: &str) -> Option<f64> {
        self.properties.get(name).copied()
    }

    /// Resolve a machine declared in a parsed document, consulting `library`
    /// for components referenced but not declared in the document itself
    /// (this plays the role of ASPEN's `include` directives).
    pub fn from_document(
        doc: &Document,
        machine_name: &str,
        library: &dyn ComponentLibrary,
    ) -> Result<Self> {
        let machine = doc
            .machines
            .iter()
            .find(|m| m.name == machine_name)
            .ok_or_else(|| AspenError::UnknownEntity {
                kind: "machine",
                name: machine_name.to_string(),
            })?;
        let mut model = MachineModel::new(machine_name);
        let env = ParamEnv::new();
        for node_ref in &machine.contains {
            let count = node_ref.count.eval(&env)?;
            let node = doc
                .nodes
                .iter()
                .find(|n| n.name == node_ref.name)
                .ok_or_else(|| AspenError::UnknownEntity {
                    kind: "node",
                    name: node_ref.name.clone(),
                })?;
            model.components.push(ComponentInfo {
                name: node.name.clone(),
                kind: "node".into(),
                count,
                provides: Vec::new(),
            });
            for socket_ref in &node.contains {
                let socket_count = socket_ref.count.eval(&env)?;
                resolve_socket(doc, &socket_ref.name, socket_count, library, &mut model)?;
            }
        }
        Ok(model)
    }
}

/// A source of pre-defined hardware components, playing the role of ASPEN's
/// include tree.  [`crate::builtin::BuiltinLibrary`] is the standard
/// implementation.
pub trait ComponentLibrary {
    /// Return the resource rates and properties provided by the named
    /// component, or `None` if the library does not know the component.
    fn lookup(&self, name: &str) -> Option<ComponentSpec>;
}

/// The resources and properties contributed by one library component.
#[derive(Debug, Clone, Default)]
pub struct ComponentSpec {
    /// Component kind keyword for reporting (`socket`, `memory`, `link`).
    pub kind: String,
    /// Resource rates the component provides.
    pub rates: Vec<ResourceRate>,
    /// Numeric properties contributed to the machine.
    pub properties: Vec<(String, f64)>,
}

/// A library that knows no components; useful for fully self-contained
/// documents and for tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyLibrary;

impl ComponentLibrary for EmptyLibrary {
    fn lookup(&self, _name: &str) -> Option<ComponentSpec> {
        None
    }
}

fn resolve_socket(
    doc: &Document,
    socket_name: &str,
    count: f64,
    library: &dyn ComponentLibrary,
    model: &mut MachineModel,
) -> Result<()> {
    let env = ParamEnv::new();
    if let Some(socket) = doc.socket(socket_name) {
        let mut provides = Vec::new();
        // Resources declared directly on the socket.
        for def in &socket.resources {
            let rate = resource_rate_from_def(def, socket_name, &socket.properties)?;
            provides.push(rate.name.clone());
            model.set_rate_if_absent(rate);
        }
        // Cores contained in the socket.
        for core_ref in &socket.contains {
            let core_count = core_ref.count.eval(&env)?;
            if let Some(core) = doc.core(&core_ref.name) {
                for def in &core.resources {
                    let rate = resource_rate_from_def(def, &core_ref.name, &core.properties)?;
                    provides.push(rate.name.clone());
                    model.set_rate_if_absent(rate);
                }
                model.components.push(ComponentInfo {
                    name: core_ref.name.clone(),
                    kind: "core".into(),
                    count: count * core_count,
                    provides: core.resources.iter().map(|r| r.name.clone()).collect(),
                });
            } else if let Some(spec) = library.lookup(&core_ref.name) {
                install_spec(&core_ref.name, &spec, count * core_count, model);
            } else {
                return Err(AspenError::UnknownEntity {
                    kind: "core",
                    name: core_ref.name.clone(),
                });
            }
        }
        // Attached memory and link components come from the document or the
        // library.
        for attached in [socket.memory.as_ref(), socket.link.as_ref()]
            .into_iter()
            .flatten()
        {
            if let Some(mem) = doc.memories.iter().find(|m| &m.name == attached) {
                for def in &mem.resources {
                    model.set_rate_if_absent(resource_rate_from_def(
                        def,
                        attached,
                        &mem.properties,
                    )?);
                }
            } else if let Some(link) = doc.links.iter().find(|l| &l.name == attached) {
                for def in &link.resources {
                    model.set_rate_if_absent(resource_rate_from_def(
                        def,
                        attached,
                        &link.properties,
                    )?);
                }
            } else if let Some(spec) = library.lookup(attached) {
                install_spec(attached, &spec, count, model);
            }
            // Unknown attachments are tolerated: the paper's Fig. 5 socket
            // references `gddr5` without ever using it in the analysis.
        }
        model.components.push(ComponentInfo {
            name: socket_name.to_string(),
            kind: "socket".into(),
            count,
            provides,
        });
        Ok(())
    } else if let Some(spec) = library.lookup(socket_name) {
        install_spec(socket_name, &spec, count, model);
        Ok(())
    } else {
        Err(AspenError::UnknownEntity {
            kind: "socket",
            name: socket_name.to_string(),
        })
    }
}

fn install_spec(name: &str, spec: &ComponentSpec, count: f64, model: &mut MachineModel) {
    let mut provides = Vec::new();
    for rate in &spec.rates {
        provides.push(rate.name.clone());
        model.set_rate_if_absent(rate.clone().with_provider(name));
    }
    for (key, value) in &spec.properties {
        model.properties.insert(key.clone(), *value);
    }
    model.components.push(ComponentInfo {
        name: name.to_string(),
        kind: if spec.kind.is_empty() {
            "socket".into()
        } else {
            spec.kind.clone()
        },
        count,
        provides,
    });
}

fn resource_rate_from_def(
    def: &ResourceDef,
    provider: &str,
    properties: &[crate::ast::PropertyDecl],
) -> Result<ResourceRate> {
    // Properties of the declaring component may be referenced inside the
    // mapping expression; inline them into a copy of the expression
    // environment by rewriting the mapping into a Mapping rate evaluated with
    // the properties bound.
    let mut prop_env = ParamEnv::new();
    for p in properties {
        let value = p.value.eval(&prop_env)?;
        prop_env.set(p.name.clone(), value);
    }
    // If the mapping only references the formal argument and properties, we
    // can pre-substitute properties by evaluating the expression with the
    // argument left symbolic.  The simplest robust approach: keep the Mapping
    // kind and extend its environment at evaluation time by baking properties
    // into the expression via substitution of known values.
    let expr = substitute_known(&def.mapping, &prop_env);
    let mut rate = ResourceRate::from_mapping(&def.name, &def.arg, expr).with_provider(provider);
    for t in &def.traits {
        let m = t.multiplier.eval(&prop_env)?;
        rate = rate.with_trait(t.name.clone(), m);
    }
    Ok(rate)
}

/// Replace parameter references that are bound in `env` with literal values.
fn substitute_known(expr: &Expr, env: &ParamEnv) -> Expr {
    match expr {
        Expr::Number(v) => Expr::Number(*v),
        Expr::Param(name) => match env.get(name) {
            Ok(v) => Expr::Number(v),
            Err(_) => Expr::Param(name.clone()),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute_known(lhs, env)),
            rhs: Box::new(substitute_known(rhs, env)),
        },
        Expr::Neg(inner) => Expr::Neg(Box::new(substitute_known(inner, env))),
        Expr::Call { function, args } => Expr::Call {
            function: function.clone(),
            args: args.iter().map(|a| substitute_known(a, env)).collect(),
        },
    }
}

/// Fluent builder for machine models.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    model: MachineModel,
}

impl MachineBuilder {
    /// Start building a machine with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            model: MachineModel::new(name),
        }
    }

    /// Add a resource rate (replacing any existing provider).
    pub fn rate(mut self, rate: ResourceRate) -> Self {
        self.model.set_rate(rate);
        self
    }

    /// Add a numeric property.
    pub fn property(mut self, name: impl Into<String>, value: f64) -> Self {
        self.model.set_property(name, value);
        self
    }

    /// Record a component for reporting.
    pub fn component(mut self, info: ComponentInfo) -> Self {
        self.model.components.push(info);
        self
    }

    /// Finish building.
    pub fn build(self) -> MachineModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn linear_rate_applies_traits() {
        let rate = ResourceRate::per_second("flops", 1e9)
            .with_trait("simd", 0.125)
            .with_trait("fmad", 0.5);
        // Base: 1e9 flops take 1 second.
        assert!((rate.seconds_for(1e9, &[]).unwrap() - 1.0).abs() < 1e-12);
        // With simd+fmad the same work takes 1/16 of the time.
        let t = rate
            .seconds_for(1e9, &["simd".into(), "fmad".into()])
            .unwrap();
        assert!((t - 1.0 / 16.0).abs() < 1e-12);
        // Unknown traits are ignored.
        let t = rate.seconds_for(1e9, &["sp".into()]).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_charged_once() {
        let rate = ResourceRate::per_second("loads", 1e9).with_latency(1e-6);
        let t = rate.seconds_for(0.0, &[]).unwrap();
        assert!((t - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn mapping_rate_matches_quops_listing() {
        // resource QuOps(number) [number * 20/1000000]
        let expr = crate::parser::parse_expr("number * 20/1000000").unwrap();
        let rate = ResourceRate::from_mapping("QuOps", "number", expr);
        let t = rate.seconds_for(4.0, &[]).unwrap();
        assert!((t - 80e-6).abs() < 1e-12);
        assert!((rate.nominal_units_per_second() - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn machine_has_time_pseudo_resources() {
        let m = MachineModel::new("empty");
        assert!(m.supports("microseconds"));
        let t = m.seconds_for("microseconds", 320.0, &[]).unwrap();
        assert!((t - 320e-6).abs() < 1e-12);
    }

    #[test]
    fn unsupported_resource_is_error() {
        let m = MachineModel::new("empty");
        assert!(matches!(
            m.seconds_for("QuOps", 1.0, &[]).unwrap_err(),
            AspenError::UnsupportedResource { .. }
        ));
    }

    #[test]
    fn first_provider_wins() {
        let mut m = MachineModel::new("node");
        m.set_rate_if_absent(ResourceRate::per_second("flops", 1e9).with_provider("cpu"));
        m.set_rate_if_absent(ResourceRate::per_second("flops", 1e12).with_provider("gpu"));
        assert_eq!(m.rate("flops").unwrap().provider, "cpu");
    }

    #[test]
    fn builder_builds() {
        let m = MachineBuilder::new("test")
            .rate(ResourceRate::per_second("flops", 2e9))
            .property("qubits", 1152.0)
            .build();
        assert_eq!(m.property("qubits"), Some(1152.0));
        assert!((m.seconds_for("flops", 2e9, &[]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resolve_self_contained_document() {
        let doc = parse_document(
            r#"
            machine Tiny { [1] OneNode nodes }
            node OneNode { [1] simple_socket sockets }
            socket simple_socket {
                [1] simple_core cores
            }
            core simple_core {
                property peak [1e9]
                resource flops(n) [n / peak] with simd [0.125]
            }
            "#,
        )
        .unwrap();
        let m = MachineModel::from_document(&doc, "Tiny", &EmptyLibrary).unwrap();
        assert!(m.supports("flops"));
        let t = m.seconds_for("flops", 1e9, &[]).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        let t = m.seconds_for("flops", 1e9, &["simd".into()]).unwrap();
        assert!((t - 0.125).abs() < 1e-12);
        assert!(m.components.iter().any(|c| c.name == "simple_core"));
    }

    #[test]
    fn resolve_unknown_machine_is_error() {
        let doc = parse_document("machine A { [1] B nodes } node B { }").unwrap();
        assert!(matches!(
            MachineModel::from_document(&doc, "Missing", &EmptyLibrary).unwrap_err(),
            AspenError::UnknownEntity {
                kind: "machine",
                ..
            }
        ));
    }

    #[test]
    fn resolve_unknown_socket_is_error() {
        let doc = parse_document("machine A { [1] B nodes } node B { [1] ghost sockets }").unwrap();
        assert!(matches!(
            MachineModel::from_document(&doc, "A", &EmptyLibrary).unwrap_err(),
            AspenError::UnknownEntity { kind: "socket", .. }
        ));
    }
}
