//! Error types for the ASPEN-like modeling language.

use std::fmt;

/// Position of a token or syntax element inside a model source string.
///
/// Lines and columns are 1-based, matching the conventions of most editors so
/// that error messages can be pasted directly into a "go to line" prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl SourcePos {
    /// Create a new source position.
    pub fn new(line: usize, column: usize) -> Self {
        Self { line, column }
    }
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing, resolving or evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum AspenError {
    /// The lexer met a character it does not understand.
    Lex {
        /// Where the offending character occurred.
        pos: SourcePos,
        /// Human readable description.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Where the offending token occurred.
        pos: SourcePos,
        /// Human readable description.
        message: String,
    },
    /// An expression referenced a parameter that is not bound.
    UnknownParameter(String),
    /// An expression called a function the evaluator does not provide.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    Arity {
        /// Function name.
        function: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// Evaluation produced a non-finite value (division by zero, log of a
    /// non-positive number, ...).
    NonFinite {
        /// Description of the expression that failed.
        context: String,
    },
    /// A model, kernel, component or resource was referenced but never defined.
    UnknownEntity {
        /// Kind of entity ("kernel", "socket", "resource", ...).
        kind: &'static str,
        /// Name that could not be resolved.
        name: String,
    },
    /// An entity was defined twice.
    DuplicateEntity {
        /// Kind of entity ("kernel", "socket", "param", ...).
        kind: &'static str,
        /// Name that was defined more than once.
        name: String,
    },
    /// The machine model cannot service a resource demanded by the application.
    UnsupportedResource {
        /// Resource name demanded by the application model.
        resource: String,
    },
    /// Kernel call graph contains a cycle (`main` eventually calls itself).
    RecursiveKernel(String),
    /// Generic semantic error with a message.
    Semantic(String),
}

impl fmt::Display for AspenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspenError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            AspenError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            AspenError::UnknownParameter(name) => write!(f, "unknown parameter `{name}`"),
            AspenError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            AspenError::Arity {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} argument(s), found {found}"
            ),
            AspenError::NonFinite { context } => {
                write!(f, "expression produced a non-finite value: {context}")
            }
            AspenError::UnknownEntity { kind, name } => write!(f, "unknown {kind} `{name}`"),
            AspenError::DuplicateEntity { kind, name } => {
                write!(f, "duplicate {kind} `{name}`")
            }
            AspenError::UnsupportedResource { resource } => write!(
                f,
                "machine model provides no rate for resource `{resource}`"
            ),
            AspenError::RecursiveKernel(name) => {
                write!(f, "kernel `{name}` is part of a recursive call cycle")
            }
            AspenError::Semantic(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for AspenError {}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, AspenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lex_error_includes_position() {
        let err = AspenError::Lex {
            pos: SourcePos::new(3, 7),
            message: "unexpected `@`".into(),
        };
        assert_eq!(err.to_string(), "lex error at 3:7: unexpected `@`");
    }

    #[test]
    fn display_arity_error() {
        let err = AspenError::Arity {
            function: "log".into(),
            expected: 1,
            found: 2,
        };
        assert!(err.to_string().contains("log"));
        assert!(err.to_string().contains("expects 1"));
    }

    #[test]
    fn display_unknown_entity() {
        let err = AspenError::UnknownEntity {
            kind: "kernel",
            name: "main".into(),
        };
        assert_eq!(err.to_string(), "unknown kernel `main`");
    }

    #[test]
    fn source_pos_display() {
        assert_eq!(SourcePos::new(10, 2).to_string(), "10:2");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AspenError>();
    }
}
