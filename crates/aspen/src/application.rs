//! Resolved application models.
//!
//! An [`ApplicationModel`] wraps a parsed `model` declaration and resolves its
//! parameters into a concrete [`ParamEnv`], optionally overriding the
//! declaration's defaults with caller-supplied inputs (the paper's models
//! mark such inputs with `// Input Parameter` comments, e.g. `LPS` in Stage 1
//! and `Accuracy` in Stage 2).

use crate::ast::{DataDecl, KernelDecl, ModelDecl};
use crate::error::{AspenError, Result};
use crate::expr::ParamEnv;
use crate::parser::parse_model;

/// A resolved application model.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationModel {
    decl: ModelDecl,
}

impl ApplicationModel {
    /// Wrap an already-parsed model declaration.
    pub fn from_decl(decl: ModelDecl) -> Self {
        Self { decl }
    }

    /// Parse a source string containing exactly one model declaration.
    pub fn from_source(source: &str) -> Result<Self> {
        Ok(Self::from_decl(parse_model(source)?))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.decl.name
    }

    /// Underlying declaration.
    pub fn decl(&self) -> &ModelDecl {
        &self.decl
    }

    /// Names of all declared parameters in declaration order.
    pub fn param_names(&self) -> Vec<&str> {
        self.decl.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// Look up a kernel declaration.
    pub fn kernel(&self, name: &str) -> Result<&KernelDecl> {
        self.decl
            .kernel(name)
            .ok_or_else(|| AspenError::UnknownEntity {
                kind: "kernel",
                name: name.to_string(),
            })
    }

    /// Resolve parameters in declaration order.
    ///
    /// `overrides` take precedence over the declared defaults, and later
    /// parameter definitions see the overridden values of earlier ones — this
    /// is how `LPS = 0 // Input Parameter` becomes the sweep variable of
    /// Fig. 9(a): overriding `LPS` changes every derived parameter
    /// (`Ising`, `EH`, `EmbeddingOps`, ...).
    pub fn resolve_params(&self, overrides: &ParamEnv) -> Result<ParamEnv> {
        let mut env = ParamEnv::new();
        for decl in &self.decl.params {
            let value = if overrides.contains(&decl.name) {
                overrides.get(&decl.name)?
            } else {
                decl.value.eval(&env)?
            };
            env.set(decl.name.clone(), value);
        }
        // Overrides that do not correspond to declared parameters are still
        // made visible (useful for ad-hoc sweeps and custom resources).
        for (name, value) in overrides.iter() {
            if !env.contains(name) {
                env.set(name.to_string(), value);
            }
        }
        Ok(env)
    }

    /// Compute the size in bytes of every declared data structure under the
    /// given resolved parameter environment.  `Array(n, s)` denotes `n`
    /// elements of `s` bytes.
    pub fn data_sizes(&self, env: &ParamEnv) -> Result<Vec<(String, f64)>> {
        self.decl
            .data
            .iter()
            .map(|d| Ok((d.name.clone(), data_bytes(d, env)?)))
            .collect()
    }
}

fn data_bytes(decl: &DataDecl, env: &ParamEnv) -> Result<f64> {
    let mut product = 1.0;
    for dim in &decl.dims {
        product *= dim.eval(env)?;
    }
    Ok(product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listings;

    #[test]
    fn stage1_default_params_resolve() {
        let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
        let env = app.resolve_params(&ParamEnv::new()).unwrap();
        assert_eq!(env.get("LPS").unwrap(), 0.0);
        assert_eq!(env.get("M").unwrap(), 12.0);
        assert_eq!(env.get("NG").unwrap(), 8.0 * 12.0 * 12.0);
        // EG = 4*(2*M*N - M - N) + 16*M*N with M = N = 12.
        let eg = 4.0 * (2.0 * 144.0 - 24.0) + 16.0 * 144.0;
        assert_eq!(env.get("EG").unwrap(), eg);
        // ProcessorInitialize is the sum of the hardware constants.
        let expected = 252162.0 + 33095.0 + 0.0 + 11264.0 + 10000.0 + 4000.0 + 9052.0;
        assert_eq!(env.get("ProcessorInitialize").unwrap(), expected);
    }

    #[test]
    fn stage1_lps_override_propagates() {
        let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
        let env = app
            .resolve_params(&ParamEnv::new().with("LPS", 30.0))
            .unwrap();
        assert_eq!(env.get("LPS").unwrap(), 30.0);
        assert_eq!(env.get("Ising").unwrap(), 900.0);
        assert_eq!(env.get("NH").unwrap(), 30.0);
        assert_eq!(env.get("EH").unwrap(), 30.0 * 29.0 / 2.0);
        assert_eq!(env.get("ParameterSetting").unwrap(), 27_000.0);
        // EmbeddingOps = (EG + NG*ln(NG)) * (2*EH) * NH * NG
        let ng = 1152.0f64;
        let eg = 4.0 * (2.0 * 144.0 - 24.0) + 16.0 * 144.0;
        let eh = 435.0;
        let expected = (eg + ng * ng.ln()) * (2.0 * eh) * 30.0 * ng;
        let got = env.get("EmbeddingOps").unwrap();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn stage2_accuracy_override() {
        let app = ApplicationModel::from_source(listings::STAGE2_LISTING).unwrap();
        let env = app
            .resolve_params(&ParamEnv::new().with("Accuracy", 99.0))
            .unwrap();
        assert_eq!(env.get("Accuracy").unwrap(), 99.0);
        assert_eq!(env.get("Success").unwrap(), 0.9999);
    }

    #[test]
    fn extra_overrides_are_visible() {
        let app = ApplicationModel::from_source(listings::STAGE3_LISTING).unwrap();
        let env = app
            .resolve_params(&ParamEnv::new().with("CustomKnob", 7.0))
            .unwrap();
        assert_eq!(env.get("CustomKnob").unwrap(), 7.0);
    }

    #[test]
    fn data_sizes_for_stage1() {
        let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
        let env = app
            .resolve_params(&ParamEnv::new().with("LPS", 10.0))
            .unwrap();
        let sizes = app.data_sizes(&env).unwrap();
        // Input as Array((NH*NH), 4) = 100 * 4 bytes.
        let input = sizes.iter().find(|(n, _)| n == "Input").unwrap();
        assert_eq!(input.1, 400.0);
        // Output as Array((NG*NG), 4).
        let output = sizes.iter().find(|(n, _)| n == "Output").unwrap();
        assert_eq!(output.1, 1152.0 * 1152.0 * 4.0);
    }

    #[test]
    fn unknown_kernel_is_error() {
        let app = ApplicationModel::from_source(listings::STAGE2_LISTING).unwrap();
        assert!(app.kernel("main").is_ok());
        assert!(matches!(
            app.kernel("missing").unwrap_err(),
            AspenError::UnknownEntity { kind: "kernel", .. }
        ));
    }

    #[test]
    fn param_names_in_order() {
        let app = ApplicationModel::from_source(listings::STAGE3_LISTING).unwrap();
        let names = app.param_names();
        assert_eq!(names[0], "LPS");
        assert!(names.contains(&"SortOps"));
    }
}
