//! # aspen-model — structured analytical performance modeling
//!
//! A self-contained reimplementation of the modeling workflow of ORNL's
//! ASPEN performance-modeling language (Spafford & Vetter, SC'12), sufficient
//! to express and evaluate the machine and application models published in
//! *Performance Models for Split-execution Computing Systems* (Humble et al.,
//! 2016).
//!
//! The crate provides three layers:
//!
//! 1. **A model language** — [`parser::parse_document`] accepts ASPEN-style
//!    source describing hardware (`machine`, `node`, `socket`, `core`,
//!    `memory`, `link`) and applications (`model` with `param`, `data` and
//!    `kernel` declarations whose `execute` blocks consume `flops`, `loads`,
//!    `stores`, `intracomm`, `microseconds` or custom resources such as
//!    `QuOps`).  The paper's Figs. 5–8 listings are included verbatim in
//!    [`listings`] and parse with this grammar.
//! 2. **Resolved models** — [`machine::MachineModel`] converts resource
//!    quantities into seconds (built programmatically, from the built-in
//!    component library in [`builtin`], or from parsed documents);
//!    [`application::ApplicationModel`] resolves parameter expressions with
//!    caller-supplied input overrides.
//! 3. **The analytical evaluator** — [`predict::Predictor`] walks an
//!    application model against a machine model and produces a structured
//!    [`predict::Prediction`] with per-kernel, per-block and per-resource
//!    timing breakdowns.
//!
//! ## Quick example
//!
//! ```
//! use aspen_model::prelude::*;
//!
//! // The paper's Stage-2 model: the QPU as a statistical sampler.
//! let app = ApplicationModel::from_source(aspen_model::listings::STAGE2_LISTING)?;
//! let machine = aspen_model::builtin::simple_node(Default::default());
//! let prediction = Predictor::new(&machine)
//!     .predict(&app, &ParamEnv::new().with("Accuracy", 99.0))?;
//! // One anneal of 20 us plus 320 us readout plus 5 us thermalization.
//! assert!((prediction.seconds() - 345e-6).abs() < 1e-9);
//! # Ok::<(), aspen_model::AspenError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod application;
pub mod ast;
pub mod builtin;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod listings;
pub mod machine;
pub mod parser;
pub mod predict;

pub use application::ApplicationModel;
pub use error::{AspenError, Result, SourcePos};
pub use expr::{BinOp, Expr, ParamEnv};
pub use machine::{MachineBuilder, MachineModel, ResourceRate};
pub use predict::{BlockSemantics, Prediction, Predictor};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::application::ApplicationModel;
    pub use crate::builtin::{simple_node, BuiltinLibrary, QpuGeneration};
    pub use crate::error::{AspenError, Result};
    pub use crate::expr::{Expr, ParamEnv};
    pub use crate::machine::{MachineBuilder, MachineModel, ResourceRate};
    pub use crate::parser::{parse_document, parse_expr, parse_model};
    pub use crate::predict::{BlockSemantics, Prediction, Predictor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn crate_level_example_round_trip() {
        let app = ApplicationModel::from_source(crate::listings::STAGE2_LISTING).unwrap();
        let machine = simple_node(QpuGeneration::Dw2x);
        let prediction = Predictor::new(&machine)
            .predict(&app, &ParamEnv::new().with("Accuracy", 99.0))
            .unwrap();
        assert!((prediction.seconds() - 345e-6).abs() < 1e-9);
    }
}
