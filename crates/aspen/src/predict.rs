//! The analytical evaluator: walk an application model against a machine
//! model and produce a structured runtime prediction.
//!
//! This is the ASPEN-style "resource walk": every `execute` block's resource
//! clauses are evaluated under the resolved parameter environment, converted
//! to seconds using the machine's resource rates, and combined according to
//! the chosen [`BlockSemantics`].  Control statements (`kernel` calls,
//! `iterate`, `map`) combine block times sequentially, multiplicatively, or
//! in parallel respectively.

use crate::application::ApplicationModel;
use crate::ast::{ExecuteBlock, KernelStmt};
use crate::error::{AspenError, Result};
use crate::expr::ParamEnv;
use crate::machine::MachineModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the resource clauses inside a single `execute` block combine into the
/// block's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BlockSemantics {
    /// Resource demands are serviced sequentially: block time is the **sum**
    /// of the per-resource times.  This is the conservative default and the
    /// assumption used throughout the paper's analysis.
    #[default]
    Sum,
    /// Resource demands overlap perfectly: block time is the **max** of the
    /// per-resource times (classic roofline-style overlap).
    Max,
}

/// Time and quantity consumed by one resource clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Resource name.
    pub resource: String,
    /// Quantity demanded (after applying any `of size` multiplier).
    pub quantity: f64,
    /// Traits requested by the clause.
    pub traits: Vec<String>,
    /// Predicted seconds for this clause (for a single execution of the
    /// enclosing block).
    pub seconds: f64,
}

/// Prediction for one `execute` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPrediction {
    /// Optional block label from the model source.
    pub label: Option<String>,
    /// Number of times the block runs.
    pub count: f64,
    /// Per-clause usage for a single execution.
    pub usages: Vec<ResourceUsage>,
    /// Total predicted seconds including the execution count.
    pub seconds: f64,
}

/// One item in a kernel's predicted execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredictionItem {
    /// An execute block.
    Block(BlockPrediction),
    /// A call to another kernel.
    Call(KernelPrediction),
    /// An `iterate [n]` loop.
    Iterate {
        /// Loop trip count.
        count: f64,
        /// Total seconds (body × count).
        seconds: f64,
        /// Predicted body items (single iteration).
        body: Vec<PredictionItem>,
    },
    /// A `map [n]` parallel region (assumed perfectly parallel).
    Map {
        /// Parallel width.
        width: f64,
        /// Total seconds (one instance; instances overlap).
        seconds: f64,
        /// Predicted body items (single instance).
        body: Vec<PredictionItem>,
    },
}

impl PredictionItem {
    /// Predicted seconds contributed by this item.
    pub fn seconds(&self) -> f64 {
        match self {
            PredictionItem::Block(b) => b.seconds,
            PredictionItem::Call(k) => k.seconds,
            PredictionItem::Iterate { seconds, .. } | PredictionItem::Map { seconds, .. } => {
                *seconds
            }
        }
    }
}

/// Prediction for one kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPrediction {
    /// Kernel name.
    pub kernel: String,
    /// Items in execution order.
    pub items: Vec<PredictionItem>,
    /// Total predicted seconds for the kernel.
    pub seconds: f64,
}

/// Aggregate quantity and time per resource across the whole prediction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceTotal {
    /// Total quantity demanded (weighted by block counts and loop trips).
    pub quantity: f64,
    /// Total predicted seconds attributed to the resource.
    pub seconds: f64,
}

/// A complete runtime prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Application model name.
    pub model: String,
    /// Machine model name.
    pub machine: String,
    /// Entry kernel prediction (usually `main`).
    pub root: KernelPrediction,
    /// Totals per resource.
    pub resource_totals: BTreeMap<String, ResourceTotal>,
}

impl Prediction {
    /// Total predicted wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.root.seconds
    }

    /// Find the first top-level item produced by a call to `kernel` (depth-1
    /// search) — convenient for per-stage reporting.
    pub fn kernel_seconds(&self, kernel: &str) -> Option<f64> {
        fn find(items: &[PredictionItem], kernel: &str) -> Option<f64> {
            for item in items {
                if let PredictionItem::Call(k) = item {
                    if k.kernel == kernel {
                        return Some(k.seconds);
                    }
                    if let Some(s) = find(&k.items, kernel) {
                        return Some(s);
                    }
                }
            }
            None
        }
        if self.root.kernel == kernel {
            return Some(self.root.seconds);
        }
        find(&self.root.items, kernel)
    }

    /// The resource that contributes the most predicted time.
    pub fn dominant_resource(&self) -> Option<(&str, ResourceTotal)> {
        self.resource_totals
            .iter()
            .max_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds))
            .map(|(name, total)| (name.as_str(), *total))
    }
}

/// The analytical evaluator.
#[derive(Debug, Clone)]
pub struct Predictor<'m> {
    machine: &'m MachineModel,
    semantics: BlockSemantics,
}

impl<'m> Predictor<'m> {
    /// Create a predictor for the given machine with default (sum) semantics.
    pub fn new(machine: &'m MachineModel) -> Self {
        Self {
            machine,
            semantics: BlockSemantics::Sum,
        }
    }

    /// Select the within-block combination semantics.
    pub fn with_semantics(mut self, semantics: BlockSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Predict the runtime of the application's `main` kernel with the given
    /// input-parameter overrides.
    pub fn predict(&self, app: &ApplicationModel, overrides: &ParamEnv) -> Result<Prediction> {
        self.predict_kernel(app, "main", overrides)
    }

    /// Predict the runtime starting from an arbitrary kernel.
    pub fn predict_kernel(
        &self,
        app: &ApplicationModel,
        kernel: &str,
        overrides: &ParamEnv,
    ) -> Result<Prediction> {
        let env = app.resolve_params(overrides)?;
        let mut totals: BTreeMap<String, ResourceTotal> = BTreeMap::new();
        let mut stack = Vec::new();
        let root = self.walk_kernel(app, kernel, &env, &mut totals, &mut stack)?;
        Ok(Prediction {
            model: app.name().to_string(),
            machine: self.machine.name.clone(),
            root,
            resource_totals: totals,
        })
    }

    fn walk_kernel(
        &self,
        app: &ApplicationModel,
        kernel: &str,
        env: &ParamEnv,
        totals: &mut BTreeMap<String, ResourceTotal>,
        stack: &mut Vec<String>,
    ) -> Result<KernelPrediction> {
        if stack.iter().any(|k| k == kernel) {
            return Err(AspenError::RecursiveKernel(kernel.to_string()));
        }
        stack.push(kernel.to_string());
        let decl = app.kernel(kernel)?;
        let items = self.walk_statements(app, &decl.statements, env, totals, stack)?;
        stack.pop();
        let seconds = items.iter().map(PredictionItem::seconds).sum();
        Ok(KernelPrediction {
            kernel: kernel.to_string(),
            items,
            seconds,
        })
    }

    fn walk_statements(
        &self,
        app: &ApplicationModel,
        statements: &[KernelStmt],
        env: &ParamEnv,
        totals: &mut BTreeMap<String, ResourceTotal>,
        stack: &mut Vec<String>,
    ) -> Result<Vec<PredictionItem>> {
        let mut items = Vec::with_capacity(statements.len());
        for stmt in statements {
            match stmt {
                KernelStmt::Execute(block) => {
                    items.push(PredictionItem::Block(
                        self.predict_block(block, env, 1.0, totals)?,
                    ));
                }
                KernelStmt::Call(name) => {
                    items.push(PredictionItem::Call(
                        self.walk_kernel(app, name, env, totals, stack)?,
                    ));
                }
                KernelStmt::Iterate { count, body } => {
                    let trips = count.eval(env)?.max(0.0);
                    // Account for the repetition in the totals by scaling the
                    // body contribution: walk once, then multiply.
                    let mut body_totals: BTreeMap<String, ResourceTotal> = BTreeMap::new();
                    let body_items =
                        self.walk_statements(app, body, env, &mut body_totals, stack)?;
                    let body_seconds: f64 = body_items.iter().map(PredictionItem::seconds).sum();
                    for (name, t) in body_totals {
                        let entry = totals.entry(name).or_default();
                        entry.quantity += t.quantity * trips;
                        entry.seconds += t.seconds * trips;
                    }
                    items.push(PredictionItem::Iterate {
                        count: trips,
                        seconds: body_seconds * trips,
                        body: body_items,
                    });
                }
                KernelStmt::Map { count, body } => {
                    let width = count.eval(env)?.max(1.0);
                    let mut body_totals: BTreeMap<String, ResourceTotal> = BTreeMap::new();
                    let body_items =
                        self.walk_statements(app, body, env, &mut body_totals, stack)?;
                    let body_seconds: f64 = body_items.iter().map(PredictionItem::seconds).sum();
                    // Work is performed `width` times (totals scale), but the
                    // instances overlap so the time contribution is one body.
                    for (name, t) in body_totals {
                        let entry = totals.entry(name).or_default();
                        entry.quantity += t.quantity * width;
                        entry.seconds += t.seconds;
                    }
                    items.push(PredictionItem::Map {
                        width,
                        seconds: body_seconds,
                        body: body_items,
                    });
                }
            }
        }
        Ok(items)
    }

    fn predict_block(
        &self,
        block: &ExecuteBlock,
        env: &ParamEnv,
        outer_scale: f64,
        totals: &mut BTreeMap<String, ResourceTotal>,
    ) -> Result<BlockPrediction> {
        let count = block.count.eval(env)?.max(0.0) * outer_scale;
        let mut usages = Vec::with_capacity(block.clauses.len());
        for clause in &block.clauses {
            let mut quantity = clause.quantity.eval(env)?;
            if let Some(size) = &clause.size {
                quantity *= size.eval(env)?;
            }
            let seconds = self
                .machine
                .seconds_for(&clause.resource, quantity, &clause.traits)?;
            let entry = totals.entry(clause.resource.clone()).or_default();
            entry.quantity += quantity * count;
            entry.seconds += seconds * count;
            usages.push(ResourceUsage {
                resource: clause.resource.clone(),
                quantity,
                traits: clause.traits.clone(),
                seconds,
            });
        }
        let single = match self.semantics {
            BlockSemantics::Sum => usages.iter().map(|u| u.seconds).sum::<f64>(),
            BlockSemantics::Max => usages
                .iter()
                .map(|u| u.seconds)
                .fold(0.0f64, |acc, s| acc.max(s)),
        };
        Ok(BlockPrediction {
            label: block.label.clone(),
            count,
            usages,
            seconds: single * count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ApplicationModel;
    use crate::machine::{MachineBuilder, ResourceRate};

    fn simple_machine() -> MachineModel {
        MachineBuilder::new("test-machine")
            .rate(ResourceRate::per_second("flops", 1e9))
            .rate(ResourceRate::per_second("loads", 1e10))
            .rate(ResourceRate::per_second("stores", 1e10))
            .rate(ResourceRate::per_second("intracomm", 8e9))
            .rate(ResourceRate::seconds_per_unit("QuOps", 20e-6))
            .build()
    }

    fn app(source: &str) -> ApplicationModel {
        ApplicationModel::from_source(source).unwrap()
    }

    #[test]
    fn single_block_sum_semantics() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                param W = 1e9
                kernel main {
                    execute [1] {
                        flops [W]
                        loads [1e10]
                    }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        // 1 s of flops + 1 s of loads.
        assert!((p.seconds() - 2.0).abs() < 1e-9);
        assert_eq!(p.resource_totals.len(), 2);
    }

    #[test]
    fn single_block_max_semantics() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel main {
                    execute [1] {
                        flops [1e9]
                        loads [1e10]
                    }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .with_semantics(BlockSemantics::Max)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        assert!((p.seconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn execute_count_multiplies_time() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel main {
                    execute [10] { flops [1e9] }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        assert!((p.seconds() - 10.0).abs() < 1e-9);
        assert!((p.resource_totals["flops"].quantity - 1e10).abs() < 1.0);
    }

    #[test]
    fn kernel_calls_compose_sequentially() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel A { execute [1] { flops [1e9] } }
                kernel B { execute [1] { flops [2e9] } }
                kernel main { A B }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        assert!((p.seconds() - 3.0).abs() < 1e-9);
        assert!((p.kernel_seconds("A").unwrap() - 1.0).abs() < 1e-9);
        assert!((p.kernel_seconds("B").unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recursive_kernels_are_rejected() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel A { B }
                kernel B { A }
                kernel main { A }
            }
        "#);
        assert!(matches!(
            Predictor::new(&machine)
                .predict(&model, &ParamEnv::new())
                .unwrap_err(),
            AspenError::RecursiveKernel(_)
        ));
    }

    #[test]
    fn iterate_multiplies_and_map_overlaps() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel main {
                    iterate [4] { execute [1] { flops [1e9] } }
                    map [8] { execute [1] { flops [1e9] } }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        // iterate: 4 s, map: 1 s (parallel).
        assert!((p.seconds() - 5.0).abs() < 1e-9);
        // Total work still counts all 12 executions.
        assert!((p.resource_totals["flops"].quantity - 12e9).abs() < 1.0);
    }

    #[test]
    fn of_size_multiplies_quantity() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                data R as Array(10, 4)
                kernel main {
                    execute [1] { loads [10] of size [4000] to R }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        assert!((p.resource_totals["loads"].quantity - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn unsupported_resource_bubbles_up() {
        let machine = simple_machine();
        let model = app(r#"
            model M { kernel main { execute [1] { teraflops [1] } } }
        "#);
        assert!(matches!(
            Predictor::new(&machine)
                .predict(&model, &ParamEnv::new())
                .unwrap_err(),
            AspenError::UnsupportedResource { .. }
        ));
    }

    #[test]
    fn quops_paper_expression() {
        // The stage-2 QuOps clause with Accuracy=99 (percent) and
        // Success=0.9999 evaluates to ceil(ln(0.01)/ln(0.0001)) = 1 read.
        let machine = simple_machine();
        let model = app(crate::listings::STAGE2_LISTING);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new().with("Accuracy", 99.0))
            .unwrap();
        let quops = &p.resource_totals["QuOps"];
        assert_eq!(quops.quantity, 1.0);
        // 1 QuOp at 20 µs plus 320 µs readout plus 5 µs thermalization.
        let expected = 20e-6 + 320e-6 + 5e-6;
        assert!((p.seconds() - expected).abs() < 1e-12);
    }

    #[test]
    fn dominant_resource_is_identified() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                kernel main {
                    execute [1] { flops [5e9] loads [1e9] }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        let (name, total) = p.dominant_resource().unwrap();
        assert_eq!(name, "flops");
        assert!(total.seconds > 4.9);
    }

    #[test]
    fn negative_or_zero_counts_clamp() {
        let machine = simple_machine();
        let model = app(r#"
            model M {
                param N = 0
                kernel main {
                    execute [N - 1] { flops [1e9] }
                }
            }
        "#);
        let p = Predictor::new(&machine)
            .predict(&model, &ParamEnv::new())
            .unwrap();
        assert_eq!(p.seconds(), 0.0);
    }
}
