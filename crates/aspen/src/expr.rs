//! Arithmetic expressions used throughout ASPEN-style models.
//!
//! Parameters, resource quantities and custom resource-to-time mappings are
//! all expressed as arithmetic over named parameters.  The expression language
//! supports the operators `+ - * / ^`, unary negation, parentheses and a small
//! set of mathematical functions (`log`, `log2`, `log10`, `ln`, `exp`, `sqrt`,
//! `ceil`, `floor`, `abs`, `min`, `max`, `pow`).
//!
//! `log` follows the convention of the paper's listings and denotes the
//! natural logarithm; the ratio `log(1-p_a)/log(1-p_s)` in Eq. (6) is base
//! independent, and stage-3's `log(Results)*Results` only shifts the curve by
//! a constant factor.

use crate::error::{AspenError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Binary operators available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Exponentiation (`^`).
    Pow,
}

impl BinOp {
    /// Apply the operator to two operands.
    pub fn apply(self, lhs: f64, rhs: f64) -> f64 {
        match self {
            BinOp::Add => lhs + rhs,
            BinOp::Sub => lhs - rhs,
            BinOp::Mul => lhs * rhs,
            BinOp::Div => lhs / rhs,
            BinOp::Pow => lhs.powf(rhs),
        }
    }

    /// Symbol used when pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
        }
    }
}

/// An arithmetic expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Number(f64),
    /// Reference to a named parameter.
    Param(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function call such as `log(x)` or `max(a, b)`.
    Call {
        /// Function name (lower-cased at parse time).
        function: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Literal constructor.
    pub fn number(value: f64) -> Self {
        Expr::Number(value)
    }

    /// Parameter-reference constructor.
    pub fn param(name: impl Into<String>) -> Self {
        Expr::Param(name.into())
    }

    /// Build a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Build a function-call expression.
    pub fn call(function: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::Call {
            function: function.into().to_ascii_lowercase(),
            args,
        }
    }

    /// Collect the names of all parameters referenced by this expression.
    pub fn referenced_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Number(_) => {}
            Expr::Param(name) => out.push(name.clone()),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_params(out);
                rhs.collect_params(out);
            }
            Expr::Neg(inner) => inner.collect_params(out),
            Expr::Call { args, .. } => {
                for arg in args {
                    arg.collect_params(out);
                }
            }
        }
    }

    /// Evaluate the expression under the given environment.
    ///
    /// Returns an error if a referenced parameter is unbound, an unknown
    /// function is called, or the result is non-finite.
    pub fn eval(&self, env: &ParamEnv) -> Result<f64> {
        let value = self.eval_inner(env)?;
        if value.is_finite() {
            Ok(value)
        } else {
            Err(AspenError::NonFinite {
                context: self.to_string(),
            })
        }
    }

    fn eval_inner(&self, env: &ParamEnv) -> Result<f64> {
        match self {
            Expr::Number(v) => Ok(*v),
            Expr::Param(name) => env.get(name),
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval_inner(env)?;
                let r = rhs.eval_inner(env)?;
                Ok(op.apply(l, r))
            }
            Expr::Neg(inner) => Ok(-inner.eval_inner(env)?),
            Expr::Call { function, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(arg.eval_inner(env)?);
                }
                apply_function(function, &values)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(v) => write!(f, "{v}"),
            Expr::Param(name) => write!(f, "{name}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Neg(inner) => write!(f, "(-{inner})"),
            Expr::Call { function, args } => {
                write!(f, "{function}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn expect_arity(function: &str, args: &[f64], expected: usize) -> Result<()> {
    if args.len() == expected {
        Ok(())
    } else {
        Err(AspenError::Arity {
            function: function.to_string(),
            expected,
            found: args.len(),
        })
    }
}

/// Apply a built-in mathematical function by name.
pub fn apply_function(function: &str, args: &[f64]) -> Result<f64> {
    match function {
        "log" | "ln" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].ln())
        }
        "log2" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].log2())
        }
        "log10" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].log10())
        }
        "exp" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].exp())
        }
        "sqrt" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].sqrt())
        }
        "ceil" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].ceil())
        }
        "floor" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].floor())
        }
        "abs" => {
            expect_arity(function, args, 1)?;
            Ok(args[0].abs())
        }
        "min" => {
            expect_arity(function, args, 2)?;
            Ok(args[0].min(args[1]))
        }
        "max" => {
            expect_arity(function, args, 2)?;
            Ok(args[0].max(args[1]))
        }
        "pow" => {
            expect_arity(function, args, 2)?;
            Ok(args[0].powf(args[1]))
        }
        other => Err(AspenError::UnknownFunction(other.to_string())),
    }
}

/// A parameter environment binding names to numeric values.
///
/// Bindings are stored in a sorted map so iteration order (and therefore
/// report output) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamEnv {
    bindings: BTreeMap<String, f64>,
}

impl ParamEnv {
    /// Create an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Look up a binding.
    // sx-lint: hot-exempt -- parameter lookup happens during model prediction, off the per-event path; `get` name-collides with HashMap calls in engine bodies
    pub fn get(&self, name: &str) -> Result<f64> {
        self.bindings
            .get(name)
            .copied()
            .ok_or_else(|| AspenError::UnknownParameter(name.to_string()))
    }

    /// Whether a binding exists.
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// Iterate over `(name, value)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Merge another environment into this one; `other` wins on conflicts.
    pub fn extend_from(&mut self, other: &ParamEnv) {
        for (k, v) in other.iter() {
            self.bindings.insert(k.to_string(), v);
        }
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for ParamEnv {
    fn from_iter<T: IntoIterator<Item = (S, f64)>>(iter: T) -> Self {
        let mut env = ParamEnv::new();
        for (k, v) in iter {
            env.set(k, v);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ParamEnv {
        ParamEnv::new().with("x", 4.0).with("y", 3.0)
    }

    #[test]
    fn eval_literal() {
        assert_eq!(Expr::number(2.5).eval(&env()).unwrap(), 2.5);
    }

    #[test]
    fn eval_param() {
        assert_eq!(Expr::param("x").eval(&env()).unwrap(), 4.0);
    }

    #[test]
    fn unknown_param_is_error() {
        let err = Expr::param("zzz").eval(&env()).unwrap_err();
        assert_eq!(err, AspenError::UnknownParameter("zzz".into()));
    }

    #[test]
    fn eval_binary_ops() {
        let e = Expr::binary(BinOp::Add, Expr::param("x"), Expr::param("y"));
        assert_eq!(e.eval(&env()).unwrap(), 7.0);
        let e = Expr::binary(BinOp::Sub, Expr::param("x"), Expr::param("y"));
        assert_eq!(e.eval(&env()).unwrap(), 1.0);
        let e = Expr::binary(BinOp::Mul, Expr::param("x"), Expr::param("y"));
        assert_eq!(e.eval(&env()).unwrap(), 12.0);
        let e = Expr::binary(BinOp::Div, Expr::param("x"), Expr::number(2.0));
        assert_eq!(e.eval(&env()).unwrap(), 2.0);
        let e = Expr::binary(BinOp::Pow, Expr::param("x"), Expr::number(2.0));
        assert_eq!(e.eval(&env()).unwrap(), 16.0);
    }

    #[test]
    fn eval_negation() {
        let e = Expr::Neg(Box::new(Expr::param("y")));
        assert_eq!(e.eval(&env()).unwrap(), -3.0);
    }

    #[test]
    fn eval_functions() {
        let e = Expr::call("sqrt", vec![Expr::param("x")]);
        assert_eq!(e.eval(&env()).unwrap(), 2.0);
        let e = Expr::call("ceil", vec![Expr::number(1.2)]);
        assert_eq!(e.eval(&env()).unwrap(), 2.0);
        let e = Expr::call("floor", vec![Expr::number(1.8)]);
        assert_eq!(e.eval(&env()).unwrap(), 1.0);
        let e = Expr::call("max", vec![Expr::number(1.0), Expr::number(5.0)]);
        assert_eq!(e.eval(&env()).unwrap(), 5.0);
        let e = Expr::call("min", vec![Expr::number(1.0), Expr::number(5.0)]);
        assert_eq!(e.eval(&env()).unwrap(), 1.0);
        let e = Expr::call("log", vec![Expr::call("exp", vec![Expr::number(1.0)])]);
        assert!((e.eval(&env()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_function_is_error() {
        let e = Expr::call("gamma", vec![Expr::number(1.0)]);
        assert_eq!(
            e.eval(&env()).unwrap_err(),
            AspenError::UnknownFunction("gamma".into())
        );
    }

    #[test]
    fn wrong_arity_is_error() {
        let e = Expr::call("log", vec![Expr::number(1.0), Expr::number(2.0)]);
        assert!(matches!(
            e.eval(&env()).unwrap_err(),
            AspenError::Arity { .. }
        ));
    }

    #[test]
    fn division_by_zero_reports_non_finite() {
        let e = Expr::binary(BinOp::Div, Expr::number(1.0), Expr::number(0.0));
        assert!(matches!(
            e.eval(&env()).unwrap_err(),
            AspenError::NonFinite { .. }
        ));
    }

    #[test]
    fn log_of_zero_reports_non_finite() {
        let e = Expr::call("log", vec![Expr::number(0.0)]);
        assert!(matches!(
            e.eval(&env()).unwrap_err(),
            AspenError::NonFinite { .. }
        ));
    }

    #[test]
    fn referenced_params_are_sorted_and_deduped() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::param("b"), Expr::param("a")),
            Expr::param("b"),
        );
        assert_eq!(
            e.referenced_params(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn eq6_repetition_expression_matches_formula() {
        // ceil(log(1 - pa) / log(1 - ps)) with pa = 0.99, ps = 0.7.
        let e = Expr::call(
            "ceil",
            vec![Expr::binary(
                BinOp::Div,
                Expr::call(
                    "log",
                    vec![Expr::binary(
                        BinOp::Sub,
                        Expr::number(1.0),
                        Expr::param("pa"),
                    )],
                ),
                Expr::call(
                    "log",
                    vec![Expr::binary(
                        BinOp::Sub,
                        Expr::number(1.0),
                        Expr::param("ps"),
                    )],
                ),
            )],
        );
        let env = ParamEnv::new().with("pa", 0.99).with("ps", 0.7);
        let expected = ((1.0f64 - 0.99).ln() / (1.0f64 - 0.7).ln()).ceil();
        assert_eq!(e.eval(&env).unwrap(), expected);
        assert_eq!(expected, 4.0);
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::binary(BinOp::Pow, Expr::param("LPS"), Expr::number(2.0));
        assert_eq!(e.to_string(), "(LPS ^ 2)");
    }

    #[test]
    fn param_env_iteration_is_sorted() {
        let env = ParamEnv::new().with("z", 1.0).with("a", 2.0).with("m", 3.0);
        let names: Vec<&str> = env.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn param_env_extend_overrides() {
        let mut a = ParamEnv::new().with("x", 1.0);
        let b = ParamEnv::new().with("x", 9.0).with("y", 2.0);
        a.extend_from(&b);
        assert_eq!(a.get("x").unwrap(), 9.0);
        assert_eq!(a.get("y").unwrap(), 2.0);
    }

    #[test]
    fn param_env_from_iterator() {
        let env: ParamEnv = vec![("a", 1.0), ("b", 2.0)].into_iter().collect();
        assert_eq!(env.len(), 2);
        assert!(env.contains("a"));
        assert!(!env.is_empty());
    }
}
