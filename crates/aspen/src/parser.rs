//! Recursive-descent parser for the ASPEN-like modeling language.
//!
//! The grammar is small and line-oriented in spirit, but the parser is purely
//! token driven so the whitespace layout of the paper's listings (Figs. 5-8)
//! is irrelevant.  See the crate-level documentation for a grammar summary.

use crate::ast::*;
use crate::error::{AspenError, Result, SourcePos};
use crate::expr::{BinOp, Expr};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a full document from source text.
pub fn parse_document(source: &str) -> Result<Document> {
    Parser::new(source)?.document()
}

/// Parse a source string that is expected to contain exactly one application
/// model and return it.
pub fn parse_model(source: &str) -> Result<ModelDecl> {
    let doc = parse_document(source)?;
    match doc.models.len() {
        1 => Ok(doc.models.into_iter().next().expect("length checked")),
        0 => Err(AspenError::Semantic(
            "source contains no `model` declaration".into(),
        )),
        n => Err(AspenError::Semantic(format!(
            "source contains {n} `model` declarations, expected exactly 1"
        ))),
    }
}

/// Parse a standalone arithmetic expression (useful for tests and for
/// building parameter studies from strings).
pub fn parse_expr(source: &str) -> Result<Expr> {
    let mut p = Parser::new(source)?;
    let expr = p.expression()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self> {
        Ok(Self {
            tokens: tokenize(source)?,
            index: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    fn pos(&self) -> SourcePos {
        self.tokens[self.index].pos
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.index].kind.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> AspenError {
        AspenError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    // sx-lint: hot-exempt -- aspen parsing runs once at model-load time; `expect` also name-collides with Result::expect tokens in engine bodies
    fn expect(&mut self, expected: &TokenKind) -> Result<()> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("expected end of input, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Check whether the next token is the given keyword (case sensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(name) if name == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----------------------------------------------------------------- //
    // Document level
    // ----------------------------------------------------------------- //

    fn document(&mut self) -> Result<Document> {
        let mut doc = Document::default();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Ident(kw) => match kw.as_str() {
                    "include" => {
                        self.bump();
                        doc.includes.push(self.include_path()?);
                    }
                    "machine" => {
                        self.bump();
                        doc.machines.push(self.machine_decl()?);
                    }
                    "node" => {
                        self.bump();
                        doc.nodes.push(self.node_decl()?);
                    }
                    "socket" => {
                        self.bump();
                        doc.sockets.push(self.socket_decl()?);
                    }
                    "core" => {
                        self.bump();
                        doc.cores.push(self.core_like_decl().map(
                            |(name, resources, properties)| CoreDecl {
                                name,
                                resources,
                                properties,
                            },
                        )?);
                    }
                    "memory" => {
                        self.bump();
                        doc.memories.push(self.core_like_decl().map(
                            |(name, resources, properties)| MemoryDecl {
                                name,
                                resources,
                                properties,
                            },
                        )?);
                    }
                    "link" => {
                        self.bump();
                        doc.links.push(self.core_like_decl().map(
                            |(name, resources, properties)| LinkDecl {
                                name,
                                resources,
                                properties,
                            },
                        )?);
                    }
                    "model" => {
                        self.bump();
                        doc.models.push(self.model_decl()?);
                    }
                    other => {
                        return Err(self.error(format!(
                            "expected a top-level declaration keyword, found `{other}`"
                        )))
                    }
                },
                other => {
                    return Err(
                        self.error(format!("expected a top-level declaration, found {other}"))
                    )
                }
            }
        }
        Ok(doc)
    }

    fn include_path(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Path(p) => {
                self.bump();
                Ok(p)
            }
            TokenKind::Ident(p) => {
                self.bump();
                Ok(p)
            }
            other => Err(self.error(format!("expected include path, found {other}"))),
        }
    }

    // ----------------------------------------------------------------- //
    // Hardware declarations
    // ----------------------------------------------------------------- //

    fn machine_decl(&mut self) -> Result<MachineDecl> {
        let name = self.expect_ident()?;
        let (contains, _, _, _, properties) = self.hardware_body()?;
        Ok(MachineDecl {
            name,
            contains,
            properties,
        })
    }

    fn node_decl(&mut self) -> Result<NodeDecl> {
        let name = self.expect_ident()?;
        let (contains, _, _, _, properties) = self.hardware_body()?;
        Ok(NodeDecl {
            name,
            contains,
            properties,
        })
    }

    fn socket_decl(&mut self) -> Result<SocketDecl> {
        let name = self.expect_ident()?;
        let (contains, memory, link, resources, properties) = self.hardware_body()?;
        Ok(SocketDecl {
            name,
            contains,
            memory,
            link,
            resources,
            properties,
        })
    }

    fn core_like_decl(&mut self) -> Result<(String, Vec<ResourceDef>, Vec<PropertyDecl>)> {
        let name = self.expect_ident()?;
        let (contains, _, _, resources, properties) = self.hardware_body()?;
        if !contains.is_empty() {
            return Err(AspenError::Semantic(format!(
                "component `{name}` cannot contain sub-components"
            )));
        }
        Ok((name, resources, properties))
    }

    /// Parse the `{ ... }` body shared by all hardware declarations.
    ///
    /// Returns `(contains, memory, link, resources, properties)`.
    #[allow(clippy::type_complexity)]
    fn hardware_body(
        &mut self,
    ) -> Result<(
        Vec<ComponentRef>,
        Option<String>,
        Option<String>,
        Vec<ResourceDef>,
        Vec<PropertyDecl>,
    )> {
        self.expect(&TokenKind::LBrace)?;
        let mut contains = Vec::new();
        let mut memory = None;
        let mut link = None;
        let mut resources = Vec::new();
        let mut properties = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::LBracket => {
                    // [count] Name role
                    self.bump();
                    let count = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    let name = self.expect_ident()?;
                    let role = self.expect_ident()?;
                    contains.push(ComponentRef { count, name, role });
                }
                TokenKind::Ident(kw) if kw == "resource" => {
                    self.bump();
                    resources.push(self.resource_def()?);
                }
                TokenKind::Ident(kw) if kw == "property" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(&TokenKind::LBracket)?;
                    let value = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    properties.push(PropertyDecl { name, value });
                }
                TokenKind::Ident(kw) if kw == "linked" => {
                    // linked with pcie
                    self.bump();
                    if !self.eat_keyword("with") {
                        return Err(self.error("expected `with` after `linked`"));
                    }
                    link = Some(self.expect_ident()?);
                }
                TokenKind::Ident(_) => {
                    // `gddr5 memory` style attachment: Name role
                    let name = self.expect_ident()?;
                    let role = self.expect_ident()?;
                    match role.as_str() {
                        "memory" => memory = Some(name),
                        "link" => link = Some(name),
                        other => {
                            return Err(self.error(format!(
                                "unexpected attachment role `{other}` (expected `memory` or `link`)"
                            )))
                        }
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected token in hardware body: {other}")))
                }
            }
        }
        Ok((contains, memory, link, resources, properties))
    }

    /// `resource Name(arg) [mapping] (with trait [mult], trait [mult], ...)?`
    fn resource_def(&mut self) -> Result<ResourceDef> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let arg = self.expect_ident()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBracket)?;
        let mapping = self.expression()?;
        self.expect(&TokenKind::RBracket)?;
        let mut traits = Vec::new();
        if self.eat_keyword("with") {
            loop {
                let trait_name = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let multiplier = self.expression()?;
                self.expect(&TokenKind::RBracket)?;
                traits.push(TraitDef {
                    name: trait_name,
                    multiplier,
                });
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(ResourceDef {
            name,
            arg,
            mapping,
            traits,
        })
    }

    // ----------------------------------------------------------------- //
    // Application model declarations
    // ----------------------------------------------------------------- //

    fn model_decl(&mut self) -> Result<ModelDecl> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut params = Vec::new();
        let mut data = Vec::new();
        let mut kernels = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(kw) if kw == "param" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(&TokenKind::Equals)?;
                    let value = self.expression()?;
                    params.push(ParamDecl { name, value });
                }
                TokenKind::Ident(kw) if kw == "data" => {
                    self.bump();
                    data.push(self.data_decl()?);
                }
                TokenKind::Ident(kw) if kw == "kernel" => {
                    self.bump();
                    kernels.push(self.kernel_decl()?);
                }
                other => {
                    return Err(self.error(format!(
                        "expected `param`, `data`, `kernel` or `}}` in model body, found {other}"
                    )))
                }
            }
        }
        Ok(ModelDecl {
            name,
            params,
            data,
            kernels,
        })
    }

    /// `data Name as Array((NH*NH), 4)`
    fn data_decl(&mut self) -> Result<DataDecl> {
        let name = self.expect_ident()?;
        if !self.eat_keyword("as") {
            return Err(self.error("expected `as` in data declaration"));
        }
        let layout = self.expect_ident()?;
        let mut dims = Vec::new();
        self.expect(&TokenKind::LParen)?;
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                dims.push(self.expression()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(DataDecl { name, layout, dims })
    }

    fn kernel_decl(&mut self) -> Result<KernelDecl> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let statements = self.kernel_statements()?;
        Ok(KernelDecl { name, statements })
    }

    /// Parse statements up to and including the closing `}`.
    fn kernel_statements(&mut self) -> Result<Vec<KernelStmt>> {
        let mut statements = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(kw) if kw == "execute" => {
                    self.bump();
                    statements.push(KernelStmt::Execute(self.execute_block()?));
                }
                TokenKind::Ident(kw) if kw == "iterate" || kw == "map" => {
                    self.bump();
                    self.expect(&TokenKind::LBracket)?;
                    let count = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::LBrace)?;
                    let body = self.kernel_statements()?;
                    statements.push(if kw == "iterate" {
                        KernelStmt::Iterate { count, body }
                    } else {
                        KernelStmt::Map { count, body }
                    });
                }
                TokenKind::Ident(name) => {
                    self.bump();
                    statements.push(KernelStmt::Call(name));
                }
                other => {
                    return Err(self.error(format!("unexpected token in kernel body: {other}")))
                }
            }
        }
        Ok(statements)
    }

    /// `execute label? [count] { clauses }` — the count bracket is optional
    /// (defaults to 1) to match some published ASPEN listings.
    fn execute_block(&mut self) -> Result<ExecuteBlock> {
        let label = match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let count = if matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            let c = self.expression()?;
            self.expect(&TokenKind::RBracket)?;
            c
        } else {
            Expr::number(1.0)
        };
        self.expect(&TokenKind::LBrace)?;
        let mut clauses = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(_) => clauses.push(self.resource_clause()?),
                other => {
                    return Err(self.error(format!("unexpected token in execute block: {other}")))
                }
            }
        }
        Ok(ExecuteBlock {
            label,
            count,
            clauses,
        })
    }

    /// `resource [quantity] (as t1, t2)? (to X | from X)? (of size [expr])?`
    /// The tail clauses may appear in any order.
    fn resource_clause(&mut self) -> Result<ResourceClause> {
        let resource = self.expect_ident()?;
        self.expect(&TokenKind::LBracket)?;
        let quantity = self.expression()?;
        self.expect(&TokenKind::RBracket)?;
        let mut traits = Vec::new();
        let mut target = None;
        let mut size = None;
        loop {
            match self.peek().clone() {
                TokenKind::Ident(kw) if kw == "as" => {
                    self.bump();
                    loop {
                        traits.push(self.expect_ident()?);
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                TokenKind::Ident(kw) if kw == "to" || kw == "from" => {
                    self.bump();
                    target = Some(self.expect_ident()?);
                }
                TokenKind::Ident(kw) if kw == "of" => {
                    self.bump();
                    if !self.eat_keyword("size") {
                        return Err(self.error("expected `size` after `of`"));
                    }
                    self.expect(&TokenKind::LBracket)?;
                    size = Some(self.expression()?);
                    self.expect(&TokenKind::RBracket)?;
                }
                _ => break,
            }
        }
        Ok(ResourceClause {
            resource,
            quantity,
            size,
            traits,
            target,
        })
    }

    // ----------------------------------------------------------------- //
    // Expressions
    // ----------------------------------------------------------------- //

    /// Entry point: lowest precedence (additive).
    fn expression(&mut self) -> Result<Expr> {
        self.additive()
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Minus) {
            self.bump();
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.power()
        }
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        if matches!(self.peek(), TokenKind::Caret) {
            self.bump();
            // Right-associative.
            let exponent = self.unary()?;
            Ok(Expr::binary(BinOp::Pow, base, exponent))
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Expr::number(v))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if matches!(self.peek(), TokenKind::LParen) && is_function_name(&name) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if matches!(self.peek(), TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::call(name, args))
                } else {
                    Ok(Expr::param(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Names treated as function calls when followed by `(` inside expressions.
fn is_function_name(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "log"
            | "ln"
            | "log2"
            | "log10"
            | "exp"
            | "sqrt"
            | "ceil"
            | "floor"
            | "abs"
            | "min"
            | "max"
            | "pow"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParamEnv;

    #[test]
    fn parse_simple_expression() {
        let e = parse_expr("2 + 3 * 4").unwrap();
        assert_eq!(e.eval(&ParamEnv::new()).unwrap(), 14.0);
    }

    #[test]
    fn parse_power_is_right_associative_and_binds_tighter_than_mul() {
        let e = parse_expr("2 * 3 ^ 2").unwrap();
        assert_eq!(e.eval(&ParamEnv::new()).unwrap(), 18.0);
        let e = parse_expr("2 ^ 3 ^ 2").unwrap();
        assert_eq!(e.eval(&ParamEnv::new()).unwrap(), 512.0);
    }

    #[test]
    fn parse_unary_minus() {
        let e = parse_expr("-3 + 5").unwrap();
        assert_eq!(e.eval(&ParamEnv::new()).unwrap(), 2.0);
    }

    #[test]
    fn parse_function_calls() {
        let e = parse_expr("ceil(log(1-(0.99))/log(1-0.75))").unwrap();
        assert_eq!(e.eval(&ParamEnv::new()).unwrap(), 4.0);
    }

    #[test]
    fn identifier_followed_by_paren_is_param_unless_known_function() {
        // `NG(3)` would be ambiguous; unknown names are treated as parameters
        // so `log(NG)` still works while `Array(...)` never appears in exprs.
        let e = parse_expr("log(NG)").unwrap();
        let env = ParamEnv::new().with("NG", std::f64::consts::E);
        assert!((e.eval(&env).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_trailing_garbage_is_error() {
        assert!(parse_expr("1 + 2 }").is_err());
    }

    #[test]
    fn parse_machine_and_node() {
        let doc = parse_document(
            r#"
            machine SimpleNode { [1] SIMPLE nodes }
            node SIMPLE {
                [1] intel_xeon_e5_2680 sockets
                [1] nvidia_m2090 sockets
                [1] DwaveVesuvius20 sockets
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.machines.len(), 1);
        assert_eq!(doc.machines[0].name, "SimpleNode");
        assert_eq!(doc.machines[0].contains.len(), 1);
        assert_eq!(doc.nodes[0].contains.len(), 3);
        assert_eq!(doc.nodes[0].contains[2].name, "DwaveVesuvius20");
        assert_eq!(doc.nodes[0].contains[2].role, "sockets");
    }

    #[test]
    fn parse_socket_with_memory_and_link() {
        let doc = parse_document(
            r#"
            socket DwaveVesuvius {
                [1] Vesuvius cores
                gddr5 memory
                linked with pcie
            }
            "#,
        )
        .unwrap();
        let s = &doc.sockets[0];
        assert_eq!(s.name, "DwaveVesuvius");
        assert_eq!(s.memory.as_deref(), Some("gddr5"));
        assert_eq!(s.link.as_deref(), Some("pcie"));
        assert_eq!(s.contains[0].name, "Vesuvius");
    }

    #[test]
    fn parse_core_with_custom_resource() {
        let doc = parse_document(
            r#"
            core Vesuvius20 {
                resource QuOps(number) [number * 20/1000000]
            }
            "#,
        )
        .unwrap();
        let core = &doc.cores[0];
        assert_eq!(core.name, "Vesuvius20");
        assert_eq!(core.resources.len(), 1);
        let r = &core.resources[0];
        assert_eq!(r.name, "QuOps");
        assert_eq!(r.arg, "number");
        let env = ParamEnv::new().with("number", 1.0e6);
        assert!((r.mapping.eval(&env).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn parse_resource_with_traits() {
        let doc = parse_document(
            r#"
            core xeon_core {
                property peak_flops [21.6e9]
                resource flops(number) [number / peak_flops] with simd [0.125], fmad [0.5]
            }
            "#,
        )
        .unwrap();
        let core = &doc.cores[0];
        assert_eq!(core.properties[0].name, "peak_flops");
        assert_eq!(core.resources[0].traits.len(), 2);
        assert_eq!(core.resources[0].traits[0].name, "simd");
    }

    #[test]
    fn parse_includes() {
        let doc = parse_document(
            r#"
            include memory/ddr3_1066.aspen
            include sockets/intel_xeon_e5_2680.aspen
            machine M { [1] N nodes }
            node N { [1] c sockets }
            "#,
        )
        .unwrap();
        assert_eq!(doc.includes.len(), 2);
        assert_eq!(doc.includes[0], "memory/ddr3_1066.aspen");
    }

    #[test]
    fn parse_paper_stage1_model() {
        let model = parse_model(crate::listings::STAGE1_LISTING).unwrap();
        assert_eq!(model.name, "Stage1");
        assert!(model.params.iter().any(|p| p.name == "EmbeddingOps"));
        assert!(model.params.iter().any(|p| p.name == "ProcessorInitialize"));
        assert_eq!(model.data.len(), 2);
        let main = model.kernel("main").unwrap();
        assert_eq!(main.statements.len(), 3);
        let embed = model.kernel("EmbedData").unwrap();
        match &embed.statements[0] {
            KernelStmt::Execute(block) => {
                assert_eq!(block.label.as_deref(), Some("embed"));
                assert_eq!(block.clauses.len(), 4);
                assert_eq!(block.clauses[1].resource, "flops");
                assert_eq!(block.clauses[1].traits, vec!["sp", "simd"]);
                assert_eq!(block.clauses[3].resource, "intracomm");
                assert_eq!(block.clauses[3].traits, vec!["copyout"]);
            }
            other => panic!("expected execute block, got {other:?}"),
        }
    }

    #[test]
    fn parse_paper_stage2_model() {
        let model = parse_model(crate::listings::STAGE2_LISTING).unwrap();
        assert_eq!(model.name, "Stage2");
        let kernel = model.kernel("Stage2Processing").unwrap();
        assert_eq!(kernel.statements.len(), 3);
        match &kernel.statements[0] {
            KernelStmt::Execute(block) => {
                assert_eq!(block.label.as_deref(), Some("mainblock2"));
                assert_eq!(block.clauses[0].resource, "QuOps");
            }
            other => panic!("expected execute block, got {other:?}"),
        }
    }

    #[test]
    fn parse_paper_stage3_model() {
        let model = parse_model(crate::listings::STAGE3_LISTING).unwrap();
        assert_eq!(model.name, "Stage3");
        let kernel = model.kernel("FindSolution").unwrap();
        match &kernel.statements[0] {
            KernelStmt::Execute(block) => {
                assert_eq!(block.label.as_deref(), Some("sort"));
                let loads = &block.clauses[0];
                assert_eq!(loads.resource, "loads");
                assert!(loads.size.is_some());
            }
            other => panic!("expected execute block, got {other:?}"),
        }
    }

    #[test]
    fn parse_model_rejects_zero_or_many() {
        assert!(parse_model("machine M { [1] N nodes }").is_err());
        assert!(parse_model("model A { } model B { }").is_err());
    }

    #[test]
    fn parse_iterate_and_map() {
        let model = parse_model(
            r#"
            model Loop {
                param N = 10
                kernel main {
                    iterate [N] {
                        execute [1] { flops [100] }
                    }
                    map [4] {
                        execute [1] { flops [50] }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let main = model.kernel("main").unwrap();
        assert!(matches!(main.statements[0], KernelStmt::Iterate { .. }));
        assert!(matches!(main.statements[1], KernelStmt::Map { .. }));
    }

    #[test]
    fn execute_without_count_defaults_to_one() {
        let model = parse_model(
            r#"
            model M {
                kernel main {
                    execute { flops [10] }
                }
            }
            "#,
        )
        .unwrap();
        match &model.kernel("main").unwrap().statements[0] {
            KernelStmt::Execute(block) => {
                assert_eq!(block.count, Expr::number(1.0));
            }
            other => panic!("unexpected statement {other:?}"),
        }
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse_document("machine { }").unwrap_err();
        assert!(matches!(err, AspenError::Parse { .. }));
    }
}
