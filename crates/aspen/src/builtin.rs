//! Built-in hardware component library.
//!
//! ASPEN models reference hardware sockets via `include` directives
//! (`include sockets/intel_xeon_e5_2680.aspen`); those component files are
//! not part of the publication, so this module provides equivalent built-in
//! definitions based on the public specifications of the referenced parts.
//! They are deliberately simple — only the quantities that enter the paper's
//! analysis (sustained FLOP rates, memory bandwidth, PCIe bandwidth, and the
//! D-Wave 20 µs anneal duration) are modeled.

use crate::machine::{ComponentLibrary, ComponentSpec, MachineBuilder, MachineModel, ResourceRate};

/// Peak single-precision FLOP rate of one Intel Xeon E5-2680 socket
/// (8 cores × 2.7 GHz × 8 SP FLOPs/cycle), in FLOP/s.
pub const XEON_E5_2680_PEAK_SP_FLOPS: f64 = 8.0 * 2.7e9 * 8.0;

/// Sustained main-memory bandwidth of a 4-channel DDR3-1066 configuration,
/// in bytes/s.
pub const DDR3_1066_BANDWIDTH: f64 = 4.0 * 8.528e9;

/// Peak single-precision FLOP rate of an NVIDIA M2090 (Fermi), in FLOP/s.
pub const NVIDIA_M2090_PEAK_SP_FLOPS: f64 = 1.331e12;

/// GDDR5 memory bandwidth of an NVIDIA M2090, in bytes/s.
pub const GDDR5_M2090_BANDWIDTH: f64 = 177e9;

/// Effective PCIe gen-2 x16 bandwidth, in bytes/s.
pub const PCIE_GEN2_X16_BANDWIDTH: f64 = 8e9;

/// PCIe transaction latency charged once per transfer, in seconds.
pub const PCIE_LATENCY: f64 = 1e-6;

/// Default D-Wave anneal duration per sample (QuOp), in seconds.  The paper's
/// Fig. 5 listing encodes this as `number * 20/1000000`.
pub const DWAVE_ANNEAL_SECONDS: f64 = 20e-6;

/// Number of physical qubits in the D-Wave Two "Vesuvius" processor
/// (8×8 Chimera lattice of K4,4 cells).
pub const DWAVE_VESUVIUS_QUBITS: f64 = 512.0;

/// Number of physical qubits in the D-Wave 2X processor (12×12 lattice).
pub const DWAVE_2X_QUBITS: f64 = 1152.0;

/// Build the resource rates of an Intel Xeon E5-2680 socket.
///
/// The base `flops` rate is the scalar single-issue rate (cores × clock);
/// the `simd` trait widens by 8 lanes and `fmad` doubles throughput, so a
/// clause tagged `as sp, fmad, simd` reaches the peak rate.  `loads`/`stores`
/// are serviced by the attached DDR3 memory.
pub fn intel_xeon_e5_2680() -> ComponentSpec {
    let scalar = 8.0 * 2.7e9; // cores × clock, one FLOP per cycle per core
    ComponentSpec {
        kind: "socket".into(),
        rates: vec![
            ResourceRate::per_second("flops", scalar)
                .with_trait("sp", 1.0)
                .with_trait("dp", 2.0)
                .with_trait("simd", 1.0 / 8.0)
                .with_trait("fmad", 1.0 / 2.0),
            ResourceRate::per_second("loads", DDR3_1066_BANDWIDTH),
            ResourceRate::per_second("stores", DDR3_1066_BANDWIDTH),
        ],
        properties: vec![
            ("xeon_cores".into(), 8.0),
            ("xeon_clock_hz".into(), 2.7e9),
            ("xeon_peak_sp_flops".into(), XEON_E5_2680_PEAK_SP_FLOPS),
        ],
    }
}

/// Build the resource rates of a DDR3-1066 memory subsystem.
pub fn ddr3_1066() -> ComponentSpec {
    ComponentSpec {
        kind: "memory".into(),
        rates: vec![
            ResourceRate::per_second("loads", DDR3_1066_BANDWIDTH),
            ResourceRate::per_second("stores", DDR3_1066_BANDWIDTH),
        ],
        properties: vec![("ddr3_bandwidth".into(), DDR3_1066_BANDWIDTH)],
    }
}

/// Build the resource rates of an NVIDIA M2090 accelerator socket.
pub fn nvidia_m2090() -> ComponentSpec {
    ComponentSpec {
        kind: "socket".into(),
        rates: vec![
            // Registered under a distinct name so the host CPU remains the
            // provider of generic `flops` demands, matching the paper (the
            // GPU is present in the node model but unused by the analysis).
            ResourceRate::per_second("gpu_flops", NVIDIA_M2090_PEAK_SP_FLOPS),
            ResourceRate::per_second("gpu_loads", GDDR5_M2090_BANDWIDTH),
            ResourceRate::per_second("gpu_stores", GDDR5_M2090_BANDWIDTH),
        ],
        properties: vec![("m2090_peak_sp_flops".into(), NVIDIA_M2090_PEAK_SP_FLOPS)],
    }
}

/// Build the resource rates of the GDDR5 memory attached to the QPU socket in
/// the paper's Fig. 5 (declared but unused by the analysis).
pub fn gddr5() -> ComponentSpec {
    ComponentSpec {
        kind: "memory".into(),
        rates: vec![],
        properties: vec![("gddr5_bandwidth".into(), GDDR5_M2090_BANDWIDTH)],
    }
}

/// Build the resource rates of a PCIe gen-2 x16 interconnect.
pub fn pcie() -> ComponentSpec {
    ComponentSpec {
        kind: "link".into(),
        rates: vec![
            ResourceRate::per_second("intracomm", PCIE_GEN2_X16_BANDWIDTH)
                .with_latency(PCIE_LATENCY)
                .with_trait("copyout", 1.0)
                .with_trait("copyin", 1.0),
        ],
        properties: vec![("pcie_bandwidth".into(), PCIE_GEN2_X16_BANDWIDTH)],
    }
}

/// Build the resource rates of the D-Wave Two (Vesuvius, 512-qubit) QPU
/// socket: quantum operations are converted to time at 20 µs per anneal.
pub fn dwave_vesuvius_20() -> ComponentSpec {
    ComponentSpec {
        kind: "socket".into(),
        rates: vec![ResourceRate::seconds_per_unit(
            "QuOps",
            DWAVE_ANNEAL_SECONDS,
        )],
        properties: vec![
            ("qpu_qubits".into(), DWAVE_VESUVIUS_QUBITS),
            ("qpu_anneal_seconds".into(), DWAVE_ANNEAL_SECONDS),
        ],
    }
}

/// Build the resource rates of the D-Wave 2X (1152-qubit) QPU socket.
pub fn dwave_2x() -> ComponentSpec {
    ComponentSpec {
        kind: "socket".into(),
        rates: vec![ResourceRate::seconds_per_unit(
            "QuOps",
            DWAVE_ANNEAL_SECONDS,
        )],
        properties: vec![
            ("qpu_qubits".into(), DWAVE_2X_QUBITS),
            ("qpu_anneal_seconds".into(), DWAVE_ANNEAL_SECONDS),
        ],
    }
}

/// The standard component library used to resolve the paper's machine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuiltinLibrary;

impl ComponentLibrary for BuiltinLibrary {
    fn lookup(&self, name: &str) -> Option<ComponentSpec> {
        match name {
            "intel_xeon_e5_2680" => Some(intel_xeon_e5_2680()),
            "ddr3_1066" => Some(ddr3_1066()),
            "nvidia_m2090" => Some(nvidia_m2090()),
            "gddr5" => Some(gddr5()),
            "pcie" => Some(pcie()),
            "DwaveVesuvius20" | "dwave_vesuvius_20" | "Vesuvius20" => Some(dwave_vesuvius_20()),
            "DwaveWashington" | "dwave_2x" => Some(dwave_2x()),
            _ => None,
        }
    }
}

/// Construct the paper's `SimpleNode` machine (Fig. 5) directly: one Xeon
/// E5-2680 socket, one NVIDIA M2090, one D-Wave QPU socket, DDR3 memory and a
/// PCIe link between host and QPU.
///
/// `qpu` selects which QPU generation is installed.
pub fn simple_node(qpu: QpuGeneration) -> MachineModel {
    let xeon = intel_xeon_e5_2680();
    let gpu = nvidia_m2090();
    let link = pcie();
    let qpu_spec = match qpu {
        QpuGeneration::Vesuvius => dwave_vesuvius_20(),
        QpuGeneration::Dw2x => dwave_2x(),
    };
    let mut builder = MachineBuilder::new("SimpleNode");
    for spec in [&xeon, &gpu, &link, &qpu_spec] {
        for rate in &spec.rates {
            builder = builder.rate(rate.clone());
        }
        for (k, v) in &spec.properties {
            builder = builder.property(k.clone(), *v);
        }
    }
    builder.build()
}

/// Which D-Wave processor generation the QPU socket models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QpuGeneration {
    /// D-Wave Two "Vesuvius" (512 qubits, 8×8 Chimera lattice).
    Vesuvius,
    /// D-Wave 2X "Washington" (1152 qubits, 12×12 Chimera lattice).
    #[default]
    Dw2x,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ComponentLibrary, MachineModel};
    use crate::parser::parse_document;

    #[test]
    fn xeon_peak_rate_with_all_traits() {
        let spec = intel_xeon_e5_2680();
        let flops = spec.rates.iter().find(|r| r.name == "flops").unwrap();
        let t = flops
            .seconds_for(XEON_E5_2680_PEAK_SP_FLOPS, &["sp".into(), "simd".into()])
            .unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quops_rate_is_twenty_microseconds() {
        let spec = dwave_vesuvius_20();
        let quops = &spec.rates[0];
        let t = quops.seconds_for(1.0, &[]).unwrap();
        assert!((t - 20e-6).abs() < 1e-12);
    }

    #[test]
    fn library_lookup_known_and_unknown() {
        let lib = BuiltinLibrary;
        assert!(lib.lookup("intel_xeon_e5_2680").is_some());
        assert!(lib.lookup("pcie").is_some());
        assert!(lib.lookup("DwaveVesuvius20").is_some());
        assert!(lib.lookup("quantum_mainframe_9000").is_none());
    }

    #[test]
    fn simple_node_supports_all_paper_resources() {
        let m = simple_node(QpuGeneration::Dw2x);
        for resource in [
            "flops",
            "loads",
            "stores",
            "intracomm",
            "QuOps",
            "microseconds",
        ] {
            assert!(m.supports(resource), "missing {resource}");
        }
        assert_eq!(m.property("qpu_qubits"), Some(1152.0));
    }

    #[test]
    fn vesuvius_node_has_512_qubits() {
        let m = simple_node(QpuGeneration::Vesuvius);
        assert_eq!(m.property("qpu_qubits"), Some(512.0));
    }

    #[test]
    fn paper_machine_listing_resolves_with_builtin_library() {
        let doc = parse_document(crate::listings::MACHINE_LISTING).unwrap();
        let m = MachineModel::from_document(&doc, "SimpleNode", &BuiltinLibrary).unwrap();
        assert!(m.supports("flops"));
        assert!(m.supports("QuOps"));
        assert!(m.supports("intracomm"));
        // The QuOps rate in the listing is 20 µs per operation.
        let t = m.seconds_for("QuOps", 5.0, &[]).unwrap();
        assert!((t - 100e-6).abs() < 1e-12);
        // The CPU socket is declared first, so it provides `flops`.
        assert_eq!(m.rate("flops").unwrap().provider, "intel_xeon_e5_2680");
    }
}
