//! Tokenizer for the ASPEN-like model language.
//!
//! The lexer is a small hand-written scanner.  It understands identifiers,
//! numeric literals (including scientific notation), punctuation, the path
//! syntax used by `include` directives (`sockets/intel_xeon_e5_2680.aspen`),
//! and both `//` line comments and `/* ... */` block comments.

use crate::error::{AspenError, Result, SourcePos};
use std::fmt;

/// A lexical token together with its position in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Position of the first character of the token.
    pub pos: SourcePos,
}

/// The different kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`machine`, `kernel`, `flops`, `LPS`, ...).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// A path-like literal used by `include` (contains `/` or `.`).
    Path(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(v) => write!(f, "number `{v}`"),
            TokenKind::Path(p) => write!(f, "path `{p}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenize a full source string.
///
/// The returned vector always ends with an [`TokenKind::Eof`] token.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    index: usize,
    line: usize,
    column: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().collect(),
            index: 0,
            line: 1,
            column: 1,
            source,
        }
    }

    fn pos(&self) -> SourcePos {
        SourcePos::new(self.line, self.column)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.index).copied()
    }

    fn peek_ahead(&self, offset: usize) -> Option<char> {
        self.chars.get(self.index + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.index += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                break;
            };
            let kind = match c {
                '{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                '}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                '[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                ']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                '=' => {
                    self.bump();
                    TokenKind::Equals
                }
                '+' => {
                    self.bump();
                    TokenKind::Plus
                }
                '-' => {
                    self.bump();
                    TokenKind::Minus
                }
                '*' => {
                    self.bump();
                    TokenKind::Star
                }
                '/' => {
                    self.bump();
                    TokenKind::Slash
                }
                '^' => {
                    self.bump();
                    TokenKind::Caret
                }
                c if c.is_ascii_digit() || c == '.' => self.lex_number(pos)?,
                c if is_ident_start(c) => {
                    // Path literals (`sockets/intel_xeon.aspen`) are only
                    // recognized immediately after the `include` keyword so
                    // that `a/b` elsewhere lexes as a division.
                    let expect_path = matches!(
                        tokens.last().map(|t: &Token| &t.kind),
                        Some(TokenKind::Ident(kw)) if kw == "include"
                    );
                    self.lex_ident_or_path(expect_path)
                }
                other => {
                    return Err(AspenError::Lex {
                        pos,
                        message: format!("unexpected character `{other}`"),
                    })
                }
            };
            tokens.push(Token { kind, pos });
        }
        Ok(tokens)
    }

    /// Skip whitespace and comments.
    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_ahead(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_ahead(1) == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek_ahead(1) == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(AspenError::Lex {
                                    pos: start,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, pos: SourcePos) -> Result<TokenKind> {
        let start = self.index;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '.' {
                self.bump();
            } else {
                break;
            }
        }
        // Scientific notation: 1.5e-3
        if matches!(self.peek(), Some('e') | Some('E')) {
            let mark = self.index;
            self.bump();
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // not an exponent after all (e.g. `20 es`), rewind
                self.index = mark;
            }
        }
        let text: String = self.chars[start..self.index].iter().collect();
        text.parse::<f64>()
            .map(TokenKind::Number)
            .map_err(|_| AspenError::Lex {
                pos,
                message: format!("invalid numeric literal `{text}`"),
            })
    }

    fn lex_ident_or_path(&mut self, allow_path: bool) -> TokenKind {
        let start = self.index;
        let mut is_path = false;
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else if allow_path
                && (c == '/' || c == '.')
                && matches!(self.peek_ahead(1), Some(n) if is_ident_continue(n))
            {
                // A `/` or `.` immediately followed by an identifier character
                // inside an identifier is treated as part of a path literal
                // (used by `include sockets/intel_xeon.aspen`).
                is_path = true;
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.index].iter().collect();
        debug_assert!(
            !text.is_empty(),
            "lex_ident called on empty input: {}",
            self.source.len()
        );
        if is_path {
            TokenKind::Path(text)
        } else {
            TokenKind::Ident(text)
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_source_yields_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn punctuation_tokens() {
        assert_eq!(
            kinds("{ } [ ] ( ) , = + - * / ^"),
            vec![
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Equals,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Caret,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_numbers() {
        assert_eq!(
            kinds("param LPS = 42"),
            vec![
                TokenKind::Ident("param".into()),
                TokenKind::Ident("LPS".into()),
                TokenKind::Equals,
                TokenKind::Number(42.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1.5e-3")[0], TokenKind::Number(0.0015));
        assert_eq!(kinds("2E6")[0], TokenKind::Number(2_000_000.0));
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            kinds("param X = 1 // Input Parameter\nparam Y = 2"),
            vec![
                TokenKind::Ident("param".into()),
                TokenKind::Ident("X".into()),
                TokenKind::Equals,
                TokenKind::Number(1.0),
                TokenKind::Ident("param".into()),
                TokenKind::Ident("Y".into()),
                TokenKind::Equals,
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn block_comments_are_skipped() {
        assert_eq!(
            kinds("a /* multi\nline */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(matches!(
            tokenize("/* never closed").unwrap_err(),
            AspenError::Lex { .. }
        ));
    }

    #[test]
    fn include_paths_are_path_tokens() {
        let toks = kinds("include sockets/intel_xeon_e5_2680.aspen");
        assert_eq!(toks[0], TokenKind::Ident("include".into()));
        assert_eq!(
            toks[1],
            TokenKind::Path("sockets/intel_xeon_e5_2680.aspen".into())
        );
    }

    #[test]
    fn division_is_not_a_path() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = tokenize("param @x").unwrap_err();
        match err {
            AspenError::Lex { pos, .. } => {
                assert_eq!(pos.line, 1);
                assert_eq!(pos.column, 7);
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, SourcePos::new(1, 1));
        assert_eq!(toks[1].pos, SourcePos::new(2, 3));
    }

    #[test]
    fn paper_stage2_listing_tokenizes() {
        let src = r#"
            execute mainblock2[1]
            {
                // Number of QPU calls
                QuOps [ceil(log(1-(Accuracy/100))/log(1-Success))]
            }
        "#;
        let toks = tokenize(src).unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident("QuOps".into())));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident("ceil".into())));
    }
}
