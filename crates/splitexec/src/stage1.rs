//! Stage 1 — classical pre-processing: problem generation, minor embedding,
//! parameter setting and processor initialization.
//!
//! This is the stage the paper identifies as the bottleneck of the whole
//! split-execution application (Fig. 9a and Sec. 3.3).  Two paths are
//! provided:
//!
//! * [`predict_stage1`] walks the paper's Fig. 6 ASPEN model (worst-case CMR
//!   operation count, `LPS²` logical-Ising construction, `LPS³` parameter
//!   setting, constant electronics initialization) against the `SimpleNode`
//!   machine model — the *solid line* of Fig. 9(a).
//! * [`execute_stage1`] actually performs the work with the real
//!   implementations (QUBO→Ising conversion, CMR embedding, parameter
//!   spreading) and measures wall-clock time — the analogue of the paper's
//!   *dashed* experimentally-observed line.

use crate::config::SplitExecConfig;
use crate::error::PipelineError;
use crate::machine::SplitMachine;
use crate::offline_cache::EmbeddingCache;
use crate::timing::timed;
use aspen_model::{listings, ApplicationModel, ParamEnv, Prediction, Predictor};
use minor_embed::{embed_ising, find_embedding, CmrStats, EmbeddedIsing, ParameterSetting};
use quantum_anneal::QpuTimings;
use qubo_ising::{qubo_to_ising, Ising, Qubo};
use serde::{Deserialize, Serialize};

/// Analytic prediction for stage 1 at a given logical problem size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage1Prediction {
    /// Logical problem size (`LPS`, number of logical spins).
    pub lps: usize,
    /// Total predicted seconds for the stage.
    pub total_seconds: f64,
    /// Seconds attributed to building the logical Ising model and setting its
    /// parameters (`InitializeData` kernel).
    pub initialize_data_seconds: f64,
    /// Seconds attributed to the minor-embedding computation (`EmbedData`).
    pub embed_seconds: f64,
    /// Seconds attributed to electronics initialization
    /// (`InitializeProcessor`; constant).
    pub processor_initialize_seconds: f64,
    /// The worst-case embedding operation count charged by the model.
    pub embedding_ops: f64,
    /// The full ASPEN prediction, for detailed reporting.
    pub prediction: Prediction,
}

/// Walk the paper's Stage-1 model for a logical problem of `lps` spins on the
/// given machine.
// sx-lint: hot-exempt -- runs only on a CostModel::costs memo miss: once per distinct problem size, amortized off the per-event path
pub fn predict_stage1(
    machine: &SplitMachine,
    lps: usize,
) -> Result<Stage1Prediction, PipelineError> {
    let app = ApplicationModel::from_source(listings::STAGE1_LISTING)?;
    let (m, n) = machine.lattice_dims();
    let overrides = ParamEnv::new()
        .with("LPS", lps as f64)
        .with("M", m as f64)
        .with("N", n as f64);
    let prediction = Predictor::new(&machine.aspen).predict(&app, &overrides)?;
    let env = app.resolve_params(&overrides)?;
    Ok(Stage1Prediction {
        lps,
        total_seconds: prediction.seconds(),
        initialize_data_seconds: prediction.kernel_seconds("InitializeData").unwrap_or(0.0),
        embed_seconds: prediction.kernel_seconds("EmbedData").unwrap_or(0.0),
        processor_initialize_seconds: prediction
            .kernel_seconds("InitializeProcessor")
            .unwrap_or(0.0),
        embedding_ops: env.get("EmbeddingOps")?,
        prediction,
    })
}

/// Measured result of actually running stage 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stage1Execution {
    /// Logical problem size (number of QUBO variables).
    pub lps: usize,
    /// Seconds spent converting the QUBO to the logical Ising model.
    pub conversion_seconds: f64,
    /// Floating-point operations counted during conversion.
    pub conversion_operations: u64,
    /// Seconds spent in the CMR embedding heuristic.
    pub embedding_seconds: f64,
    /// Work counters reported by the heuristic (zero when the embedding was
    /// served from a cache).
    pub embedding_stats: CmrStats,
    /// Whether the embedding came from an [`EmbeddingCache`] rather than
    /// being computed in-line.
    pub embedding_cache_hit: bool,
    /// Seconds spent spreading parameters over the embedded chains.
    pub parameter_seconds: f64,
    /// Parameter-setting operation count.
    pub parameter_operations: u64,
    /// Modeled electronics-initialization time (cannot be executed without
    /// the physical control system; taken from the hardware constants).
    pub processor_initialize_seconds: f64,
    /// The logical Ising model produced from the QUBO.
    pub logical: Ising,
    /// Energy offset between the QUBO and logical Ising objective.
    pub offset: f64,
    /// The embedded (physical) Ising program.
    pub embedded: EmbeddedIsing,
    /// Classical wall-clock seconds actually measured
    /// (conversion + embedding + parameter setting).
    pub measured_seconds: f64,
    /// Measured seconds plus the modeled initialization constant — the
    /// end-to-end stage-1 cost comparable with [`Stage1Prediction`].
    pub total_seconds: f64,
}

/// Execute stage 1 for a concrete QUBO on the given machine.
pub fn execute_stage1(
    machine: &SplitMachine,
    config: &SplitExecConfig,
    qubo: &Qubo,
) -> Result<Stage1Execution, PipelineError> {
    execute_stage1_cached(machine, config, qubo, None)
}

/// Execute stage 1, optionally serving the minor embedding from an
/// [`EmbeddingCache`] (the paper's Sec. 3.3 "off-line embedding" remedy; the
/// batch-submission path uses this to amortize the dominant stage-1 cost
/// across jobs with the same interaction topology).
pub fn execute_stage1_cached(
    machine: &SplitMachine,
    config: &SplitExecConfig,
    qubo: &Qubo,
    cache: Option<&EmbeddingCache>,
) -> Result<Stage1Execution, PipelineError> {
    if qubo.num_variables() == 0 {
        return Err(PipelineError::BadInput(
            "the QUBO instance has no variables".into(),
        ));
    }
    let lps = qubo.num_variables();

    // 1. Logical Ising construction (the paper's `InitializeData`).
    let (conversion, conversion_seconds) = timed(|| qubo_to_ising(qubo));
    let logical = conversion.ising;

    // 2. Minor embedding with the CMR heuristic (`EmbedData`), or a cache
    //    lookup keyed on the interaction graph.
    let interaction = logical.interaction_graph();
    let (embedding, embedding_stats, embedding_seconds, embedding_cache_hit) = match cache {
        Some(cache) => {
            let served = cache.get_or_compute(&interaction, machine, config)?;
            (
                served.embedding,
                served.stats,
                served.seconds,
                served.cache_hit,
            )
        }
        None => {
            let (outcome, seconds) =
                timed(|| find_embedding(&interaction, &machine.hardware, &config.cmr));
            let outcome = outcome?;
            (outcome.embedding, outcome.stats, seconds, false)
        }
    };

    // 3. Parameter setting over the embedded chains.
    let setting = ParameterSetting::auto(&logical, config.chain_strength_factor);
    let (embedded, parameter_seconds) =
        timed(|| embed_ising(&logical, &embedding, &machine.hardware, setting));

    // 4. Electronics initialization: a constant taken from the hardware
    //    model (we have no programmable magnetic memory to drive).
    let processor_initialize_seconds = QpuTimings::dw2x().processor_initialize_seconds();

    let measured_seconds = conversion_seconds + embedding_seconds + parameter_seconds;
    Ok(Stage1Execution {
        lps,
        conversion_seconds,
        conversion_operations: conversion.operations,
        embedding_seconds,
        embedding_stats,
        embedding_cache_hit,
        parameter_seconds,
        parameter_operations: embedded.operations,
        processor_initialize_seconds,
        logical,
        offset: conversion.offset,
        embedded,
        measured_seconds,
        total_seconds: measured_seconds + processor_initialize_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::QpuModel;
    use chimera_graph::generators;
    use minor_embed::verify_embedding;
    use qubo_ising::prelude::MaxCut;

    fn machine() -> SplitMachine {
        SplitMachine::paper_default()
    }

    #[test]
    fn prediction_matches_hand_computed_processor_initialize() {
        let p = predict_stage1(&machine(), 10).unwrap();
        // The constant block is ProcessorInitialize microseconds.
        let expected = 319_573e-6;
        assert!((p.processor_initialize_seconds - expected).abs() < 1e-9);
        assert!(p.total_seconds >= p.embed_seconds);
    }

    #[test]
    fn prediction_grows_steeply_with_problem_size() {
        let machine = machine();
        let p10 = predict_stage1(&machine, 10).unwrap();
        let p50 = predict_stage1(&machine, 50).unwrap();
        let p100 = predict_stage1(&machine, 100).unwrap();
        assert!(p50.embed_seconds > p10.embed_seconds * 10.0);
        assert!(p100.embed_seconds > p50.embed_seconds * 2.0);
        assert!(p100.embedding_ops > p50.embedding_ops);
    }

    #[test]
    fn prediction_embedding_ops_match_formula() {
        let p = predict_stage1(&machine(), 30).unwrap();
        let m = 12.0_f64;
        let ng = 8.0 * m * m;
        let eg = 4.0 * (2.0 * m * m - 2.0 * m) + 16.0 * m * m;
        let eh = 30.0 * 29.0 / 2.0;
        let expected = (eg + ng * ng.ln()) * (2.0 * eh) * 30.0 * ng;
        assert!((p.embedding_ops - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn prediction_respects_vesuvius_lattice() {
        let vesuvius = SplitMachine::new(QpuModel::Vesuvius);
        let p8 = predict_stage1(&vesuvius, 20).unwrap();
        let p12 = predict_stage1(&machine(), 20).unwrap();
        // A larger hardware graph makes the modeled embedding more expensive.
        assert!(p12.embedding_ops > p8.embedding_ops);
    }

    #[test]
    fn execution_produces_valid_embedding_and_counts() {
        let machine = machine();
        let config = SplitExecConfig::with_seed(3);
        let qubo = MaxCut::unweighted(generators::cycle(8)).to_qubo();
        let result = execute_stage1(&machine, &config, &qubo).unwrap();
        assert_eq!(result.lps, 8);
        assert!(result.conversion_operations > 0);
        assert!(result.parameter_operations > 0);
        assert!(result.embedding_stats.dijkstra_calls > 0);
        assert!(result.measured_seconds > 0.0);
        assert!(result.total_seconds > result.measured_seconds);
        verify_embedding(
            &result.logical.interaction_graph(),
            &machine.hardware,
            &result.embedded.embedding,
        )
        .unwrap();
    }

    #[test]
    fn execution_rejects_empty_problem() {
        let err =
            execute_stage1(&machine(), &SplitExecConfig::default(), &Qubo::new(0)).unwrap_err();
        assert!(matches!(err, PipelineError::BadInput(_)));
    }

    #[test]
    fn execution_propagates_embedding_failure() {
        // K40 cannot embed into a single unit cell; use a tiny faulted machine.
        let chimera = chimera_graph::Chimera::new(1, 1, 4);
        let faults = chimera_graph::FaultModel::none();
        let mut machine = SplitMachine::with_faults(QpuModel::Vesuvius, faults);
        machine.hardware = chimera.graph().clone();
        let qubo = MaxCut::unweighted(generators::complete(40)).to_qubo();
        let err = execute_stage1(&machine, &SplitExecConfig::default(), &qubo).unwrap_err();
        assert!(matches!(err, PipelineError::Embedding(_)));
    }

    #[test]
    fn modeled_init_constant_dominates_small_problems() {
        // For small inputs the fixed electronics programming cost dominates
        // the classical work, exactly as in the paper's Fig. 9(a) plateau at
        // small n.
        let machine = machine();
        let config = SplitExecConfig::with_seed(1);
        let qubo = MaxCut::unweighted(generators::cycle(4)).to_qubo();
        let result = execute_stage1(&machine, &config, &qubo).unwrap();
        assert!(result.processor_initialize_seconds > result.measured_seconds * 0.5);
    }
}
