//! Batch submission: many QUBO jobs through one pipeline.
//!
//! The ROADMAP's target workload is a stream of jobs sharing one QPU, and
//! the paper's own analysis says where the shared cost lies: stage-1
//! pre-processing (minor embedding) dominates the time-to-solution, while
//! stage 2 is microseconds.  Batch submission therefore amortizes stage 1 —
//! the interaction graph of every job is keyed into an [`EmbeddingCache`],
//! and jobs with a topology seen before (the common case when re-solving a
//! problem family with different coefficients) skip the embedding heuristic
//! entirely.  Jobs then fan out across the thread pool; every job's result
//! is bit-identical to submitting it alone through [`Pipeline::execute`]
//! with the same configuration, because all stochastic components are
//! seeded per job, not per worker.
//!
//! [`Pipeline::execute_batch`] returns the per-job results;
//! [`Pipeline::execute_batch_report`] additionally aggregates per-stage
//! timing and cache behavior into a [`BatchReport`].

use crate::error::PipelineError;
use crate::offline_cache::{CacheStats, EmbeddingCache};
use crate::pipeline::{ExecutionReport, Pipeline};
use qubo_ising::{qubo_to_ising, Qubo};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated outcome of one batch submission.
///
/// (No serde derives on the full report: `results` holds
/// `Result<_, PipelineError>`, which the real `serde` cannot derive through.
/// The wire format is [`BatchSummary`] — see [`BatchReport::summary`].)
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order.
    pub results: Vec<Result<ExecutionReport, PipelineError>>,
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Number of jobs that produced a solution.
    pub succeeded: usize,
    /// Sum of modeled stage-1 seconds over successful jobs.
    pub stage1_seconds: f64,
    /// Sum of modeled stage-2 seconds over successful jobs.
    pub stage2_seconds: f64,
    /// Sum of measured stage-3 seconds over successful jobs.
    pub stage3_seconds: f64,
    /// Sum of end-to-end modeled seconds over successful jobs.
    pub total_seconds: f64,
    /// Wall-clock seconds the whole batch took (with job-level parallelism
    /// this is far below `total_seconds`' serial accounting).
    pub wall_seconds: f64,
    /// Embedding-cache behavior for this batch (hits = jobs whose stage-1
    /// embedding was amortized away).
    pub embedding_cache: CacheStats,
}

impl BatchReport {
    /// Number of jobs that failed.
    pub fn failed(&self) -> usize {
        self.jobs - self.succeeded
    }

    /// Fraction of the summed modeled time spent in stage 1 — the batch
    /// analogue of the paper's headline single-job observation.
    pub fn stage1_fraction(&self) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.stage1_seconds / self.total_seconds
        }
    }

    /// The serializable aggregate view of this report.
    pub fn summary(&self) -> BatchSummary {
        BatchSummary {
            jobs: self.jobs,
            succeeded: self.succeeded,
            failed: self.failed(),
            stage1_seconds: self.stage1_seconds,
            stage2_seconds: self.stage2_seconds,
            stage3_seconds: self.stage3_seconds,
            total_seconds: self.total_seconds,
            wall_seconds: self.wall_seconds,
            stage1_fraction: self.stage1_fraction(),
            embedding_cache: self.embedding_cache,
        }
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.summary().fmt(f)
    }
}

/// The aggregate, wire-friendly view of a batch (or cluster-simulation)
/// outcome: job counts, summed per-stage seconds, wall clock and embedding
/// cache behavior.  This is the shared report format between
/// [`Pipeline::execute_batch_report`] and the `sx_cluster` simulator, which
/// produces the same shape for a whole fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Number of jobs that produced a solution.
    pub succeeded: usize,
    /// Number of jobs that failed (or were rejected).
    pub failed: usize,
    /// Sum of stage-1 seconds over successful jobs.
    pub stage1_seconds: f64,
    /// Sum of stage-2 seconds over successful jobs.
    pub stage2_seconds: f64,
    /// Sum of stage-3 seconds over successful jobs.
    pub stage3_seconds: f64,
    /// Sum of end-to-end seconds over successful jobs (serial accounting).
    pub total_seconds: f64,
    /// Wall-clock (or virtual-clock) seconds the whole run spanned.
    pub wall_seconds: f64,
    /// Fraction of the summed time spent in stage 1.
    pub stage1_fraction: f64,
    /// Embedding-cache behavior over the run.
    pub embedding_cache: CacheStats,
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} jobs: {} succeeded, {} failed, {:.3}s wall",
            self.jobs, self.succeeded, self.failed, self.wall_seconds
        )?;
        writeln!(
            f,
            "stages: 1 = {:.3e}s, 2 = {:.3e}s, 3 = {:.3e}s (stage-1 share {:.1}%)",
            self.stage1_seconds,
            self.stage2_seconds,
            self.stage3_seconds,
            100.0 * self.stage1_fraction
        )?;
        write!(
            f,
            "embedding cache: {} misses, {} hits ({:.0}% amortized)",
            self.embedding_cache.misses,
            self.embedding_cache.hits,
            100.0 * self.embedding_cache.hit_rate()
        )
    }
}

impl Pipeline {
    /// Execute a batch of jobs, amortizing stage-1 embeddings across
    /// identical interaction topologies and running jobs across the thread
    /// pool.  Results come back in submission order; each equals what
    /// [`Pipeline::execute`] would return for that job alone.
    pub fn execute_batch(&self, jobs: &[Qubo]) -> Vec<Result<ExecutionReport, PipelineError>> {
        self.execute_batch_report(jobs).results
    }

    /// Like [`Pipeline::execute_batch`], with aggregate timing and cache
    /// statistics.  A fresh [`EmbeddingCache`] is used per call; to carry
    /// embeddings across batches (the paper's off-line embedding table),
    /// hold a cache and use [`Pipeline::execute_batch_with_cache`].
    pub fn execute_batch_report(&self, jobs: &[Qubo]) -> BatchReport {
        self.execute_batch_with_cache(jobs, &EmbeddingCache::new())
    }

    /// Execute a batch against a caller-held embedding cache.
    pub fn execute_batch_with_cache(&self, jobs: &[Qubo], cache: &EmbeddingCache) -> BatchReport {
        // sx-lint: allow(D001) -- measures real batch wall-clock throughput; the pipeline executes actual compute here
        let start = std::time::Instant::now();
        let stats_before = cache.stats();

        // Warm the cache once per distinct interaction topology, in
        // parallel over the distinct graphs.  Doing this before the job
        // fan-out means concurrent jobs with the same topology find a hit
        // instead of racing to compute the same embedding twice.  Each
        // job's O(n²) QUBO→Ising conversion runs once here, in parallel,
        // and the resulting graph is reused for dedup and warming.
        let graphs: Vec<Option<chimera_graph::Graph>> = (0..jobs.len())
            .into_par_iter()
            .map(|i| {
                // Empty jobs are rejected later by stage 1.
                (jobs[i].num_variables() > 0)
                    .then(|| qubo_to_ising(&jobs[i]).ising.interaction_graph())
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        let warm_graphs: Vec<&chimera_graph::Graph> = graphs
            .iter()
            .flatten()
            .filter(|graph| {
                !cache.contains(graph, &self.machine, &self.config)
                    && seen.insert(crate::offline_cache::graph_key(graph))
            })
            .collect();
        let _: Vec<()> = (0..warm_graphs.len())
            .into_par_iter()
            .map(|w| {
                // Failures are not cached; the job itself will surface them.
                let _ = cache.get_or_compute(warm_graphs[w], &self.machine, &self.config);
            })
            .collect();

        // Fan the jobs out; every job is seeded by the shared config, so
        // ordering and parallelism cannot change results.
        let results: Vec<Result<ExecutionReport, PipelineError>> = (0..jobs.len())
            .into_par_iter()
            .map(|i| self.execute_cached(&jobs[i], cache))
            .collect();

        let mut report = BatchReport {
            jobs: jobs.len(),
            succeeded: 0,
            stage1_seconds: 0.0,
            stage2_seconds: 0.0,
            stage3_seconds: 0.0,
            total_seconds: 0.0,
            wall_seconds: 0.0,
            embedding_cache: CacheStats::default(),
            results: Vec::new(),
        };
        for execution in results.iter().flatten() {
            report.succeeded += 1;
            report.stage1_seconds += execution.stage1.total_seconds;
            report.stage2_seconds += execution.stage2.total_seconds;
            report.stage3_seconds += execution.stage3.measured_seconds;
            report.total_seconds += execution.total_seconds();
        }
        let stats_after = cache.stats();
        report.embedding_cache = CacheStats {
            hits: stats_after.hits - stats_before.hits,
            misses: stats_after.misses - stats_before.misses,
        };
        report.wall_seconds = start.elapsed().as_secs_f64();
        report.results = results;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitExecConfig;
    use crate::machine::SplitMachine;
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;

    fn pipeline(seed: u64) -> Pipeline {
        Pipeline::new(
            SplitMachine::paper_default(),
            SplitExecConfig::with_seed(seed),
        )
    }

    #[test]
    fn batch_results_equal_individual_execution() {
        let p = pipeline(7);
        let jobs: Vec<Qubo> = (4..9)
            .map(|n| MaxCut::unweighted(generators::cycle(n)).to_qubo())
            .collect();
        let batch = p.execute_batch(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for (job, result) in jobs.iter().zip(&batch) {
            let solo = p.execute(job).unwrap();
            let batched = result.as_ref().unwrap();
            assert_eq!(solo.solution, batched.solution);
            assert_eq!(solo.stage2.samples, batched.stage2.samples);
        }
    }

    #[test]
    fn identical_topologies_embed_once() {
        let p = pipeline(3);
        // Five MAX-CUT instances over the same cycle topology with different
        // edge weights: one embedding computation, the rest cache hits.
        let jobs: Vec<Qubo> = (0..5)
            .map(|w| {
                let graph = generators::cycle(8);
                let weights: Vec<((usize, usize), f64)> = graph
                    .edges()
                    .map(|(u, v)| ((u, v), 1.0 + w as f64))
                    .collect();
                MaxCut::weighted(graph.clone(), &weights).to_qubo()
            })
            .collect();
        let report = p.execute_batch_report(&jobs);
        assert_eq!(report.succeeded, 5);
        assert_eq!(report.embedding_cache.misses, 1);
        assert_eq!(report.embedding_cache.hits, 5);
        // The warm pass computed the embedding; every job then hit.
        let cache_hits = report
            .results
            .iter()
            .filter(|r| r.as_ref().unwrap().stage1.embedding_cache_hit)
            .count();
        assert_eq!(cache_hits, 5);
    }

    #[test]
    fn mixed_topologies_get_one_miss_each() {
        let p = pipeline(5);
        let jobs: Vec<Qubo> = vec![
            MaxCut::unweighted(generators::cycle(6)).to_qubo(),
            MaxCut::unweighted(generators::path(6)).to_qubo(),
            MaxCut::unweighted(generators::cycle(6)).to_qubo(),
        ];
        let report = p.execute_batch_report(&jobs);
        assert_eq!(report.succeeded, 3);
        assert_eq!(report.embedding_cache.misses, 2);
        assert_eq!(report.embedding_cache.hits, 3);
    }

    #[test]
    fn failures_are_reported_per_job_without_poisoning_the_batch() {
        let p = pipeline(1);
        let jobs: Vec<Qubo> = vec![
            MaxCut::unweighted(generators::cycle(5)).to_qubo(),
            Qubo::new(0), // rejected: no variables
            MaxCut::unweighted(generators::path(4)).to_qubo(),
        ];
        let report = p.execute_batch_report(&jobs);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.succeeded, 2);
        assert_eq!(report.failed(), 1);
        assert!(matches!(report.results[1], Err(PipelineError::BadInput(_))));
        assert!(report.results[0].is_ok() && report.results[2].is_ok());
    }

    #[test]
    fn batch_report_aggregates_are_consistent() {
        let p = pipeline(11);
        let jobs: Vec<Qubo> = (5..8)
            .map(|n| MaxCut::unweighted(generators::cycle(n)).to_qubo())
            .collect();
        let report = p.execute_batch_report(&jobs);
        let summed: f64 = report
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().total_seconds())
            .sum();
        assert!((report.total_seconds - summed).abs() < 1e-9);
        assert!(report.stage1_fraction() > 0.9);
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn persistent_cache_carries_across_batches() {
        let p = pipeline(2);
        let cache = EmbeddingCache::new();
        let jobs = vec![MaxCut::unweighted(generators::cycle(7)).to_qubo()];
        let first = p.execute_batch_with_cache(&jobs, &cache);
        assert_eq!(first.embedding_cache.misses, 1);
        let second = p.execute_batch_with_cache(&jobs, &cache);
        assert_eq!(second.embedding_cache.misses, 0);
        assert_eq!(second.embedding_cache.hits, 1);
    }

    #[test]
    fn summary_mirrors_the_report_and_displays() {
        let p = pipeline(9);
        let jobs: Vec<Qubo> = vec![
            MaxCut::unweighted(generators::cycle(6)).to_qubo(),
            Qubo::new(0),
            MaxCut::unweighted(generators::cycle(6)).to_qubo(),
        ];
        let report = p.execute_batch_report(&jobs);
        let summary = report.summary();
        assert_eq!(summary.jobs, 3);
        assert_eq!(summary.succeeded, 2);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.stage1_seconds, report.stage1_seconds);
        assert_eq!(summary.total_seconds, report.total_seconds);
        assert_eq!(summary.embedding_cache, report.embedding_cache);
        assert!((summary.stage1_fraction - report.stage1_fraction()).abs() < 1e-15);

        let text = format!("{report}");
        assert!(text.contains("3 jobs: 2 succeeded, 1 failed"));
        assert!(text.contains("stage-1 share"));
        assert!(text.contains("embedding cache"));
        assert_eq!(text, format!("{summary}"));
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = pipeline(1).execute_batch_report(&[]);
        assert_eq!(report.jobs, 0);
        assert_eq!(report.succeeded, 0);
        assert_eq!(report.stage1_fraction(), 0.0);
        assert!(pipeline(1).execute_batch(&[]).is_empty());
    }
}
