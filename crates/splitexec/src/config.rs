//! Configuration of the split-execution application.

use minor_embed::CmrConfig;
use quantum_anneal::{AnnealSchedule, BackendKind};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the three-stage split-execution application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitExecConfig {
    /// Desired solution accuracy `p_a` (probability that the ensemble
    /// contains the true optimum) — the input parameter of the Stage-2 model.
    pub accuracy: f64,
    /// Characteristic per-read success probability `p_s` assumed when sizing
    /// the read count via Eq. (6).  The paper plots `p_s = 0.7` and notes the
    /// result is insensitive for `p_s > 0.6`.
    pub success_probability: f64,
    /// Chain-strength factor passed to the parameter-setting step (chain
    /// strength = factor × max logical parameter).
    pub chain_strength_factor: f64,
    /// Configuration of the CMR embedding heuristic (stage 1).
    pub cmr: CmrConfig,
    /// Annealing schedule of the simulated QPU (stage 2).
    pub schedule: AnnealSchedule,
    /// Which stage-2 sampler backend [`crate::Pipeline::new`] builds.
    pub backend: BackendKind,
    /// Base seed for all stochastic components.
    pub seed: u64,
    /// Cap on the number of reads regardless of Eq. (6) (protects against
    /// `accuracy → 1` requests); `None` means uncapped.
    pub max_reads: Option<usize>,
}

impl Default for SplitExecConfig {
    fn default() -> Self {
        Self {
            accuracy: 0.99,
            success_probability: 0.7,
            chain_strength_factor: 2.0,
            cmr: CmrConfig::default(),
            schedule: AnnealSchedule::default(),
            backend: BackendKind::default(),
            seed: 0,
            max_reads: Some(10_000),
        }
    }
}

impl SplitExecConfig {
    /// A configuration with every stochastic component seeded from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            cmr: CmrConfig::with_seed(seed),
            ..Self::default()
        }
    }

    /// Builder-style accuracy override (clamped to `[0, 0.999999]` so Eq. 6
    /// stays finite).
    pub fn with_accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy.clamp(0.0, 0.999_999);
        self
    }

    /// Builder-style per-read success probability override.
    pub fn with_success_probability(mut self, ps: f64) -> Self {
        self.success_probability = ps.clamp(1e-6, 1.0);
        self
    }

    /// Builder-style stage-2 backend selection.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The number of QPU reads this configuration requests, per Eq. (6),
    /// respecting `max_reads`.
    pub fn reads(&self) -> usize {
        let raw = quantum_anneal::required_reads(self.accuracy, self.success_probability);
        match self.max_reads {
            Some(cap) => raw.min(cap.max(1)),
            None => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_plot_parameters() {
        let c = SplitExecConfig::default();
        assert_eq!(c.accuracy, 0.99);
        assert_eq!(c.success_probability, 0.7);
        assert_eq!(c.reads(), 4);
    }

    #[test]
    fn backend_defaults_to_simulated_annealing_and_is_overridable() {
        assert_eq!(
            SplitExecConfig::default().backend,
            BackendKind::SimulatedAnnealing
        );
        let c = SplitExecConfig::default().with_backend(BackendKind::Exact);
        assert_eq!(c.backend, BackendKind::Exact);
    }

    #[test]
    fn with_seed_propagates_to_cmr() {
        let c = SplitExecConfig::with_seed(99);
        assert_eq!(c.seed, 99);
        assert_eq!(c.cmr.seed, 99);
    }

    #[test]
    fn accuracy_and_success_are_clamped() {
        let c = SplitExecConfig::default()
            .with_accuracy(2.0)
            .with_success_probability(-1.0);
        assert!(c.accuracy < 1.0);
        assert!(c.success_probability > 0.0);
        assert!(c.reads() >= 1);
    }

    #[test]
    fn read_cap_is_respected() {
        let mut c = SplitExecConfig::default()
            .with_accuracy(0.999_999)
            .with_success_probability(0.001);
        c.max_reads = Some(500);
        assert_eq!(c.reads(), 500);
        c.max_reads = None;
        assert!(c.reads() > 10_000);
    }

    #[test]
    fn higher_accuracy_never_reduces_reads() {
        let reads: Vec<usize> = [0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&pa| SplitExecConfig::default().with_accuracy(pa).reads())
            .collect();
        assert!(reads.windows(2).all(|w| w[1] >= w[0]));
    }
}
