//! Error type for the split-execution pipeline.

use aspen_model::AspenError;
use minor_embed::EmbedError;
use quantum_anneal::SamplerError;
use std::fmt;

/// Anything that can go wrong while predicting or executing the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The analytic model walk failed (unknown parameter, unsupported
    /// resource, ...).
    Model(AspenError),
    /// The stage-1 embedding failed.
    Embedding(EmbedError),
    /// The stage-2 sampler backend rejected the program.
    Backend(SamplerError),
    /// The input problem is unusable (empty, larger than the hardware, ...).
    BadInput(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Model(e) => write!(f, "performance-model error: {e}"),
            PipelineError::Embedding(e) => write!(f, "embedding error: {e}"),
            PipelineError::Backend(e) => write!(f, "sampler-backend error: {e}"),
            PipelineError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<AspenError> for PipelineError {
    fn from(e: AspenError) -> Self {
        PipelineError::Model(e)
    }
}

impl From<EmbedError> for PipelineError {
    fn from(e: EmbedError) -> Self {
        PipelineError::Embedding(e)
    }
}

impl From<SamplerError> for PipelineError {
    fn from(e: SamplerError) -> Self {
        PipelineError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PipelineError = AspenError::UnknownParameter("LPS".into()).into();
        assert!(e.to_string().contains("performance-model"));
        let e: PipelineError = EmbedError::NoEmbeddingFound { passes: 3 }.into();
        assert!(e.to_string().contains("embedding"));
        let e: PipelineError = quantum_anneal::SamplerError::TooLarge {
            spins: 30,
            max_spins: 24,
        }
        .into();
        assert!(e.to_string().contains("sampler-backend"));
        let e = PipelineError::BadInput("empty".into());
        assert!(e.to_string().contains("bad input"));
    }
}
