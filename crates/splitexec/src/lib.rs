//! # split-exec — performance models for split-execution computing systems
//!
//! The core crate of this reproduction of Humble et al., *Performance Models
//! for Split-execution Computing Systems* (2016).  A split-execution system
//! couples a conventional host CPU with a special-purpose quantum processing
//! unit (QPU); solving a discrete optimization problem then involves three
//! stages:
//!
//! 1. **Stage 1 — classical pre-processing** ([`stage1`]): build the logical
//!    Ising model from the QUBO input, minor-embed it into the Chimera
//!    hardware graph, spread the parameters over the embedded chains and
//!    program the electronic control system.
//! 2. **Stage 2 — quantum execution** ([`stage2`]): run enough annealing
//!    reads (Eq. 6) to reach the requested solution accuracy.  The sampler
//!    is a pluggable [`quantum_anneal::SamplerBackend`] — simulated
//!    annealing by default, parallel tempering or exact enumeration by
//!    configuration ([`SplitExecConfig::with_backend`]) or injection
//!    ([`Pipeline::with_backend`]).
//! 3. **Stage 3 — classical post-processing** ([`stage3`]): un-embed and
//!    sort the readout ensemble and return the optimization result.
//!
//! Each stage has an *analytic* path (an ASPEN-style model walk using the
//! listings published in the paper's Figs. 5–8) and an *executable* path
//! (real implementations from the substrate crates, with wall-clock
//! measurement), so every figure of the paper's evaluation can be
//! regenerated as model-vs-measured.  The headline result — the classical
//! embedding step dominates the time-to-solution, so the bottleneck of
//! split-execution lies at the quantum-classical interface rather than in
//! quantum execution — falls out of either path.
//!
//! Batch submission ([`batch`]) amortizes the stage-1 bottleneck: jobs
//! sharing an interaction topology are embedded once (the paper's Sec. 3.3
//! off-line embedding table, [`offline_cache`]) and fan out across a thread
//! pool.
//!
//! ```
//! use split_exec::prelude::*;
//! use chimera_graph::generators;
//! use qubo_ising::prelude::MaxCut;
//!
//! let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(7));
//! // Analytic three-stage breakdown at logical problem size 30:
//! let predicted = pipeline.predict(30)?;
//! assert!(predicted.stage1_fraction() > 0.99);
//! // Execute the full application on a small MAX-CUT instance:
//! let qubo = MaxCut::unweighted(generators::cycle(8)).to_qubo();
//! let report = pipeline.execute(&qubo)?;
//! assert_eq!(report.solution.assignment.len(), 8);
//!
//! // Stage 2 is pluggable: the same job on the exact-enumeration oracle.
//! let exact = Pipeline::new(
//!     SplitMachine::paper_default(),
//!     SplitExecConfig::with_seed(7).with_backend(BackendKind::Exact),
//! );
//! assert_eq!(exact.execute(&qubo)?.stage2.backend, "exact");
//!
//! // Batch submission embeds a repeated topology once and reuses it.
//! let jobs = vec![qubo.clone(), qubo.clone(), qubo];
//! let batch = pipeline.execute_batch_report(&jobs);
//! assert_eq!(batch.succeeded, 3);
//! assert_eq!(batch.embedding_cache.misses, 1);
//! # Ok::<(), split_exec::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code reports through `Display` impls and return values, never
// the terminal.
#![warn(clippy::print_stdout)]

pub mod batch;
pub mod config;
pub mod cost;
pub mod error;
pub mod machine;
pub mod offline_cache;
pub mod pipeline;
pub mod report;
pub mod sequence;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod timing;

pub use batch::{BatchReport, BatchSummary};
pub use config::SplitExecConfig;
pub use cost::{CostModel, StageCosts};
pub use error::PipelineError;
pub use machine::{Architecture, QpuModel, SplitMachine};
pub use offline_cache::{CacheStats, EmbeddingCache};
pub use pipeline::{ExecutionReport, Pipeline, PredictedBreakdown, SolutionSummary};
pub use sequence::{Layer, SequenceTrace};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::batch::{BatchReport, BatchSummary};
    pub use crate::config::SplitExecConfig;
    pub use crate::cost::{CostModel, StageCosts};
    pub use crate::error::PipelineError;
    pub use crate::machine::{Architecture, QpuModel, SplitMachine};
    pub use crate::offline_cache::{CacheStats, EmbeddingCache};
    pub use crate::pipeline::{ExecutionReport, Pipeline, PredictedBreakdown, SolutionSummary};
    pub use crate::report::{breakdown_table, csv_series, BreakdownRow};
    pub use crate::sequence::{Layer, SequenceTrace};
    pub use crate::stage1::{execute_stage1, execute_stage1_cached, predict_stage1};
    pub use crate::stage2::{
        execute_stage2, execute_stage2_with_backend, predict_stage2, reads_for_accuracy,
    };
    pub use crate::stage3::{execute_stage3, predict_stage3};
    // Stage-2 backend selection, re-exported so pipeline users need only one
    // glob import.
    pub use quantum_anneal::backend::{
        BackendKind, ExactEnumerationBackend, ParallelTemperingBackend, SampleParams,
        SamplerBackend, SamplerError,
    };
}

#[cfg(test)]
mod proptests {
    use crate::config::SplitExecConfig;
    use crate::machine::SplitMachine;
    use crate::pipeline::Pipeline;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The predicted stage-1 share is always dominant, which is the
        /// paper's central claim.
        #[test]
        fn stage1_dominates_predictions(lps in 5usize..100) {
            let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::default());
            let p = pipeline.predict(lps).unwrap();
            prop_assert!(p.stage1_fraction() > 0.95);
            prop_assert!(p.total_seconds().is_finite());
        }

        /// Predictions scale monotonically with problem size.
        #[test]
        fn predictions_monotone_in_size(lps in 5usize..95) {
            let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::default());
            let small = pipeline.predict(lps).unwrap().total_seconds();
            let large = pipeline.predict(lps + 5).unwrap().total_seconds();
            prop_assert!(large >= small);
        }

        /// Stage-2 predictions stay in the sub-millisecond regime across the
        /// whole accuracy/success plane the paper sweeps.
        #[test]
        fn stage2_stays_microscopic(pa in 0.5f64..0.999999, ps in 0.6f64..0.9999) {
            let machine = SplitMachine::paper_default();
            let p = crate::stage2::predict_stage2(&machine, pa, ps).unwrap();
            prop_assert!(p.total_seconds < 2e-3, "{}", p.total_seconds);
            prop_assert!(p.reads >= 1);
        }
    }
}
