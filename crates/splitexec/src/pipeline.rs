//! The end-to-end split-execution pipeline: predicted and executed.
//!
//! [`Pipeline::predict`] produces the paper's analytic three-stage breakdown
//! for a given logical problem size; [`Pipeline::execute`] runs the whole
//! application (convert → embed → program → sample → post-process) on a
//! concrete QUBO and reports measured/modeled timings next to the solution.

use crate::config::SplitExecConfig;
use crate::error::PipelineError;
use crate::machine::SplitMachine;
use crate::offline_cache::EmbeddingCache;
use crate::stage1::{execute_stage1_cached, predict_stage1, Stage1Execution, Stage1Prediction};
use crate::stage2::{
    execute_stage2_with_backend, predict_stage2, Stage2Execution, Stage2Prediction,
};
use crate::stage3::{execute_stage3, predict_stage3, Stage3Execution, Stage3Prediction};
use quantum_anneal::SamplerBackend;
use qubo_ising::convert::spins_to_bits;
use qubo_ising::Qubo;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The analytic three-stage breakdown for one problem size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedBreakdown {
    /// Logical problem size.
    pub lps: usize,
    /// Stage-1 prediction (pre-processing/embedding).
    pub stage1: Stage1Prediction,
    /// Stage-2 prediction (QPU sampling).
    pub stage2: Stage2Prediction,
    /// Stage-3 prediction (post-processing).
    pub stage3: Stage3Prediction,
}

impl PredictedBreakdown {
    /// Total predicted time-to-solution in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.stage1.total_seconds + self.stage2.total_seconds + self.stage3.total_seconds
    }

    /// Fraction of the total attributed to stage 1 — the paper's headline
    /// observation is that this approaches 1 as the problem grows.
    pub fn stage1_fraction(&self) -> f64 {
        self.stage1.total_seconds / self.total_seconds()
    }
}

/// The solution extracted from an executed pipeline, in QUBO terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionSummary {
    /// Best binary assignment found.
    pub assignment: Vec<bool>,
    /// Its QUBO objective value `bᵀQb`.
    pub qubo_energy: f64,
    /// Its logical Ising energy.
    pub ising_energy: f64,
    /// Number of distinct configurations observed in the ensemble.
    pub distinct_solutions: usize,
}

/// The measured/modeled result of executing the whole application once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Stage-1 execution record.
    pub stage1: Stage1Execution,
    /// Stage-2 execution record.
    pub stage2: Stage2Execution,
    /// Stage-3 execution record.
    pub stage3: Stage3Execution,
    /// The extracted solution.
    pub solution: SolutionSummary,
}

impl ExecutionReport {
    /// End-to-end time combining measured classical work with modeled
    /// hardware constants (comparable with [`PredictedBreakdown`]).
    pub fn total_seconds(&self) -> f64 {
        self.stage1.total_seconds + self.stage2.total_seconds + self.stage3.measured_seconds
    }

    /// Fraction of the end-to-end time spent in stage 1.
    pub fn stage1_fraction(&self) -> f64 {
        self.stage1.total_seconds / self.total_seconds()
    }
}

/// The split-execution pipeline: a machine, an application configuration and
/// a pluggable stage-2 sampler backend.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The machine the application runs on.
    pub machine: SplitMachine,
    /// Application parameters.
    pub config: SplitExecConfig,
    /// An injected stage-2 sampler; `None` means "build from `config`", so
    /// mutating `config.backend`/`config.schedule` after construction takes
    /// effect on the next execution.
    injected_backend: Option<Arc<dyn SamplerBackend>>,
}

impl Pipeline {
    /// Create a pipeline over the given machine and configuration; stage 2
    /// is served by the backend named in `config.backend` (simulated
    /// annealing by default).
    pub fn new(machine: SplitMachine, config: SplitExecConfig) -> Self {
        Self {
            machine,
            config,
            injected_backend: None,
        }
    }

    /// A pipeline with the paper's default machine and parameters.
    pub fn paper_default() -> Self {
        Self::new(SplitMachine::paper_default(), SplitExecConfig::default())
    }

    /// Replace the stage-2 sampler with any [`SamplerBackend`]
    /// implementation (builder style).  An injected backend takes precedence
    /// over `config.backend` until the pipeline is rebuilt.
    pub fn with_backend(mut self, backend: Arc<dyn SamplerBackend>) -> Self {
        self.injected_backend = Some(backend);
        self
    }

    /// The stage-2 backend the next execution will dispatch onto: the
    /// injected one if present, otherwise the one named by the *current*
    /// `config.backend` (built with the current `config.schedule`).
    pub fn backend(&self) -> Arc<dyn SamplerBackend> {
        self.injected_backend.clone().unwrap_or_else(|| {
            self.config
                .backend
                .build_with_schedule(self.config.schedule)
        })
    }

    /// Analytic prediction of the three-stage breakdown for a logical problem
    /// of `lps` spins.
    pub fn predict(&self, lps: usize) -> Result<PredictedBreakdown, PipelineError> {
        Ok(PredictedBreakdown {
            lps,
            stage1: predict_stage1(&self.machine, lps)?,
            stage2: predict_stage2(
                &self.machine,
                self.config.accuracy,
                self.config.success_probability,
            )?,
            stage3: predict_stage3(
                &self.machine,
                lps,
                self.config.accuracy,
                self.config.success_probability,
            )?,
        })
    }

    /// Execute the full application on a concrete QUBO instance.
    pub fn execute(&self, qubo: &Qubo) -> Result<ExecutionReport, PipelineError> {
        self.execute_impl(qubo, None)
    }

    /// Execute the full application, serving the stage-1 minor embedding
    /// from `cache` when an identical interaction topology has been embedded
    /// before (and storing it on a miss).  With identical configuration the
    /// solution and samples equal [`Pipeline::execute`]'s — the CMR
    /// heuristic is deterministic in its seed, so a cached embedding is the
    /// embedding a fresh run would compute.
    pub fn execute_cached(
        &self,
        qubo: &Qubo,
        cache: &EmbeddingCache,
    ) -> Result<ExecutionReport, PipelineError> {
        self.execute_impl(qubo, Some(cache))
    }

    fn execute_impl(
        &self,
        qubo: &Qubo,
        cache: Option<&EmbeddingCache>,
    ) -> Result<ExecutionReport, PipelineError> {
        let stage1 = execute_stage1_cached(&self.machine, &self.config, qubo, cache)?;
        let backend = self.backend();
        let stage2 = execute_stage2_with_backend(
            &self.machine,
            &self.config,
            &stage1.embedded.physical,
            backend.as_ref(),
        )?;
        let stage3 = execute_stage3(
            &self.machine,
            &stage1.embedded.embedding,
            &stage1.logical,
            &stage2.samples,
        )?;
        let assignment = spins_to_bits(&stage3.best_spins);
        let solution = SolutionSummary {
            qubo_energy: qubo.energy(&assignment),
            ising_energy: stage3.best_energy,
            distinct_solutions: stage3.ranked.len(),
            assignment,
        };
        Ok(ExecutionReport {
            stage1,
            stage2,
            stage3,
            solution,
        })
    }

    /// Convenience wrapper: execute and return only the solution summary.
    pub fn solve(&self, qubo: &Qubo) -> Result<SolutionSummary, PipelineError> {
        Ok(self.execute(qubo)?.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use qubo_ising::prelude::{MaxCut, NumberPartition};
    use qubo_ising::solve_qubo_exact;

    fn pipeline(seed: u64) -> Pipeline {
        Pipeline::new(
            SplitMachine::paper_default(),
            SplitExecConfig::with_seed(seed),
        )
    }

    #[test]
    fn prediction_breakdown_is_stage1_dominated() {
        let p = pipeline(1);
        for lps in [10, 30, 60, 100] {
            let breakdown = p.predict(lps).unwrap();
            assert!(
                breakdown.stage1_fraction() > 0.99,
                "lps {lps}: fraction {}",
                breakdown.stage1_fraction()
            );
            assert!(breakdown.total_seconds() > 0.0);
        }
    }

    #[test]
    fn prediction_total_grows_with_problem_size() {
        let p = pipeline(1);
        let totals: Vec<f64> = [10, 30, 60, 100]
            .iter()
            .map(|&n| p.predict(n).unwrap().total_seconds())
            .collect();
        assert!(totals.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn execute_maxcut_cycle_finds_optimal_cut() {
        let p = pipeline(7);
        let maxcut = MaxCut::unweighted(generators::cycle(8));
        let qubo = maxcut.to_qubo();
        let report = p.execute(&qubo).unwrap();
        // C8's maximum cut is 8; the sampler should find it for such a tiny
        // instance.
        let cut = maxcut.cut_value(&report.solution.assignment);
        assert!(cut >= 6.0, "cut {cut} unexpectedly poor");
        assert!(report.total_seconds() > 0.0);
        assert!(report.stage1_fraction() > 0.5);
        assert_eq!(report.stage2.samples.num_reads(), p.config.reads());
    }

    #[test]
    fn execute_number_partition_reaches_exact_optimum() {
        // Ask for more nines of accuracy so Eq. (6) sizes the read count
        // generously enough that the 4-spin optimum is found regardless of
        // the sampler's stream details.
        let mut p = pipeline(11);
        p.config = p.config.with_accuracy(0.999_999);
        let instance = NumberPartition::new(vec![5.0, 4.0, 3.0, 2.0, 2.0]);
        let qubo = instance.to_qubo();
        let exact = solve_qubo_exact(&qubo);
        let report = p.execute(&qubo).unwrap();
        // The sampled optimum should match the brute-force optimum for this
        // 5-variable instance (perfect split exists: {5,3} vs {4,2,2}).
        assert!(
            (report.solution.qubo_energy - exact.energy).abs() < 1e-6,
            "sampled {} vs exact {}",
            report.solution.qubo_energy,
            exact.energy
        );
        assert_eq!(instance.imbalance(&report.solution.assignment), 0.0);
    }

    #[test]
    fn execute_is_deterministic_in_seed() {
        let qubo = MaxCut::unweighted(generators::cycle(6)).to_qubo();
        let a = pipeline(3).execute(&qubo).unwrap();
        let b = pipeline(3).execute(&qubo).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.stage2.samples, b.stage2.samples);
    }

    #[test]
    fn backend_is_pluggable_per_pipeline() {
        use quantum_anneal::{BackendKind, ExactEnumerationBackend};
        use std::sync::Arc;
        let qubo = MaxCut::unweighted(generators::cycle(8)).to_qubo();
        let exact = solve_qubo_exact(&qubo);

        // Config-selected backend.
        let config = SplitExecConfig::with_seed(7).with_backend(BackendKind::Exact);
        let p = Pipeline::new(SplitMachine::paper_default(), config);
        assert_eq!(p.backend().name(), "exact");
        let report = p.execute(&qubo).unwrap();
        assert!((report.solution.qubo_energy - exact.energy).abs() < 1e-9);
        assert_eq!(report.stage2.backend, "exact");

        // Builder-injected custom backend instance.
        let p = pipeline(7).with_backend(Arc::new(ExactEnumerationBackend::with_max_spins(64)));
        let report = p.execute(&qubo).unwrap();
        assert!((report.solution.qubo_energy - exact.energy).abs() < 1e-9);

        // Mutating the public config after construction must take effect on
        // the next execution (no stale snapshot).
        let mut p = pipeline(7);
        assert_eq!(p.backend().name(), "simulated-annealing");
        p.config = p.config.with_backend(BackendKind::Exact);
        assert_eq!(p.backend().name(), "exact");
        assert_eq!(p.execute(&qubo).unwrap().stage2.backend, "exact");
    }

    #[test]
    fn oversized_program_is_a_backend_error() {
        use quantum_anneal::{BackendKind, SamplerError};
        let config = SplitExecConfig::with_seed(1).with_backend(BackendKind::Exact);
        let p = Pipeline::new(SplitMachine::paper_default(), config);
        // 30 logical vertices exceed the exact backend's 24-spin cap once
        // embedded (the physical program only grows).
        let qubo = MaxCut::unweighted(generators::cycle(30)).to_qubo();
        let err = p.execute(&qubo).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Backend(SamplerError::TooLarge { .. })
        ));
    }

    #[test]
    fn execute_rejects_empty_input() {
        let err = pipeline(1).execute(&Qubo::new(0)).unwrap_err();
        assert!(matches!(err, PipelineError::BadInput(_)));
    }

    #[test]
    fn solve_returns_solution_only() {
        let qubo = MaxCut::unweighted(generators::path(5)).to_qubo();
        let solution = pipeline(5).solve(&qubo).unwrap();
        assert_eq!(solution.assignment.len(), 5);
        assert!(solution.distinct_solutions >= 1);
    }

    #[test]
    fn execution_report_matches_prediction_shape() {
        // The measured end-to-end time is also stage-1 dominated (the fixed
        // programming constant plus embedding dwarf the microsecond-scale
        // stage 2/3), reproducing the paper's qualitative conclusion.
        let p = pipeline(13);
        let qubo = MaxCut::unweighted(generators::cycle(10)).to_qubo();
        let report = p.execute(&qubo).unwrap();
        assert!(report.stage1.total_seconds > report.stage2.total_seconds);
        assert!(report.stage1.total_seconds > report.stage3.measured_seconds);
    }
}
