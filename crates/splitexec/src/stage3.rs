//! Stage 3 — classical post-processing: un-embedding the readout ensemble,
//! sorting it by energy and extracting the optimization result.
//!
//! The paper's Fig. 8 model charges a heapsort over the readout results and a
//! linear pass over the input, giving the near-linear, negligible cost shown
//! in Fig. 9(c).
//!
//! * [`predict_stage3`] walks the Fig. 8 ASPEN model.
//! * [`execute_stage3`] decodes physical samples back to logical spins
//!   (majority vote per chain), ranks them by energy and returns the best
//!   solution, measuring wall-clock time.

use crate::error::PipelineError;
use crate::machine::SplitMachine;
use crate::timing::timed;
use aspen_model::{listings, ApplicationModel, ParamEnv, Prediction, Predictor};
use minor_embed::{unembed_sample, Embedding};
use quantum_anneal::SampleSet;
use qubo_ising::energy::RankedSolution;
use qubo_ising::{rank_solutions, Ising, Spin};
use serde::{Deserialize, Serialize};

/// Analytic prediction for stage 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage3Prediction {
    /// Logical problem size (`LPS`).
    pub lps: usize,
    /// Number of readout results the model assumes must be sorted.
    pub results: usize,
    /// Total predicted seconds.
    pub total_seconds: f64,
    /// The full ASPEN prediction.
    pub prediction: Prediction,
}

/// Walk the paper's Stage-3 model.
///
/// `accuracy` and `success_probability` determine the number of readout
/// results via Eq. (6), exactly as the Fig. 8 listing does with its
/// `Results` parameter.
// sx-lint: hot-exempt -- runs only on a CostModel::costs memo miss: once per distinct problem size, amortized off the per-event path
pub fn predict_stage3(
    machine: &SplitMachine,
    lps: usize,
    accuracy: f64,
    success_probability: f64,
) -> Result<Stage3Prediction, PipelineError> {
    let app = ApplicationModel::from_source(listings::STAGE3_LISTING)?;
    let overrides = ParamEnv::new()
        .with("LPS", lps as f64)
        .with("Accuracy", accuracy.clamp(0.0, 0.999_999_999))
        .with("Success", success_probability.clamp(1e-9, 1.0 - 1e-12));
    let prediction = Predictor::new(&machine.aspen).predict(&app, &overrides)?;
    let env = app.resolve_params(&overrides)?;
    Ok(Stage3Prediction {
        lps,
        results: env.get("Results")? as usize,
        total_seconds: prediction.seconds(),
        prediction,
    })
}

/// Measured result of running stage 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage3Execution {
    /// Ranked logical solutions (best energy first, duplicates collapsed).
    pub ranked: Vec<RankedSolution>,
    /// The best logical configuration found.
    pub best_spins: Vec<Spin>,
    /// Its logical Ising energy.
    pub best_energy: f64,
    /// Total number of chain breaks observed while decoding the ensemble.
    pub chain_breaks: usize,
    /// Comparison/energy-evaluation operations performed by the sort.
    pub sort_operations: u64,
    /// Measured wall-clock seconds.
    pub measured_seconds: f64,
}

/// Execute stage 3: decode, rank and extract the solution.
pub fn execute_stage3(
    machine: &SplitMachine,
    embedding: &Embedding,
    logical: &Ising,
    samples: &SampleSet,
) -> Result<Stage3Execution, PipelineError> {
    let _ = machine;
    if samples.num_reads() == 0 {
        return Err(PipelineError::BadInput(
            "stage 3 received an empty readout ensemble".into(),
        ));
    }
    let ((ranked, chain_breaks, sort_operations, best_spins, best_energy), measured_seconds) =
        timed(|| {
            let mut decoded = Vec::with_capacity(samples.num_reads());
            let mut chain_breaks = 0usize;
            for record in &samples.records {
                for _ in 0..record.occurrences {
                    let d = unembed_sample(embedding, &record.spins);
                    chain_breaks += d.chain_breaks;
                    decoded.push(d.spins);
                }
            }
            let (ranked, ops) = rank_solutions(logical, &decoded);
            let best = ranked.first().cloned().expect("non-empty ensemble");
            (ranked, chain_breaks, ops, best.spins.clone(), best.energy)
        });
    Ok(Stage3Execution {
        ranked,
        best_spins,
        best_energy,
        chain_breaks,
        sort_operations,
        measured_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;
    use minor_embed::{find_embedding, CmrConfig};
    use quantum_anneal::SampleSet;

    fn machine() -> SplitMachine {
        SplitMachine::paper_default()
    }

    #[test]
    fn prediction_uses_eq6_for_result_count() {
        // Listing defaults: Success = 0.75, Accuracy = 0.99 -> 4 results.
        let p = predict_stage3(&machine(), 50, 0.99, 0.75).unwrap();
        assert_eq!(p.results, 4);
        assert!(p.total_seconds > 0.0);
    }

    #[test]
    fn prediction_scales_roughly_linearly_with_input_size() {
        let machine = machine();
        let small = predict_stage3(&machine, 10, 0.99, 0.75)
            .unwrap()
            .total_seconds;
        let large = predict_stage3(&machine, 100, 0.99, 0.75)
            .unwrap()
            .total_seconds;
        assert!(large > small);
        // Near-linear: a 10x larger input should cost well under 100x more.
        assert!(large < small * 30.0);
    }

    #[test]
    fn prediction_is_negligible_compared_to_stage1() {
        let machine = machine();
        let s1 = crate::stage1::predict_stage1(&machine, 50)
            .unwrap()
            .total_seconds;
        let s3 = predict_stage3(&machine, 50, 0.99, 0.75)
            .unwrap()
            .total_seconds;
        assert!(s1 / s3 > 1e3, "stage1 {s1} vs stage3 {s3}");
    }

    #[test]
    fn execution_decodes_and_ranks() {
        let machine = machine();
        let logical = Ising::random_on_graph(&generators::cycle(6), 7);
        let outcome = find_embedding(
            &logical.interaction_graph(),
            &machine.hardware,
            &CmrConfig::with_seed(2),
        )
        .unwrap();
        // Build a fake physical ensemble: every chain aligned to +1 or -1
        // alternating per record.
        let nh = machine.hardware.vertex_count();
        let mut all_up = vec![1i8; nh];
        let all_down = vec![-1i8; nh];
        for (_, chain) in outcome.embedding.iter() {
            for &q in chain {
                all_up[q] = 1;
            }
        }
        let samples = SampleSet::from_reads(vec![
            (all_up.clone(), logical.energy(&[1; 6])),
            (all_down.clone(), logical.energy(&[-1; 6])),
            (all_up.clone(), logical.energy(&[1; 6])),
        ]);
        let result = execute_stage3(&machine, &outcome.embedding, &logical, &samples).unwrap();
        assert_eq!(result.chain_breaks, 0);
        assert!(result.sort_operations > 0);
        assert_eq!(
            result.ranked.iter().map(|r| r.multiplicity).sum::<usize>(),
            3
        );
        // Best logical energy is the smaller of the two configurations.
        let up_energy = logical.energy(&[1; 6]);
        let down_energy = logical.energy(&[-1; 6]);
        assert!((result.best_energy - up_energy.min(down_energy)).abs() < 1e-9);
    }

    #[test]
    fn execution_rejects_empty_ensemble() {
        let machine = machine();
        let logical = Ising::new(2);
        let embedding = Embedding::from_chains(vec![vec![0], vec![1]]);
        let err =
            execute_stage3(&machine, &embedding, &logical, &SampleSet::default()).unwrap_err();
        assert!(matches!(err, PipelineError::BadInput(_)));
    }
}
