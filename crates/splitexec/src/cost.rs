//! A reusable analytic cost oracle over the paper's three stage models.
//!
//! The stage predictions ([`predict_stage1`]
//! etc.) walk an ASPEN listing each call, which is cheap but not free, and
//! every consumer that wants "what would this job cost?" has so far
//! re-assembled the three calls by hand.  [`CostModel`] packages them behind
//! one memoized interface: ask for the per-stage costs of a logical problem
//! size and get a [`StageCosts`] splitting stage 1 into its *embedding*
//! share (amortizable via the offline embedding cache) and its residual
//! *overhead* (data initialization, parameter setting, processor
//! programming — paid by every job, warm or cold).
//!
//! The cluster simulator (`sx_cluster`) uses this as the service-time
//! distribution of its queueing model: a job arriving at a QPU whose
//! embedding cache already holds the job's interaction topology pays
//! [`StageCosts::stage1_warm_seconds`]; a cold job pays
//! [`StageCosts::stage1_cold_seconds`].  Schedulers use
//! [`CostModel::costs`] as the prediction oracle for
//! shortest-predicted-job-first ordering.

use crate::config::SplitExecConfig;
use crate::error::PipelineError;
use crate::machine::SplitMachine;
use crate::stage1::predict_stage1;
use crate::stage2::predict_stage2;
use crate::stage3::predict_stage3;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Predicted per-stage costs for one logical problem size, with stage 1
/// split into its cache-amortizable and always-paid parts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCosts {
    /// Logical problem size the costs were predicted for.
    pub lps: usize,
    /// Stage-1 seconds attributable to the minor-embedding computation —
    /// the part an embedding cache amortizes away.
    pub stage1_embed_seconds: f64,
    /// Stage-1 seconds paid regardless of caching: logical-Ising
    /// construction, parameter setting and processor programming.
    pub stage1_overhead_seconds: f64,
    /// Stage-2 (quantum execution) seconds.
    pub stage2_seconds: f64,
    /// Stage-3 (post-processing) seconds.
    pub stage3_seconds: f64,
}

impl StageCosts {
    /// Stage-1 seconds for a job whose embedding must be computed in-line.
    pub fn stage1_cold_seconds(&self) -> f64 {
        self.stage1_embed_seconds + self.stage1_overhead_seconds
    }

    /// Stage-1 seconds for a job whose embedding is served from a cache.
    pub fn stage1_warm_seconds(&self) -> f64 {
        self.stage1_overhead_seconds
    }

    /// End-to-end seconds for a cold job.
    pub fn total_cold_seconds(&self) -> f64 {
        self.stage1_cold_seconds() + self.stage2_seconds + self.stage3_seconds
    }

    /// End-to-end seconds for a warm (cache-served) job.
    pub fn total_warm_seconds(&self) -> f64 {
        self.stage1_warm_seconds() + self.stage2_seconds + self.stage3_seconds
    }
}

/// A memoized analytic cost oracle for one machine/configuration pair.
///
/// Thread-safe: predictions are computed once per logical problem size and
/// served from an internal table thereafter, so schedulers can query it in
/// hot loops.
#[derive(Debug)]
pub struct CostModel {
    machine: SplitMachine,
    config: SplitExecConfig,
    memo: Mutex<HashMap<usize, StageCosts>>,
}

impl CostModel {
    /// A cost model over the given machine and application configuration.
    pub fn new(machine: SplitMachine, config: SplitExecConfig) -> Self {
        Self {
            machine,
            config,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The machine the model predicts for.
    pub fn machine(&self) -> &SplitMachine {
        &self.machine
    }

    /// The application configuration the model predicts for.
    pub fn config(&self) -> &SplitExecConfig {
        &self.config
    }

    /// Predicted per-stage costs for a logical problem of `lps` spins
    /// (memoized).
    pub fn costs(&self, lps: usize) -> Result<StageCosts, PipelineError> {
        // sx-lint: allow(A003) -- uncontended: the engine is single-threaded; a parking_lot lock is a few ns
        if let Some(found) = self.memo.lock().get(&lps) {
            return Ok(*found);
        }
        let stage1 = predict_stage1(&self.machine, lps)?;
        let stage2 = predict_stage2(
            &self.machine,
            self.config.accuracy,
            self.config.success_probability,
        )?;
        let stage3 = predict_stage3(
            &self.machine,
            lps,
            self.config.accuracy,
            self.config.success_probability,
        )?;
        let costs = StageCosts {
            lps,
            stage1_embed_seconds: stage1.embed_seconds,
            stage1_overhead_seconds: stage1.total_seconds - stage1.embed_seconds,
            stage2_seconds: stage2.total_seconds,
            stage3_seconds: stage3.total_seconds,
        };
        // sx-lint: allow(A003) -- uncontended: the engine is single-threaded; a parking_lot lock is a few ns
        // sx-lint: allow(A001) -- the memo insert happens once per distinct lps; steady state serves hits above
        self.memo.lock().insert(lps, costs);
        Ok(costs)
    }

    /// Predicted seconds of the amortizable embedding share alone — what a
    /// bounded embedding cache saves by keeping a topology of `lps` spins
    /// warm, and what a cost-aware eviction policy weighs entries by.
    pub fn embed_seconds(&self, lps: usize) -> Result<f64, PipelineError> {
        Ok(self.costs(lps)?.stage1_embed_seconds)
    }

    /// Number of distinct problem sizes memoized so far.
    pub fn memoized_sizes(&self) -> usize {
        self.memo.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(1))
    }

    #[test]
    fn costs_match_the_underlying_stage_predictions() {
        let m = model();
        let costs = m.costs(30).unwrap();
        let s1 = predict_stage1(m.machine(), 30).unwrap();
        let s2 = predict_stage2(m.machine(), 0.99, 0.7).unwrap();
        let s3 = predict_stage3(m.machine(), 30, 0.99, 0.7).unwrap();
        assert!((costs.stage1_cold_seconds() - s1.total_seconds).abs() < 1e-12);
        assert!((costs.stage1_embed_seconds - s1.embed_seconds).abs() < 1e-12);
        assert!((costs.stage2_seconds - s2.total_seconds).abs() < 1e-12);
        assert!((costs.stage3_seconds - s3.total_seconds).abs() < 1e-12);
    }

    #[test]
    fn warm_jobs_skip_only_the_embedding_share() {
        let costs = model().costs(40).unwrap();
        assert!(costs.stage1_warm_seconds() < costs.stage1_cold_seconds());
        assert!(
            (costs.total_cold_seconds() - costs.total_warm_seconds() - costs.stage1_embed_seconds)
                .abs()
                < 1e-12
        );
        // The embedding is the dominant share — the paper's headline.
        assert!(costs.stage1_embed_seconds > 10.0 * costs.stage2_seconds);
    }

    #[test]
    fn memoization_serves_repeat_queries() {
        let m = model();
        let a = m.costs(20).unwrap();
        let b = m.costs(20).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.memoized_sizes(), 1);
        m.costs(21).unwrap();
        assert_eq!(m.memoized_sizes(), 2);
    }

    #[test]
    fn costs_grow_with_problem_size() {
        let m = model();
        let small = m.costs(10).unwrap();
        let large = m.costs(50).unwrap();
        assert!(large.stage1_embed_seconds > small.stage1_embed_seconds);
        assert!(large.total_cold_seconds() > small.total_cold_seconds());
    }

    #[test]
    fn embed_seconds_is_the_amortizable_share() {
        let m = model();
        assert_eq!(
            m.embed_seconds(30).unwrap(),
            m.costs(30).unwrap().stage1_embed_seconds
        );
        // Larger topologies are dearer to re-embed — the ordering cost-aware
        // eviction relies on.
        assert!(m.embed_seconds(40).unwrap() > m.embed_seconds(10).unwrap());
    }
}
