//! The split-execution machine: a conventional host plus a QPU.
//!
//! The paper's Fig. 1 sketches three ways a QPU can be attached to a host
//! HPC system; the analysis (and this crate's default) uses the *asymmetric
//! multi-processor* design of Fig. 1(a), motivated by the infrastructure
//! constraints of the existing D-Wave hardware.  A [`SplitMachine`] bundles
//! the ASPEN-style machine model used for analytic predictions with the
//! hardware graph used by the executable path.

use aspen_model::builtin::{simple_node, QpuGeneration};
use aspen_model::MachineModel;
use chimera_graph::{Chimera, FaultModel, Graph};
use serde::{Deserialize, Serialize};

/// The three integration architectures of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Architecture {
    /// Fig. 1(a): a single host node drives a network-attached QPU (the
    /// configuration analyzed in the paper and modeled by this crate).
    #[default]
    AsymmetricMultiProcessor,
    /// Fig. 1(b): the QPU is a shared resource serving many host nodes.
    SharedResource,
    /// Fig. 1(c): every node owns a dedicated QPU.
    DedicatedPerNode,
}

impl Architecture {
    /// All architectures, in the order of the paper's Fig. 1.
    pub fn all() -> [Architecture; 3] {
        [
            Architecture::AsymmetricMultiProcessor,
            Architecture::SharedResource,
            Architecture::DedicatedPerNode,
        ]
    }

    /// Short human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Architecture::AsymmetricMultiProcessor => "asymmetric multi-processor",
            Architecture::SharedResource => "shared-resource",
            Architecture::DedicatedPerNode => "dedicated QPU per node",
        }
    }

    /// How many host nodes share one QPU under this architecture (for the
    /// simple capacity arguments made around Fig. 1).
    pub fn nodes_per_qpu(&self, total_nodes: usize) -> usize {
        match self {
            Architecture::AsymmetricMultiProcessor => total_nodes.max(1),
            Architecture::SharedResource => total_nodes.max(1),
            Architecture::DedicatedPerNode => 1,
        }
    }
}

/// Which QPU generation is installed in the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QpuModel {
    /// D-Wave Two "Vesuvius": `C(8,8,4)`, 512 qubits (the paper's Fig. 3).
    Vesuvius,
    /// D-Wave 2X: `C(12,12,4)`, 1152 qubits (the paper's Stage-1 model uses
    /// its `M = N = 12` dimensions).
    #[default]
    Dw2x,
}

impl QpuModel {
    /// All modeled generations, oldest first.
    pub fn all() -> [QpuModel; 2] {
        [QpuModel::Vesuvius, QpuModel::Dw2x]
    }

    /// Chimera lattice dimensions `(M, N, L)`.
    pub fn lattice(&self) -> (usize, usize, usize) {
        match self {
            QpuModel::Vesuvius => (8, 8, 4),
            QpuModel::Dw2x => (12, 12, 4),
        }
    }

    /// Number of physical qubits.
    pub fn qubits(&self) -> usize {
        let (m, n, l) = self.lattice();
        2 * l * m * n
    }

    /// Stable lowercase name used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            QpuModel::Vesuvius => "vesuvius",
            QpuModel::Dw2x => "dw2x",
        }
    }
}

impl std::str::FromStr for QpuModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "vesuvius" | "dw2" | "dwave2" => Ok(QpuModel::Vesuvius),
            "dw2x" | "2x" | "dwave2x" => Ok(QpuModel::Dw2x),
            other => Err(format!(
                "unknown QPU model '{other}' (expected vesuvius or dw2x)"
            )),
        }
    }
}

impl std::fmt::Display for QpuModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The combined machine: ASPEN model for predictions, Chimera graph for
/// execution.
#[derive(Debug, Clone)]
pub struct SplitMachine {
    /// Integration architecture (Fig. 1).
    pub architecture: Architecture,
    /// Installed QPU generation.
    pub qpu: QpuModel,
    /// The resolved analytic machine model (Fig. 5's `SimpleNode`).
    pub aspen: MachineModel,
    /// The QPU hardware topology.
    pub chimera: Chimera,
    /// Hardware graph after applying fabrication faults.
    pub hardware: Graph,
    /// The fault model applied to the pristine lattice.
    pub faults: FaultModel,
}

impl SplitMachine {
    /// A pristine machine with the given QPU generation and the default
    /// asymmetric architecture.
    pub fn new(qpu: QpuModel) -> Self {
        Self::with_faults(qpu, FaultModel::none())
    }

    /// The default machine used throughout the benchmarks: an asymmetric
    /// node hosting a D-Wave 2X-class QPU, matching the paper's Stage-1
    /// parameters (`M = N = 12`).
    pub fn paper_default() -> Self {
        Self::new(QpuModel::Dw2x)
    }

    /// A machine whose QPU carries fabrication faults.
    pub fn with_faults(qpu: QpuModel, faults: FaultModel) -> Self {
        let (m, n, l) = qpu.lattice();
        let chimera = Chimera::new(m, n, l);
        let hardware = faults.apply(chimera.graph());
        let generation = match qpu {
            QpuModel::Vesuvius => QpuGeneration::Vesuvius,
            QpuModel::Dw2x => QpuGeneration::Dw2x,
        };
        Self {
            architecture: Architecture::default(),
            qpu,
            aspen: simple_node(generation),
            chimera,
            hardware,
            faults,
        }
    }

    /// Override the integration architecture.
    pub fn with_architecture(mut self, architecture: Architecture) -> Self {
        self.architecture = architecture;
        self
    }

    /// Number of usable (non-faulted) qubits.
    pub fn usable_qubits(&self) -> usize {
        self.chimera.qubit_count() - self.faults.dead_qubits.len()
    }

    /// The Chimera lattice dimensions as `(M, N)` — the `M`/`N` parameters of
    /// the paper's Stage-1 model.
    pub fn lattice_dims(&self) -> (usize, usize) {
        (self.chimera.rows(), self.chimera.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_labels_and_enumeration() {
        assert_eq!(Architecture::all().len(), 3);
        assert!(Architecture::default().label().contains("asymmetric"));
        assert_eq!(Architecture::DedicatedPerNode.nodes_per_qpu(64), 1);
        assert_eq!(Architecture::SharedResource.nodes_per_qpu(64), 64);
        assert_eq!(Architecture::AsymmetricMultiProcessor.nodes_per_qpu(0), 1);
    }

    #[test]
    fn qpu_models_match_paper_hardware() {
        assert_eq!(QpuModel::Vesuvius.qubits(), 512);
        assert_eq!(QpuModel::Dw2x.qubits(), 1152);
        assert_eq!(QpuModel::Dw2x.lattice(), (12, 12, 4));
    }

    #[test]
    fn qpu_models_parse_and_display() {
        assert_eq!("vesuvius".parse::<QpuModel>().unwrap(), QpuModel::Vesuvius);
        assert_eq!("DW2X".parse::<QpuModel>().unwrap(), QpuModel::Dw2x);
        assert!("dw3000".parse::<QpuModel>().is_err());
        for model in QpuModel::all() {
            assert_eq!(model.to_string(), model.name());
            assert_eq!(model.name().parse::<QpuModel>().unwrap(), model);
        }
    }

    #[test]
    fn paper_default_machine_is_dw2x_asymmetric() {
        let m = SplitMachine::paper_default();
        assert_eq!(m.qpu, QpuModel::Dw2x);
        assert_eq!(m.architecture, Architecture::AsymmetricMultiProcessor);
        assert_eq!(m.chimera.qubit_count(), 1152);
        assert_eq!(m.usable_qubits(), 1152);
        assert_eq!(m.lattice_dims(), (12, 12));
        // The analytic model can service every resource the stage models use.
        for r in [
            "flops",
            "loads",
            "stores",
            "intracomm",
            "QuOps",
            "microseconds",
        ] {
            assert!(m.aspen.supports(r), "missing {r}");
        }
    }

    #[test]
    fn faulted_machine_reduces_usable_qubits() {
        let chimera = Chimera::new(8, 8, 4);
        let faults = FaultModel::exact_dead_qubits(chimera.graph(), 20, 7);
        let m = SplitMachine::with_faults(QpuModel::Vesuvius, faults);
        assert_eq!(m.usable_qubits(), 512 - 20);
        assert!(m.hardware.edge_count() < m.chimera.coupler_count());
    }

    #[test]
    fn architecture_override() {
        let m = SplitMachine::paper_default().with_architecture(Architecture::SharedResource);
        assert_eq!(m.architecture, Architecture::SharedResource);
    }
}
