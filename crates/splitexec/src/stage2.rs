//! Stage 2 — quantum execution: statistical sampling on the (simulated) QPU.
//!
//! The paper models this stage as `s` repetitions of a fixed-duration anneal
//! (Eq. 6) plus constant readout and thermalization times (Fig. 7), and
//! observes that for any per-read success probability above ~0.6 the stage is
//! orders of magnitude cheaper than the stage-1 pre-processing.
//!
//! * [`predict_stage2`] walks the Fig. 7 ASPEN model.
//! * [`execute_stage2`] draws the same number of reads from the simulated
//!   QPU, reporting both the modeled hardware access time and the wall-clock
//!   simulation time.

use crate::config::SplitExecConfig;
use crate::error::PipelineError;
use crate::machine::SplitMachine;
use aspen_model::{listings, ApplicationModel, ParamEnv, Prediction, Predictor};
use quantum_anneal::{
    estimate_success_probability, required_reads, QpuAccessReport, SampleParams, SampleSet,
    SamplerBackend,
};
use qubo_ising::Ising;
use serde::{Deserialize, Serialize};

/// Analytic prediction for stage 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage2Prediction {
    /// Desired accuracy `p_a`.
    pub accuracy: f64,
    /// Assumed per-read success probability `p_s`.
    pub success_probability: f64,
    /// Number of reads charged by the model (Eq. 6).
    pub reads: usize,
    /// Total predicted seconds (anneals + readout + thermalization).
    pub total_seconds: f64,
    /// The full ASPEN prediction, for detailed reporting.
    pub prediction: Prediction,
}

/// Walk the paper's Stage-2 model for the requested accuracy.
///
/// The Fig. 7 listing expresses `Accuracy` as a percentage, so the fraction
/// `accuracy` is multiplied by 100 before being bound.
// sx-lint: hot-exempt -- runs only on a CostModel::costs memo miss: once per distinct problem size, amortized off the per-event path
pub fn predict_stage2(
    machine: &SplitMachine,
    accuracy: f64,
    success_probability: f64,
) -> Result<Stage2Prediction, PipelineError> {
    let app = ApplicationModel::from_source(listings::STAGE2_LISTING)?;
    let overrides = ParamEnv::new()
        .with("Accuracy", accuracy.clamp(0.0, 0.999_999_999) * 100.0)
        .with("Success", success_probability.clamp(1e-9, 1.0 - 1e-12));
    let prediction = Predictor::new(&machine.aspen).predict(&app, &overrides)?;
    let reads = prediction
        .resource_totals
        .get("QuOps")
        .map(|t| t.quantity.max(0.0) as usize)
        .unwrap_or(0);
    Ok(Stage2Prediction {
        accuracy,
        success_probability,
        reads,
        total_seconds: prediction.seconds(),
        prediction,
    })
}

/// Measured result of running stage 2 on a sampler backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage2Execution {
    /// Name of the backend that served the request.  (Owned rather than
    /// `&'static str` so the struct stays deserializable under a real
    /// serde implementation.)
    pub backend: String,
    /// Number of reads performed (Eq. 6 with the configured cap).
    pub reads: usize,
    /// The aggregated readout ensemble (physical spins).
    pub samples: SampleSet,
    /// Hardware-modeled access time and simulation cost.
    pub access: QpuAccessReport,
    /// Fraction of reads that reached the best energy observed in the
    /// ensemble — an empirical stand-in for the characteristic success
    /// probability `p_s`.
    pub observed_success: f64,
    /// Modeled stage seconds (the quantity comparable with the prediction).
    pub total_seconds: f64,
}

/// Execute stage 2 on the backend named by `config.backend` (convenience
/// wrapper over [`execute_stage2_with_backend`]).
pub fn execute_stage2(
    machine: &SplitMachine,
    config: &SplitExecConfig,
    physical: &Ising,
) -> Result<Stage2Execution, PipelineError> {
    let backend = config.backend.build_with_schedule(config.schedule);
    execute_stage2_with_backend(machine, config, physical, backend.as_ref())
}

/// Execute stage 2: sample the embedded (physical) Ising program on any
/// [`SamplerBackend`].
pub fn execute_stage2_with_backend(
    machine: &SplitMachine,
    config: &SplitExecConfig,
    physical: &Ising,
    backend: &dyn SamplerBackend,
) -> Result<Stage2Execution, PipelineError> {
    let _ = machine; // the sampler backends are independent of the host model
    let reads = config.reads();
    if reads == usize::MAX {
        return Err(PipelineError::BadInput(
            "requested accuracy needs an unbounded number of reads".into(),
        ));
    }
    // Backends express their temperature schedules relative to a unit energy
    // scale; pass the embedded program's actual parameter magnitude (chain
    // couplings are deliberately the largest parameters) so the dynamics
    // explore rather than quench.
    let scale = physical
        .max_abs_field()
        .max(physical.max_abs_coupling())
        .max(1.0);
    let params = SampleParams::new(reads, config.seed).with_energy_scale(scale);
    let (samples, access) = backend.sample_with_report(physical, &params)?;
    let observed_success = samples
        .best_energy()
        .map(|best| estimate_success_probability(&samples.energies(), best, 1e-9).p_success)
        .unwrap_or(0.0);
    // The modeled stage time charges the per-read anneal plus the constant
    // readout and thermalization blocks, exactly like the Fig. 7 model.
    let timings = backend.timings();
    let total_seconds = timings.anneal_seconds(reads) + timings.readout_seconds();
    Ok(Stage2Execution {
        backend: backend.name().to_string(),
        reads,
        samples,
        access,
        observed_success,
        total_seconds,
    })
}

/// The repetition count the paper's Eq. (6) assigns to an accuracy sweep;
/// exposed for the Fig. 9(b) benchmark.
pub fn reads_for_accuracy(accuracy: f64, success_probability: f64) -> usize {
    required_reads(accuracy, success_probability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    fn machine() -> SplitMachine {
        SplitMachine::paper_default()
    }

    #[test]
    fn prediction_matches_hand_computed_times() {
        // pa = 0.99, ps = 0.7 -> 4 reads; 4 × 20 µs + 320 µs + 5 µs = 405 µs.
        let p = predict_stage2(&machine(), 0.99, 0.7).unwrap();
        assert_eq!(p.reads, 4);
        assert!((p.total_seconds - 405e-6).abs() < 1e-9);
    }

    #[test]
    fn prediction_with_listing_defaults() {
        // The listing's own defaults (Success = 0.9999) need a single read.
        let p = predict_stage2(&machine(), 0.99, 0.9999).unwrap();
        assert_eq!(p.reads, 1);
        assert!((p.total_seconds - 345e-6).abs() < 1e-9);
    }

    #[test]
    fn prediction_is_insensitive_to_success_above_point_six() {
        let machine = machine();
        let times: Vec<f64> = [0.6, 0.7, 0.8, 0.9, 0.99]
            .iter()
            .map(|&ps| predict_stage2(&machine, 0.99, ps).unwrap().total_seconds)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        // Within a factor of ~1.3 across the whole range, as the paper notes.
        assert!(max / min < 1.35, "spread {min}..{max}");
    }

    #[test]
    fn prediction_grows_slowly_with_accuracy() {
        let machine = machine();
        let low = predict_stage2(&machine, 0.9, 0.7).unwrap().total_seconds;
        let high = predict_stage2(&machine, 0.999_999, 0.7)
            .unwrap()
            .total_seconds;
        assert!(high > low);
        // Even six nines of accuracy keep stage 2 under a millisecond.
        assert!(high < 1e-3);
    }

    #[test]
    fn execution_samples_and_reports() {
        let machine = machine();
        let config = SplitExecConfig::with_seed(5);
        let logical = Ising::random_on_graph(&generators::cycle(8), 3);
        let result = execute_stage2(&machine, &config, &logical).unwrap();
        assert_eq!(result.reads, 4);
        assert_eq!(result.samples.num_reads(), 4);
        assert!(result.observed_success > 0.0);
        assert!(result.total_seconds > 0.0);
        assert!(result.access.modeled_seconds > result.total_seconds);
    }

    #[test]
    fn execution_works_on_every_builtin_backend() {
        use quantum_anneal::BackendKind;
        let machine = machine();
        let logical = Ising::random_on_graph(&generators::cycle(8), 3);
        for kind in BackendKind::all() {
            let config = SplitExecConfig::with_seed(5).with_backend(kind);
            let result = execute_stage2(&machine, &config, &logical).unwrap();
            assert_eq!(result.backend, kind.to_string(), "{kind}");
            assert_eq!(result.samples.num_reads(), config.reads(), "{kind}");
            assert!(result.total_seconds > 0.0, "{kind}");
        }
    }

    #[test]
    fn execution_respects_read_cap() {
        let machine = machine();
        let mut config = SplitExecConfig::with_seed(1)
            .with_accuracy(0.999_999)
            .with_success_probability(0.01);
        config.max_reads = Some(16);
        let logical = Ising::random_on_graph(&generators::path(4), 1);
        let result = execute_stage2(&machine, &config, &logical).unwrap();
        assert_eq!(result.reads, 16);
    }

    #[test]
    fn reads_for_accuracy_matches_eq6() {
        assert_eq!(reads_for_accuracy(0.99, 0.7), 4);
        assert_eq!(reads_for_accuracy(0.9999, 0.7), 8);
    }
}
