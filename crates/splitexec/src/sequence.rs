//! The CPU–QPU interaction sequence of the paper's Fig. 2.
//!
//! The figure describes how a calling thread (`cthread`) on the host CPU
//! pushes a problem through the software (SW) and middleware (MW) layers to
//! the quantum hardware (QHW) and receives a post-processed result back.
//! This module renders an [`ExecutionReport`] as that sequence of layer
//! crossings with the time attributed to each hop, which the quickstart
//! example prints as a textual sequence diagram.

use crate::pipeline::ExecutionReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four layers of the Fig. 2 sequence diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// The calling thread on the host CPU.
    CallingThread,
    /// The QPU driver software layer (problem parsing, result return).
    Software,
    /// The middleware layer (domain translation: embedding, programming,
    /// post-processing).
    Middleware,
    /// The quantum hardware layer (annealing and readout).
    QuantumHardware,
}

impl Layer {
    /// Short label used when rendering the trace.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::CallingThread => "cthread",
            Layer::Software => "SW",
            Layer::Middleware => "MW",
            Layer::QuantumHardware => "QHW",
        }
    }
}

/// One step of the sequence: work performed at (or a hand-off between)
/// layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceEvent {
    /// Layer where the step originates.
    pub from: Layer,
    /// Layer where the step completes.
    pub to: Layer,
    /// Human-readable description.
    pub description: String,
    /// Seconds attributed to the step (measured or hardware-modeled).
    pub seconds: f64,
}

/// An ordered trace of sequence events for one round trip.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SequenceTrace {
    /// Events in execution order.
    pub events: Vec<SequenceEvent>,
}

impl SequenceTrace {
    /// Build the Fig. 2 trace from an executed pipeline report.
    pub fn from_report(report: &ExecutionReport) -> Self {
        let mut events = Vec::new();
        let push = |events: &mut Vec<SequenceEvent>, from, to, description: &str, seconds| {
            events.push(SequenceEvent {
                from,
                to,
                description: description.to_string(),
                seconds,
            });
        };
        push(
            &mut events,
            Layer::CallingThread,
            Layer::Software,
            "push problem data to the QPU interface",
            report.stage1.conversion_seconds,
        );
        push(
            &mut events,
            Layer::Software,
            Layer::Middleware,
            "parse problem and construct the logical Ising model",
            0.0,
        );
        push(
            &mut events,
            Layer::Middleware,
            Layer::Middleware,
            "minor-embed the logical model into the hardware graph",
            report.stage1.embedding_seconds,
        );
        push(
            &mut events,
            Layer::Middleware,
            Layer::Middleware,
            "set embedded parameters (biases, couplers, chain strength)",
            report.stage1.parameter_seconds,
        );
        push(
            &mut events,
            Layer::Middleware,
            Layer::QuantumHardware,
            "program the electronic control system / PMM",
            report.stage1.processor_initialize_seconds,
        );
        push(
            &mut events,
            Layer::QuantumHardware,
            Layer::QuantumHardware,
            &format!("execute {} annealing reads", report.stage2.reads),
            report.stage2.total_seconds,
        );
        push(
            &mut events,
            Layer::QuantumHardware,
            Layer::Middleware,
            "return readout ensemble",
            0.0,
        );
        push(
            &mut events,
            Layer::Middleware,
            Layer::Software,
            "un-embed, sort and deduplicate results",
            report.stage3.measured_seconds,
        );
        push(
            &mut events,
            Layer::Software,
            Layer::CallingThread,
            "return the optimization result to the caller",
            0.0,
        );
        Self { events }
    }

    /// Total seconds across all events.
    pub fn total_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.seconds).sum()
    }

    /// The single most expensive event.
    pub fn dominant_event(&self) -> Option<&SequenceEvent> {
        self.events
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }
}

impl fmt::Display for SequenceTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sequence trace (total {:.6} s):", self.total_seconds())?;
        for event in &self.events {
            writeln!(
                f,
                "  {:>8} -> {:<8} {:<58} {:>12.6} s",
                event.from.label(),
                event.to.label(),
                event.description,
                event.seconds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitExecConfig;
    use crate::machine::SplitMachine;
    use crate::pipeline::Pipeline;
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;

    fn sample_report() -> ExecutionReport {
        let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(2));
        let qubo = MaxCut::unweighted(generators::cycle(6)).to_qubo();
        pipeline.execute(&qubo).unwrap()
    }

    #[test]
    fn trace_covers_all_layers_in_order() {
        let trace = SequenceTrace::from_report(&sample_report());
        assert_eq!(trace.events.len(), 9);
        assert_eq!(trace.events.first().unwrap().from, Layer::CallingThread);
        assert_eq!(trace.events.last().unwrap().to, Layer::CallingThread);
        assert!(trace.events.iter().any(|e| e.to == Layer::QuantumHardware));
    }

    #[test]
    fn trace_total_matches_report_total() {
        let report = sample_report();
        let trace = SequenceTrace::from_report(&report);
        assert!((trace.total_seconds() - report.total_seconds()).abs() < 1e-9);
    }

    #[test]
    fn dominant_event_is_classical_preprocessing() {
        // The most expensive hop is the electronics programming or the
        // embedding, never the quantum execution — the paper's conclusion.
        let trace = SequenceTrace::from_report(&sample_report());
        let dominant = trace.dominant_event().unwrap();
        assert_ne!(dominant.from, Layer::QuantumHardware);
    }

    #[test]
    fn display_renders_every_event() {
        let trace = SequenceTrace::from_report(&sample_report());
        let text = trace.to_string();
        assert!(text.contains("cthread"));
        assert!(text.contains("QHW"));
        assert!(text.contains("annealing reads"));
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn layer_labels_are_stable() {
        assert_eq!(Layer::CallingThread.label(), "cthread");
        assert_eq!(Layer::Software.label(), "SW");
        assert_eq!(Layer::Middleware.label(), "MW");
        assert_eq!(Layer::QuantumHardware.label(), "QHW");
    }
}
