//! Small timing helpers shared by the executable stages.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Run a closure and return its result together with the elapsed wall-clock
/// seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// A predicted-vs-measured pair for one quantity, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelVsMeasured {
    /// Analytic (ASPEN-walk) prediction.
    pub predicted_seconds: f64,
    /// Measured (or hardware-modeled, where execution is impossible) value.
    pub measured_seconds: f64,
}

impl ModelVsMeasured {
    /// Ratio `predicted / measured`; `NaN` when the measurement is zero.
    pub fn ratio(&self) -> f64 {
        self.predicted_seconds / self.measured_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_positive_duration() {
        let (value, seconds) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn ratio_of_model_vs_measured() {
        let pair = ModelVsMeasured {
            predicted_seconds: 4.0,
            measured_seconds: 2.0,
        };
        assert!((pair.ratio() - 2.0).abs() < 1e-12);
    }
}
