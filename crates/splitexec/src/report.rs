//! Report formatting: the tables and CSV series used by the figure
//! regeneration binaries and the examples.

use crate::pipeline::{ExecutionReport, PredictedBreakdown};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One row of a stage-breakdown table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Logical problem size.
    pub lps: usize,
    /// Stage-1 seconds.
    pub stage1_seconds: f64,
    /// Stage-2 seconds.
    pub stage2_seconds: f64,
    /// Stage-3 seconds.
    pub stage3_seconds: f64,
    /// Total seconds.
    pub total_seconds: f64,
    /// Fraction of the total spent in stage 1.
    pub stage1_fraction: f64,
}

impl BreakdownRow {
    /// Build a row from an analytic prediction.
    pub fn from_prediction(p: &PredictedBreakdown) -> Self {
        Self {
            lps: p.lps,
            stage1_seconds: p.stage1.total_seconds,
            stage2_seconds: p.stage2.total_seconds,
            stage3_seconds: p.stage3.total_seconds,
            total_seconds: p.total_seconds(),
            stage1_fraction: p.stage1_fraction(),
        }
    }

    /// Build a row from an executed report.
    pub fn from_execution(lps: usize, r: &ExecutionReport) -> Self {
        Self {
            lps,
            stage1_seconds: r.stage1.total_seconds,
            stage2_seconds: r.stage2.total_seconds,
            stage3_seconds: r.stage3.measured_seconds,
            total_seconds: r.total_seconds(),
            stage1_fraction: r.stage1_fraction(),
        }
    }
}

/// Render rows as an aligned text table (used by the `stage_breakdown`
/// binary and the examples).
pub fn breakdown_table(rows: &[BreakdownRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "n", "stage1 [s]", "stage2 [s]", "stage3 [s]", "total [s]", "stage1 %"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>9.2}%",
            row.lps,
            row.stage1_seconds,
            row.stage2_seconds,
            row.stage3_seconds,
            row.total_seconds,
            100.0 * row.stage1_fraction
        );
    }
    out
}

/// Render an `(x, series...)` data set as CSV with a header line, the format
/// consumed by external plotting of the figure series.
pub fn csv_series(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let formatted: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        let _ = writeln!(out, "{}", formatted.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitExecConfig;
    use crate::machine::SplitMachine;
    use crate::pipeline::Pipeline;

    #[test]
    fn breakdown_row_from_prediction() {
        let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::default());
        let p = pipeline.predict(20).unwrap();
        let row = BreakdownRow::from_prediction(&p);
        assert_eq!(row.lps, 20);
        let sum = row.stage1_seconds + row.stage2_seconds + row.stage3_seconds;
        assert!((sum - row.total_seconds).abs() < 1e-9);
        assert!(row.stage1_fraction > 0.9);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            BreakdownRow {
                lps: 10,
                stage1_seconds: 1.0,
                stage2_seconds: 0.001,
                stage3_seconds: 0.0001,
                total_seconds: 1.0011,
                stage1_fraction: 0.999,
            },
            BreakdownRow {
                lps: 20,
                stage1_seconds: 2.0,
                stage2_seconds: 0.001,
                stage3_seconds: 0.0001,
                total_seconds: 2.0011,
                stage1_fraction: 0.9995,
            },
        ];
        let table = breakdown_table(&rows);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("stage1 [s]"));
        assert!(table.contains("20"));
    }

    #[test]
    fn csv_series_has_header_and_rows() {
        let csv = csv_series(&["n", "model", "measured"], &[vec![1.0, 2.0, 3.0]]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "n,model,measured");
        let data = lines.next().unwrap();
        assert_eq!(data.split(',').count(), 3);
    }
}
