//! Offline embedding cache — the paper's proposed remedy for the stage-1
//! bottleneck.
//!
//! Sec. 3.3 suggests that "it may be beneficial to use some variant of
//! off-line embedding, in which specific input graphs are pre-embedded and
//! stored in a graph lookup table", trading the expensive in-line embedding
//! computation for a lookup keyed on the input graph.  This module implements
//! that idea: embeddings are cached under a canonical key of the input graph
//! and reused when an isomorphic-by-construction (identical vertex labels)
//! graph is requested again.  The ablation benchmark
//! `ablation_offline_embedding` measures the warm-vs-cold difference.
//!
//! A full graph-isomorphism lookup (the paper wryly notes the D-Wave could be
//! used to program the D-Wave) is out of scope; the cache keys on the labeled
//! edge set, which already covers the common case of re-solving the same
//! problem family with different coefficients.

use crate::config::SplitExecConfig;
use crate::error::PipelineError;
use crate::machine::SplitMachine;
use crate::timing::timed;
use chimera_graph::Graph;
use minor_embed::{find_embedding, CmrStats, Embedding};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups that found a stored embedding.
    pub hits: usize,
    /// Number of lookups that had to run the embedding heuristic.
    pub misses: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when the cache has never been queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe cache of pre-computed embeddings keyed by the labeled edge
/// set of the input graph.
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    entries: Mutex<HashMap<u64, Embedding>>,
    stats: Mutex<CacheStats>,
}

/// Canonical cache key: vertex count plus the sorted edge list, hashed.
pub fn graph_key(graph: &Graph) -> u64 {
    let mut hasher = DefaultHasher::new();
    graph.vertex_count().hash(&mut hasher);
    for (u, v) in graph.edges() {
        (u, v).hash(&mut hasher);
    }
    hasher.finish()
}

/// Full entry key: the input graph *and* the embedding context — the
/// hardware graph and the CMR configuration.  A cache held across batches
/// (or shared between pipelines) must not serve an embedding computed for a
/// different machine or heuristic configuration: chains could reference
/// qubits the other hardware lacks, and determinism guarantees would break
/// silently.
pub fn entry_key(input: &Graph, machine: &SplitMachine, config: &SplitExecConfig) -> u64 {
    let mut hasher = DefaultHasher::new();
    graph_key(input).hash(&mut hasher);
    graph_key(&machine.hardware).hash(&mut hasher);
    let cmr = &config.cmr;
    cmr.max_passes.hash(&mut hasher);
    cmr.tries.hash(&mut hasher);
    cmr.seed.hash(&mut hasher);
    cmr.overlap_penalty_base.to_bits().hash(&mut hasher);
    // `parallel_tries` is deliberately excluded: serial and parallel tries
    // produce identical embeddings (each try is independently seeded).
    hasher.finish()
}

/// Result of a cached lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedEmbedding {
    /// The embedding (either freshly computed or from the cache).
    pub embedding: Embedding,
    /// Whether the embedding came from the cache.
    pub cache_hit: bool,
    /// Seconds spent obtaining it (close to zero on a hit).
    pub seconds: f64,
    /// Heuristic work counters for this lookup (zero on a hit — no
    /// embedding work was performed).
    pub stats: CmrStats,
}

impl EmbeddingCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored embeddings.
    // sx-lint: hot-exempt -- offline embedding table, consulted at embed time, never in the event loop; `len` name-collides with collection calls in engine bodies
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Whether an embedding for `graph` under this machine/config context is
    /// stored (does not count as a lookup in the statistics).
    // sx-lint: hot-exempt -- offline embedding table, consulted at embed time, never in the event loop; `contains` name-collides with HashSet calls in engine bodies
    pub fn contains(
        &self,
        graph: &Graph,
        machine: &SplitMachine,
        config: &SplitExecConfig,
    ) -> bool {
        self.entries
            .lock()
            .contains_key(&entry_key(graph, machine, config))
    }

    /// Insert a pre-computed embedding for an input graph (the "offline"
    /// path: embeddings computed ahead of time and loaded into the table).
    /// The machine/config pair must be the context the embedding was
    /// computed under — it is part of the key.
    // sx-lint: hot-exempt -- offline embedding table, loaded ahead of time, never in the event loop; `insert` name-collides with collection calls in engine bodies
    pub fn insert(
        &self,
        graph: &Graph,
        machine: &SplitMachine,
        config: &SplitExecConfig,
        embedding: Embedding,
    ) {
        self.entries
            .lock()
            .insert(entry_key(graph, machine, config), embedding);
    }

    /// Look up the embedding for `input`, computing (and storing) it with the
    /// CMR heuristic on a miss.
    pub fn get_or_compute(
        &self,
        input: &Graph,
        machine: &SplitMachine,
        config: &SplitExecConfig,
    ) -> Result<CachedEmbedding, PipelineError> {
        let key = entry_key(input, machine, config);
        if let Some(found) = self.entries.lock().get(&key).cloned() {
            self.stats.lock().hits += 1;
            return Ok(CachedEmbedding {
                embedding: found,
                cache_hit: true,
                seconds: 0.0,
                stats: CmrStats::default(),
            });
        }
        let (outcome, seconds) = timed(|| find_embedding(input, &machine.hardware, &config.cmr));
        let outcome = outcome?;
        self.entries.lock().insert(key, outcome.embedding.clone());
        self.stats.lock().misses += 1;
        Ok(CachedEmbedding {
            embedding: outcome.embedding,
            cache_hit: false,
            seconds,
            stats: outcome.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_graph::generators;

    fn setup() -> (SplitMachine, SplitExecConfig, EmbeddingCache) {
        (
            SplitMachine::paper_default(),
            SplitExecConfig::with_seed(4),
            EmbeddingCache::new(),
        )
    }

    #[test]
    fn key_is_stable_and_structure_sensitive() {
        let a = generators::cycle(6);
        let b = generators::cycle(6);
        let c = generators::path(6);
        assert_eq!(graph_key(&a), graph_key(&b));
        assert_ne!(graph_key(&a), graph_key(&c));
        // Vertex count matters even with the same (empty) edge set.
        assert_ne!(graph_key(&Graph::new(3)), graph_key(&Graph::new(4)));
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let (machine, config, cache) = setup();
        let input = generators::complete(6);
        let first = cache.get_or_compute(&input, &machine, &config).unwrap();
        assert!(!first.cache_hit);
        let second = cache.get_or_compute(&input, &machine, &config).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.embedding, second.embedding);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_graphs_get_different_entries() {
        let (machine, config, cache) = setup();
        cache
            .get_or_compute(&generators::cycle(8), &machine, &config)
            .unwrap();
        cache
            .get_or_compute(&generators::complete(5), &machine, &config)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn preloaded_embeddings_are_served_without_computation() {
        let (machine, config, cache) = setup();
        let input = generators::path(4);
        // Pre-compute offline and insert.
        let outcome = find_embedding(&input, &machine.hardware, &config.cmr).unwrap();
        cache.insert(&input, &machine, &config, outcome.embedding.clone());
        assert!(cache.contains(&input, &machine, &config));
        let served = cache.get_or_compute(&input, &machine, &config).unwrap();
        assert!(served.cache_hit);
        assert_eq!(served.embedding, outcome.embedding);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn different_machines_and_configs_do_not_share_entries() {
        let (machine, config, cache) = setup();
        let input = generators::cycle(6);
        cache.get_or_compute(&input, &machine, &config).unwrap();
        assert_eq!(cache.stats().misses, 1);

        // A different hardware graph must not be served the old embedding
        // (its chains would reference the wrong qubit space)...
        let vesuvius = SplitMachine::new(crate::machine::QpuModel::Vesuvius);
        let other_hw = cache.get_or_compute(&input, &vesuvius, &config).unwrap();
        assert!(!other_hw.cache_hit);

        // ...and neither must a different CMR configuration (determinism:
        // cached results must equal what a fresh run would compute).
        let other_config = SplitExecConfig::with_seed(config.seed + 1);
        let other_seed = cache
            .get_or_compute(&input, &machine, &other_config)
            .unwrap();
        assert!(!other_seed.cache_hit);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn embedding_failures_are_not_cached() {
        let (machine, config, cache) = setup();
        // More logical vertices than physical qubits: rejected immediately.
        let too_big = generators::complete(2000);
        assert!(cache.get_or_compute(&too_big, &machine, &config).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache = EmbeddingCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.is_empty());
    }
}
