//! Pluggable backends and batch submission: the redesigned execution API.
//!
//! Demonstrates the two seams introduced by the `SamplerBackend` redesign:
//!
//! 1. stage 2 as an interchangeable component — the same pipeline runs on
//!    simulated annealing, parallel tempering and exact enumeration, and
//!    all three agree on small instances,
//! 2. batch submission — a family of jobs sharing one interaction topology
//!    pays the dominant stage-1 embedding cost once.
//!
//! Run with:
//! ```text
//! cargo run --release --example backend_batch
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use qubo_ising::Qubo;
use split_exec::prelude::*;

fn main() -> Result<(), PipelineError> {
    let machine = SplitMachine::paper_default();
    let qubo = MaxCut::unweighted(generators::cycle(8)).to_qubo();

    // 1. One pipeline per backend, selected by name exactly as a CLI would.
    println!("backend parity on an 8-cycle MAX-CUT:");
    for name in ["sa", "pt", "exact"] {
        let kind: BackendKind = name.parse().expect("built-in backend name");
        let config = SplitExecConfig::with_seed(7)
            .with_accuracy(0.999_999)
            .with_backend(kind);
        let pipeline = Pipeline::new(machine.clone(), config);
        let report = pipeline.execute(&qubo)?;
        println!(
            "  {:<22} energy {:>7.2}  stage2 {:>9.3e}s ({} reads)",
            report.stage2.backend,
            report.solution.qubo_energy,
            report.stage2.total_seconds,
            report.stage2.reads
        );
    }

    // 2. Batch submission: 12 re-weighted instances of one topology.
    let jobs: Vec<Qubo> = (0..12)
        .map(|w| {
            let graph = generators::cycle(10);
            let weights: Vec<((usize, usize), f64)> = graph
                .edges()
                .map(|(u, v)| ((u, v), 1.0 + w as f64))
                .collect();
            MaxCut::weighted(graph.clone(), &weights).to_qubo()
        })
        .collect();
    let pipeline = Pipeline::new(machine, SplitExecConfig::with_seed(3));
    let report = pipeline.execute_batch_report(&jobs);
    println!("\nbatch of {} same-topology jobs:", report.jobs);
    println!(
        "  {} succeeded; embedding computed {} time(s), served from cache {} time(s)",
        report.succeeded, report.embedding_cache.misses, report.embedding_cache.hits
    );
    println!(
        "  wall {:.3}s; modeled stage-1 share {:.1}%",
        report.wall_seconds,
        100.0 * report.stage1_fraction()
    );
    Ok(())
}
