//! Multi-tenant serving: weighted fair queueing and admission control.
//!
//! Composes a two-tenant workload — a well-behaved *victim* re-solving a
//! small repeated-topology mix and a cache-busting *aggressor* flooding the
//! fleet at 10x the victim's rate — and shows what each layer of the tenant
//! subsystem buys:
//!
//! 1. FIFO: the aggressor's backlog inflates the victim's p99.
//! 2. Weighted fair queueing: the victim's lane is served at its fair
//!    share, so its p99 stays near the isolated baseline.
//! 3. WFQ + token-bucket admission: the aggressor's queue depth is bounded
//!    and its excess shed, without touching the victim.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus: 4,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn main() {
    let seed = 7;
    let spec = MultiTenantSpec::aggressor_victim(15, 0.45, 10.0, 1.0, seed);
    let workload = spec.generate();
    println!(
        "workload: {} victim + {} aggressor jobs ({} distinct topologies)\n",
        workload
            .jobs
            .iter()
            .filter(|j| j.tenant == TenantId(0))
            .count(),
        workload
            .jobs
            .iter()
            .filter(|j| j.tenant == TenantId(1))
            .count(),
        workload.distinct_topologies(),
    );

    // The victim alone on the same fleet: its no-contention baseline.
    let isolated_workload = MultiTenantSpec {
        tenants: vec![spec.tenants[0].clone()],
        ..spec.clone()
    }
    .generate();
    let mut fifo = PolicyKind::Fifo.build();
    let isolated = simulate(
        fleet(seed),
        &isolated_workload,
        fifo.as_mut(),
        SimConfig::default(),
    );
    println!(
        "isolated victim baseline: p50 {:.2}s, p99 {:.2}s\n",
        isolated.latency.p50, isolated.latency.p99
    );

    // 1. FIFO: one queue, no tenancy — the flood wins.
    let mut fifo = PolicyKind::Fifo.build();
    let fifo_report = simulate(fleet(seed), &workload, fifo.as_mut(), SimConfig::default());
    println!("{fifo_report}\n");

    // 2. WFQ: per-tenant lanes on a virtual clock.
    let mut wfq = WeightedFairQueue::for_workload(&workload);
    let wfq_report = simulate(fleet(seed), &workload, &mut wfq, SimConfig::default());
    println!("{wfq_report}\n");

    // 3. WFQ + admission: budget the aggressor's lane.
    let generous = TokenBucketConfig {
        rate_hz: 1e3,
        burst: 1e3,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e9,
        ..TokenBucketConfig::default()
    };
    let mut gate = TokenBucket::new(generous).with_tenant_budget(
        TenantId(1),
        TokenBucketConfig {
            max_queue_depth: 6,
            ..generous
        },
    );
    let mut wfq = WeightedFairQueue::for_workload(&workload);
    let gated_report = simulate_with_admission(
        fleet(seed),
        &workload,
        &mut wfq,
        &mut gate,
        SimConfig::default(),
    );
    println!("{gated_report}\n");

    let victim = |r: &SimReport| r.tenant_named("victim").unwrap().latency.p99;
    println!(
        "victim p99: isolated {:.2}s | fifo {:.2}s | wfq {:.2}s | wfq+admission {:.2}s",
        isolated.latency.p99,
        victim(&fifo_report),
        victim(&wfq_report),
        victim(&gated_report),
    );
    println!(
        "aggressor max queue depth: {} open vs {} gated ({} jobs shed)",
        fifo_report
            .tenant_named("aggressor")
            .unwrap()
            .max_queue_depth,
        gated_report
            .tenant_named("aggressor")
            .unwrap()
            .max_queue_depth,
        gated_report.shed,
    );
    // Machine-readable form of the same run:
    println!(
        "\nJSON (truncated): {:.120}...",
        gated_report.to_json().to_string()
    );
}
