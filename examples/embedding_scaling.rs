//! Embedding-scaling study: how the stage-1 model and the measured CMR
//! heuristic behave as the logical problem size grows (the content of the
//! paper's Fig. 9a, at example scale).
//!
//! For each complete input graph `K_n` the program prints the ASPEN-model
//! prediction of the worst-case embedding cost next to the measured
//! wall-clock time and work counters of the real CMR implementation, plus
//! the qubit usage of the deterministic clique embedding for comparison.
//!
//! Run with:
//! ```text
//! cargo run --release -p split-exec --example embedding_scaling
//! ```

use chimera_graph::generators;
use minor_embed::prelude::*;
use split_exec::prelude::*;
use std::time::Instant;

fn main() -> Result<(), PipelineError> {
    let machine = SplitMachine::paper_default();
    println!(
        "hardware: Chimera {}x{}x4 with {} qubits",
        machine.lattice_dims().0,
        machine.lattice_dims().1,
        machine.usable_qubits()
    );
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>12} {:>10} {:>12}",
        "n", "model ops", "model [s]", "CMR [s]", "dijkstras", "CMR qubits", "clique qubits"
    );

    for n in [4usize, 6, 8, 10, 12] {
        let prediction = predict_stage1(&machine, n)?;
        let input = generators::complete(n);
        let config = CmrConfig {
            seed: n as u64,
            tries: 6,
            max_passes: 12,
            ..CmrConfig::default()
        };
        let start = Instant::now();
        let outcome = find_embedding(&input, &machine.hardware, &config);
        let measured = start.elapsed().as_secs_f64();
        let clique = clique_embedding(n, &machine.chimera).expect("clique embedding exists");
        match outcome {
            Ok(outcome) => {
                verify_embedding(&input, &machine.hardware, &outcome.embedding)
                    .expect("CMR embedding must verify");
                println!(
                    "{:>4} {:>14.3e} {:>14.6} {:>12.6} {:>12} {:>10} {:>12}",
                    n,
                    prediction.embedding_ops,
                    prediction.embed_seconds,
                    measured,
                    outcome.stats.dijkstra_calls,
                    outcome.embedding.qubits_used(),
                    clique.embedding.qubits_used()
                );
            }
            Err(_) => println!(
                "{:>4} {:>14.3e} {:>14.6} {:>12.6} {:>12} {:>10} {:>12}",
                n,
                prediction.embedding_ops,
                prediction.embed_seconds,
                measured,
                "-",
                "failed",
                clique.embedding.qubits_used()
            ),
        }
    }

    println!(
        "\nThe model line (worst-case operation count) rises much faster than the measured\n\
         heuristic, exactly as in Fig. 9(a) where the ASPEN worst case overestimates small inputs\n\
         but tracks the growth trend; the CMR heuristic also uses fewer qubits than the\n\
         deterministic clique embedding on sparse-to-moderate inputs."
    );
    Ok(())
}
