//! Deadline-aware SLOs: EDF lanes and infeasibility shedding.
//!
//! Stamps a two-tenant stream with proportional deadlines and shows what
//! each deadline-aware layer buys under saturating load:
//!
//! 1. FIFO misses the most deadlines: tight-slack jobs wait behind
//!    everything that arrived earlier.
//! 2. Plain (FIFO-lane) WFQ isolates the tenants but still serves each
//!    lane in submission order.
//! 3. EDF-in-lane WFQ keeps the cross-tenant shares *and* reorders each
//!    lane earliest-deadline-first — the miss rate drops without moving
//!    Jain's fairness index.
//! 4. Token-bucket admission with `shed_infeasible` drops jobs whose
//!    deadline is already unreachable instead of queueing doomed work.
//!
//! ```text
//! cargo run --release --example deadline_slo
//! ```

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus: 3,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn main() {
    let seed = 7;
    // Two tenants with disjoint mixed-size cycle families and tight
    // proportional slack (deadline = arrival + 4x predicted cold service),
    // arriving faster than the fleet can serve.
    let tenant = |name: &str, sizes: Vec<usize>| TenantSpec {
        name: name.to_string(),
        weight: 1.0,
        jobs: 45,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.3 },
        mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes })],
        deadlines: DeadlinePolicy::ProportionalSlack { factor: 4.0 },
    };
    let workload = MultiTenantSpec {
        seed,
        tenants: vec![
            tenant("alpha", vec![12, 20, 28, 36]),
            tenant("beta", vec![14, 22, 30, 34]),
        ],
    }
    .generate();
    println!(
        "workload: {} jobs, all deadline-stamped ({} distinct topologies)\n",
        workload.len(),
        workload.distinct_topologies(),
    );

    let run = |scheduler: &mut dyn Scheduler| {
        simulate(fleet(seed), &workload, scheduler, SimConfig::default())
    };
    let fifo = run(&mut Fifo);
    let plain =
        run(&mut WeightedFairQueue::for_workload(&workload).with_lane_order(LaneOrder::Fifo));
    let edf_lane = run(&mut WeightedFairQueue::for_workload(&workload));

    println!(
        "{:>9} {:>8} {:>10} {:>12} {:>7}",
        "policy", "miss%", "misses", "p99 late", "Jain"
    );
    for report in [&fifo, &plain, &edf_lane] {
        println!(
            "{:>9} {:>8.1} {:>6}/{:<3} {:>11.2}s {:>7.3}",
            report.policy,
            100.0 * report.slo_miss_rate(),
            report.slo_misses(),
            report.slo_jobs(),
            report.lateness.p99,
            report.jains_fairness_index(),
        );
    }

    // Shedding doomed work: a loose-slack tenant shares the fleet with a
    // cache-busting flood promising its clients a few seconds of slack —
    // deadlines that are provably unreachable whenever every device is
    // mid-embed.  The gate sheds the doomed jobs at admission and never
    // touches the feasible tenant.
    let worst_pin = fleet(seed).worst_cold_service_seconds(36);
    let shed_workload = MultiTenantSpec {
        seed,
        tenants: vec![
            TenantSpec {
                deadlines: DeadlinePolicy::FixedSlack {
                    slack_seconds: 4.0 * worst_pin,
                },
                ..tenant("feasible", vec![20, 28])
            },
            TenantSpec {
                jobs: 90,
                arrivals: ArrivalProcess::Poisson { rate_hz: 2.6 },
                mix: vec![(
                    1.0,
                    FamilySpec::MaxCutGnp {
                        n: 30,
                        p: 0.3,
                        variants: 40,
                    },
                )],
                deadlines: DeadlinePolicy::FixedSlack {
                    slack_seconds: 0.4 * worst_pin,
                },
                ..tenant("doomed", vec![])
            },
        ],
    }
    .generate();
    let mut gate = TokenBucket::new(TokenBucketConfig {
        rate_hz: 1e3, // only the feasibility check binds
        burst: 1e3,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e9,
        shed_infeasible: true,
    });
    let mut policy = WeightedFairQueue::for_workload(&shed_workload);
    let gated = simulate_with_admission(
        fleet(seed),
        &shed_workload,
        &mut policy,
        &mut gate,
        SimConfig::default(),
    );
    let feasible = gated.tenant_named("feasible").unwrap();
    let doomed = gated.tenant_named("doomed").unwrap();
    println!(
        "\ninfeasibility shedding: {} doomed / {} feasible jobs shed at admission; \
         the feasible tenant completed {}/{}",
        doomed.shed_infeasible, feasible.shed_infeasible, feasible.completed, feasible.submitted,
    );
    println!("\n{gated}");
}
