//! Simulating a datacenter of annealers: workloads, policies, metrics.
//!
//! Builds a 4-QPU fleet (each device with its own fault map), generates a
//! bursty stream of repeated-topology jobs, and compares the three
//! scheduling policies on identical seeds.  Run with:
//!
//! ```text
//! cargo run --release --example cluster_fleet
//! ```

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn main() {
    let seed = 42;
    let workload = WorkloadSpec::bursty(120, 1.5, 6, seed).generate();
    println!(
        "workload: {} jobs over {} distinct topologies (max lps {})\n",
        workload.len(),
        workload.distinct_topologies(),
        workload.max_lps()
    );

    for policy in PolicyKind::all() {
        // Same fleet seed per policy: identical fault maps, fair comparison.
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 4,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = policy.build();
        let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
        println!("{report}");
        for qpu in &report.per_qpu {
            println!(
                "  qpu {}: {} jobs, {:.0}% util, {} warm hits / {} cold embeds, {} topologies cached",
                qpu.qpu,
                qpu.jobs,
                100.0 * qpu.utilization,
                qpu.warm_hits,
                qpu.cold_misses,
                qpu.warm_topologies
            );
        }
        // The same summary shape a batch run produces:
        println!("{}\n", report.batch_summary());
    }
}
