//! Simulating a datacenter of annealers: workloads, policies, metrics.
//!
//! Builds a *heterogeneous* 4-QPU fleet (DW2X- and Vesuvius-class devices
//! alternating, each with its own fault map) whose warm-embedding caches
//! are bounded at 2 topologies per device, generates a bursty stream of
//! repeated-topology jobs, and compares the three scheduling policies on
//! identical seeds — then shows what the eviction policy changes.  Run
//! with:
//!
//! ```text
//! cargo run --release --example cluster_fleet
//! ```

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn main() {
    let seed = 42;
    let capacity = 2;
    let workload = WorkloadSpec::bursty(120, 1.5, 6, seed).generate();
    println!(
        "workload: {} jobs over {} distinct topologies (max lps {})\n",
        workload.len(),
        workload.distinct_topologies(),
        workload.max_lps()
    );

    for policy in PolicyKind::all() {
        // Same fleet seed per policy: identical fault maps, fair comparison.
        // Each device holds at most `capacity` warm embeddings (LRU).
        let fleet = Fleet::new(
            FleetConfig::heterogeneous(4, seed).with_cache(capacity, EvictionPolicyKind::Lru),
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = policy.build();
        let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
        println!("{report}");
        for qpu in &report.per_qpu {
            println!(
                "  qpu {}: {} jobs, {:.0}% util, {} warm hits / {} cold embeds, \
                 {} evictions, {}/{} topologies cached",
                qpu.qpu,
                qpu.jobs,
                100.0 * qpu.utilization,
                qpu.warm_hits,
                qpu.cold_misses,
                qpu.evictions,
                qpu.warm_topologies,
                capacity,
            );
        }
        // The same summary shape a batch run produces:
        println!("{}\n", report.batch_summary());
    }

    // The eviction policy matters once the cache is tight: cost-aware
    // eviction keeps the topologies that are expensive to re-embed.
    println!("eviction policy at capacity 2 (FIFO scheduling):");
    for eviction in EvictionPolicyKind::all() {
        let fleet = Fleet::new(
            FleetConfig::heterogeneous(4, seed).with_cache(2, eviction),
            SplitExecConfig::with_seed(seed),
        );
        // FIFO routes blind to warmth, so the caches churn and the
        // eviction choice is what separates the two runs.
        let mut scheduler = PolicyKind::Fifo.build();
        let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
        println!(
            "  {:>10}: mean latency {:.3}s, hit rate {:.0}%, {} evictions",
            eviction.name(),
            report.latency.mean,
            100.0 * report.hit_rate(),
            report.evictions()
        );
    }
}
