//! Accuracy sweep: how the stage-2 cost responds to the requested solution
//! accuracy `p_a` and the per-read success probability `p_s` — the content of
//! the paper's Fig. 9(b) at example scale.
//!
//! Run with:
//! ```text
//! cargo run --release -p split-exec --example accuracy_sweep
//! ```

use split_exec::prelude::*;

fn main() -> Result<(), PipelineError> {
    let machine = SplitMachine::paper_default();

    println!("stage-2 predicted time vs accuracy (p_s = 0.7):");
    println!("{:>12} {:>8} {:>14}", "accuracy", "reads", "stage2 [s]");
    for accuracy in [0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 0.99999, 0.999999] {
        let p = predict_stage2(&machine, accuracy, 0.7)?;
        println!(
            "{:>12.6} {:>8} {:>14.6e}",
            accuracy, p.reads, p.total_seconds
        );
    }

    println!("\nsensitivity to the per-read success probability (accuracy = 0.99):");
    println!("{:>8} {:>8} {:>14}", "p_s", "reads", "stage2 [s]");
    for ps in [0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let p = predict_stage2(&machine, 0.99, ps)?;
        println!("{:>8.2} {:>8} {:>14.6e}", ps, p.reads, p.total_seconds);
    }

    println!("\ncomparison against stage 1 at a moderate problem size (n = 60):");
    let stage1 = predict_stage1(&machine, 60)?;
    let stage2 = predict_stage2(&machine, 0.999999, 0.7)?;
    println!(
        "  stage 1: {:>12.3} s   stage 2 (six nines): {:>12.6} s   ratio {:.1e}",
        stage1.total_seconds,
        stage2.total_seconds,
        stage1.total_seconds / stage2.total_seconds
    );
    println!(
        "\nAs in the paper: for any p_s > 0.6 so few repetitions are needed that stage 2 stays\n\
         far below stage 1, and the curve is nearly flat in p_s."
    );
    Ok(())
}
