//! MAX-CUT workload study: solve a family of random graphs end-to-end and
//! compare solution quality against exact optima while tracking where the
//! time goes.
//!
//! This is the "realistic application" scenario the paper's introduction
//! motivates: a discrete optimization problem arriving from a host
//! application, offloaded to the QPU, with the host paying the translation
//! costs.
//!
//! Run with:
//! ```text
//! cargo run --release -p split-exec --example maxcut_pipeline
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use qubo_ising::solve_qubo_exact;
use split_exec::prelude::*;

fn main() -> Result<(), PipelineError> {
    let pipeline = Pipeline::new(
        SplitMachine::paper_default(),
        SplitExecConfig::with_seed(11),
    );
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "n", "edges", "cut", "optimal", "stage1 [s]", "total [s]", "stage1 %"
    );

    let mut rows = Vec::new();
    for (n, p, seed) in [
        (8usize, 0.5, 1u64),
        (10, 0.4, 2),
        (12, 0.35, 3),
        (14, 0.3, 4),
        (16, 0.25, 5),
    ] {
        let graph = generators::gnp(n, p, seed);
        let maxcut = MaxCut::unweighted(graph);
        let qubo = maxcut.to_qubo();
        let exact = solve_qubo_exact(&qubo);
        let report = pipeline.execute(&qubo)?;
        let cut = maxcut.cut_value(&report.solution.assignment);
        let optimal = -exact.energy;
        println!(
            "{:>4} {:>6} {:>10.1} {:>10.1} {:>12.6} {:>12.6} {:>9.2}%",
            n,
            maxcut.graph().edge_count(),
            cut,
            optimal,
            report.stage1.total_seconds,
            report.total_seconds(),
            100.0 * report.stage1_fraction()
        );
        rows.push(BreakdownRow::from_execution(n, &report));
    }

    println!("\nmeasured stage breakdown:");
    println!("{}", breakdown_table(&rows));
    println!(
        "Observation: even for these small instances the classical stage 1 dominates, and the\n\
         gap widens with problem size — the paper's central conclusion about the quantum-classical\n\
         interface being the bottleneck."
    );
    Ok(())
}
