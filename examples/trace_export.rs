//! Telemetry: export a cluster run as a Perfetto / Chrome trace.
//!
//! Runs the aggressor/victim composition under weighted fair queueing with
//! a [`PerfettoSink`] and a metrics registry attached, then writes the
//! trace-event JSON to `trace_cluster.json` (or the path given as the
//! first argument).  Open the file at <https://ui.perfetto.dev> — or
//! `chrome://tracing` — to see, on the *virtual* timeline:
//!
//! * one lane per job (process "jobs"): a `queued` span from first
//!   arrival to dispatch, then `embed` → `anneal` → `readout` service
//!   spans; shed/deferred jobs show as instant markers;
//! * one track per QPU (process "fleet"): back-to-back `job N` occupancy
//!   spans — the gaps are idle capacity.
//!
//! Telemetry is a pure observer: attaching the sink and registry does not
//! change the schedule (the sink-purity tests assert bit-identical
//! reports), so the exported trace is exactly the run you would have had
//! without it.
//!
//! ```text
//! cargo run --release --example trace_export [-- PATH]
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the full telemetry layer reference.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn main() {
    let seed = 7;
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_cluster.json".to_string());

    // A small aggressor/victim mix: 12 victim jobs at 0.4 Hz, an
    // aggressor submitting 4x as many jobs at 4x the rate.
    let workload = MultiTenantSpec::aggressor_victim(12, 0.4, 4.0, 1.0, seed).generate();
    let fleet = Fleet::new(
        FleetConfig {
            qpus: 4,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    );

    let mut scheduler = WeightedFairQueue::for_workload(&workload);
    let mut sink = PerfettoSink::new();
    // Sample queue depth, per-QPU utilization, cache hit-rate and lane
    // depths every 2 virtual seconds alongside the trace.
    let mut registry = MetricsRegistry::new(2.0);
    let report = simulate_with_telemetry(
        fleet,
        &workload,
        &mut scheduler,
        &mut AdmitAll,
        SimConfig::default(),
        &mut sink,
        Some(&mut registry),
    );

    println!("{report}\n");

    let trace = sink.finish();
    let event_count = match trace.get("traceEvents") {
        Some(JsonValue::Array(events)) => events.len(),
        _ => 0,
    };
    match std::fs::write(&path, format!("{trace}\n")) {
        Ok(()) => println!(
            "wrote {event_count} trace events to {path} — open it at https://ui.perfetto.dev"
        ),
        Err(err) => {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
    }

    // The registry's sketches summarize the same run without retaining a
    // per-event trace — the configuration large runs should prefer.
    if let Some(latency) = registry.histogram("latency_seconds") {
        println!(
            "latency sketch over {} completions: p50 {:.2}s, p95 {:.2}s, p99 {:.2}s \
             (relative error <= {:.1}%)",
            latency.count(),
            latency.p50(),
            latency.p95(),
            latency.p99(),
            100.0 * latency.relative_error_bound(),
        );
    }
    if let Some(depth) = registry.gauge_series("queue_depth") {
        let peak = depth.iter().fold(0.0f64, |acc, &(_, v)| acc.max(v));
        println!(
            "queue depth sampled {} times on the virtual clock; peak {peak}",
            depth.len(),
        );
    }
}
