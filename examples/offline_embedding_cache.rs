//! Offline-embedding lookup table: the paper's proposed fix for the stage-1
//! bottleneck (Sec. 3.3), demonstrated on a workload that re-solves the same
//! graph families with fresh coefficients.
//!
//! Run with:
//! ```text
//! cargo run --release -p split-exec --example offline_embedding_cache
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use qubo_ising::Qubo;
use split_exec::prelude::*;
use std::time::Instant;

fn main() -> Result<(), PipelineError> {
    let machine = SplitMachine::paper_default();
    let config = SplitExecConfig::with_seed(21);
    let cache = EmbeddingCache::new();

    // A workload of repeated problem structures: rings, grids-as-graphs and
    // random graphs, each solved several times with different coefficients.
    let structures = vec![
        ("cycle-16", generators::cycle(16)),
        ("grid-4x4", generators::grid(4, 4)),
        ("gnp-12", generators::gnp(12, 0.3, 5)),
    ];

    println!(
        "{:>10} {:>6} {:>8} {:>14} {:>10}",
        "structure", "round", "hit?", "embed [s]", "qubits"
    );
    let mut inline_total = 0.0;
    let mut cached_total = 0.0;
    for round in 0..3 {
        for (name, graph) in &structures {
            // Fresh coefficients each round: the interaction graph (and thus
            // the embedding) is unchanged, only the weights move.
            let _qubo = Qubo::random_on_graph(graph, 100 + round);
            let start = Instant::now();
            let cached = cache.get_or_compute(graph, &machine, &config)?;
            let elapsed = start.elapsed().as_secs_f64();
            if cached.cache_hit {
                cached_total += elapsed;
            } else {
                inline_total += elapsed;
            }
            println!(
                "{:>10} {:>6} {:>8} {:>14.6} {:>10}",
                name,
                round,
                if cached.cache_hit { "hit" } else { "miss" },
                elapsed,
                cached.embedding.qubits_used()
            );
        }
    }

    let stats = cache.stats();
    println!(
        "\ncache: {} entries, {} hits / {} misses (hit rate {:.0}%)",
        cache.len(),
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    println!(
        "inline embedding time {:.6} s vs cached lookups {:.6} s",
        inline_total, cached_total
    );

    // End-to-end effect: re-solve one structure with and without the cache.
    let maxcut = MaxCut::unweighted(generators::cycle(16));
    let qubo = maxcut.to_qubo();
    let pipeline = Pipeline::new(machine.clone(), config);
    let report = pipeline.execute(&qubo)?;
    let embed_share = report.stage1.embedding_seconds / report.total_seconds();
    println!(
        "\nwithout the cache, the inline embedding is {:.1}% of this run's end-to-end time;\n\
         with a warm lookup table that cost drops to a hash lookup, leaving the (irreducible)\n\
         electronics programming constant as the stage-1 floor — the paper's point that\n\
         off-line embedding moves the bottleneck but cannot remove the interface cost entirely.",
        100.0 * embed_share
    );
    Ok(())
}
