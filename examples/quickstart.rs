//! Quickstart: solve a small MAX-CUT instance end-to-end on the
//! split-execution system and print the Fig. 2 sequence trace plus the
//! three-stage timing breakdown.
//!
//! Run with:
//! ```text
//! cargo run --release -p split-exec --example quickstart
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use split_exec::prelude::*;

fn main() -> Result<(), PipelineError> {
    // The paper's default machine: an asymmetric node hosting a 1152-qubit
    // D-Wave 2X-class QPU (Chimera C(12,12,4)).
    let machine = SplitMachine::paper_default();
    println!(
        "machine: {} architecture, {} qubits ({}x{} Chimera lattice)",
        machine.architecture.label(),
        machine.usable_qubits(),
        machine.lattice_dims().0,
        machine.lattice_dims().1
    );

    // Application parameters: 99% solution accuracy assuming a 70% per-read
    // success probability (the values plotted in the paper's Fig. 9b).
    let config = SplitExecConfig::with_seed(7)
        .with_accuracy(0.99)
        .with_success_probability(0.7);
    println!(
        "requesting accuracy {:.2} with per-read success {:.2} -> {} reads (Eq. 6)",
        config.accuracy,
        config.success_probability,
        config.reads()
    );

    // A small MAX-CUT workload: a ring of 12 vertices.
    let maxcut = MaxCut::unweighted(generators::cycle(12));
    let qubo = maxcut.to_qubo();

    let pipeline = Pipeline::new(machine, config);

    // Analytic prediction of the three-stage breakdown at this problem size.
    let predicted = pipeline.predict(qubo.num_variables())?;
    println!("\npredicted breakdown (ASPEN model walk):");
    println!(
        "  stage 1 (embed + program): {:>12.6} s",
        predicted.stage1.total_seconds
    );
    println!(
        "  stage 2 (QPU sampling):    {:>12.6} s",
        predicted.stage2.total_seconds
    );
    println!(
        "  stage 3 (post-process):    {:>12.6} s",
        predicted.stage3.total_seconds
    );
    println!(
        "  stage 1 share of total:    {:>11.2} %",
        100.0 * predicted.stage1_fraction()
    );

    // Execute the real pipeline: convert, embed, sample, post-process.
    let report = pipeline.execute(&qubo)?;
    println!("\nexecuted pipeline:");
    println!("{}", SequenceTrace::from_report(&report));
    println!(
        "best cut value: {} of {} edges",
        maxcut.cut_value(&report.solution.assignment),
        maxcut.graph().edge_count()
    );
    println!(
        "qubits used: {} (max chain length {})",
        report.stage1.embedded.embedding.qubits_used(),
        report.stage1.embedded.embedding.max_chain_length()
    );
    println!(
        "end-to-end time {:.6} s, stage-1 share {:.2} %",
        report.total_seconds(),
        100.0 * report.stage1_fraction()
    );
    Ok(())
}
